use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match cphash_lint::run(&root) {
        Ok(report) => {
            if report.violations.is_empty() {
                println!(
                    "cphash-lint: OK ({} files checked, {} rules)",
                    report.files_checked,
                    cphash_lint::RULES.len()
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!("cphash-lint: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cphash-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
