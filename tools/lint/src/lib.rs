//! Repo-local static lint pass for concurrency hygiene.
//!
//! Four rules, all line-oriented (see [`RULES`]):
//!
//! 1. `raw-atomic` — no `std::sync::atomic` / `core::sync::atomic` imports
//!    or paths outside the `cphash-sync` facade.  Everything goes through
//!    `cphash_sync::atomic` so `cfg(cphash_model)` can swap the
//!    implementation.
//! 2. `relaxed-justification` — every `Ordering::Relaxed` carries a
//!    `// relaxed: …` justification on the same line or the line above.
//! 3. `safety-comment` — every `unsafe` block is preceded by a
//!    `// SAFETY: …` comment (same line or in the comment block directly above).
//! 4. `hot-path` — files tagged `// cphash-lint: hot-path` must not call
//!    panicking or allocating constructs on shipped lines.
//!
//! Escapes: a `// lint: allow(<rule>)` comment on the line itself or in the
//! contiguous comment block directly above waives that rule for that line;
//! everything from `#[cfg(test)]` to end-of-file is skipped (test modules
//! live at the bottom of files in this repo).
//!
//! This is a text-level pass, deliberately: it runs in milliseconds with no
//! syn/proc-macro dependency (the tree is offline), and the conventions it
//! enforces are textual conventions.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Names of the rules, in evaluation order.
pub const RULES: [&str; 4] = [
    "raw-atomic",
    "relaxed-justification",
    "safety-comment",
    "hot-path",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path (as scanned) of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in file/line order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_checked: usize,
}

/// Files allowed to name `std::sync::atomic`: the facade itself.
fn is_facade(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.ends_with("crates/sync/src/atomic.rs")
}

/// Strip string literals and `//` comments' *content* is still needed for
/// our own markers, so instead of full lexing we only blank out string
/// literals (so `"unsafe {"` in a message doesn't trip rule 3).  Char
/// literals and raw strings are rare enough in this tree to ignore.
fn code_portion(line: &str) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                code.push_str("\"…\"");
            }
            '/' if chars.peek() == Some(&'/') => {
                comment.push('/');
                comment.extend(chars);
                break;
            }
            _ => code.push(c),
        }
    }
    (code, comment)
}

/// Does the contiguous run of `//` comment lines directly above line `i`
/// contain `marker`?  Allows multi-line justification comments.
fn comment_block_above(lines: &[&str], i: usize, marker: &str) -> bool {
    let mut j = i;
    while j > 0 {
        let prev = lines[j - 1].trim_start();
        if !prev.starts_with("//") {
            return false;
        }
        if prev.contains(marker) {
            return true;
        }
        j -= 1;
    }
    false
}

fn has_waiver(comment: &str, rule: &str) -> bool {
    comment
        .split("lint: allow(")
        .skip(1)
        .any(|rest| rest.trim_start().starts_with(rule))
}

/// Waiver on the line itself or in the comment block directly above (long
/// waiver comments don't fit rustfmt's line budget inline).
fn waived(lines: &[&str], i: usize, comment: &str, rule: &str) -> bool {
    has_waiver(comment, rule) || comment_block_above(lines, i, &format!("lint: allow({rule}"))
}

/// Constructs banned on hot-path lines: things that can panic or allocate.
const HOT_PATH_BANNED: &[(&str, &str)] = &[
    ("panic!(", "panics"),
    ("unreachable!(", "panics"),
    ("todo!(", "panics"),
    ("unimplemented!(", "panics"),
    (".unwrap()", "panics"),
    (".expect(", "panics"),
    ("assert!(", "panics (use debug_assert!)"),
    ("assert_eq!(", "panics (use debug_assert_eq!)"),
    ("assert_ne!(", "panics (use debug_assert_ne!)"),
    ("vec![", "allocates"),
    ("Vec::new", "allocates"),
    ("Vec::with_capacity", "allocates"),
    ("Box::new", "allocates"),
    ("String::new", "allocates"),
    ("String::from", "allocates"),
    (".to_string()", "allocates"),
    (".to_owned()", "allocates"),
    (".to_vec()", "allocates"),
    ("format!(", "allocates"),
];

/// Lint one file's contents.  `path` is used for reporting and the facade
/// allowlist only.
pub fn lint_source(path: &Path, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    let parsed: Vec<(String, String)> = lines.iter().map(|l| code_portion(l)).collect();
    let hot_path = lines
        .iter()
        .take(40)
        .any(|l| l.contains("cphash-lint: hot-path"));
    let facade = is_facade(path);
    let mut in_tests = false;

    for (i, (code, comment)) in parsed.iter().enumerate() {
        let lineno = i + 1;
        let raw = lines[i];
        if raw.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }

        // Rule 1: raw atomic paths outside the facade.
        if !facade
            && (code.contains("std::sync::atomic") || code.contains("core::sync::atomic"))
            && !waived(&lines, i, comment, "raw-atomic")
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: "raw-atomic",
                message: "raw std/core atomic path; use the cphash_sync::atomic facade \
                          (modeled) or cphash_sync::atomic::plain (diagnostics)"
                    .to_string(),
            });
        }

        // Rule 2: Relaxed needs a justification comment.
        if code.contains("Ordering::Relaxed")
            && !waived(&lines, i, comment, "relaxed-justification")
        {
            let here = comment.contains("relaxed:");
            if !here && !comment_block_above(&lines, i, "relaxed:") {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: "relaxed-justification",
                    message: "Ordering::Relaxed without a `// relaxed: …` justification \
                              (same line or the comment block above)"
                        .to_string(),
                });
            }
        }

        // Rule 3: unsafe blocks need a SAFETY comment.
        if code.contains("unsafe {") && !waived(&lines, i, comment, "safety-comment") {
            let here = comment.contains("SAFETY:");
            if !here && !comment_block_above(&lines, i, "SAFETY:") {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: "safety-comment",
                    message: "unsafe block without a preceding `// SAFETY: …` comment".to_string(),
                });
            }
        }

        // Rule 4: hot-path files must not panic or allocate.
        if hot_path && !waived(&lines, i, comment, "hot-path") {
            // debug_assert! lines contain "assert!(" as a substring; they
            // compile out in release builds and are explicitly allowed.
            let code = code.replace("debug_assert", "dbga");
            for (pat, why) in HOT_PATH_BANNED {
                if code.contains(pat) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: lineno,
                        rule: "hot-path",
                        message: format!("`{pat}` {why}; banned in hot-path-tagged modules"),
                    });
                }
            }
        }
    }
    out
}

fn is_excluded(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("/vendor/")
        || p.contains("/target/")
        || p.contains("/tools/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.contains("/.git/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if is_excluded(&path) {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the repo rooted at `root`: every `.rs` file under `crates/*/src`
/// and the root package's `src/`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file);
        report
            .violations
            .extend(lint_source(rel, &source).into_iter().map(|mut v| {
                v.file = rel.to_path_buf();
                v
            }));
        report.files_checked += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, src: &str) -> Vec<Violation> {
        lint_source(Path::new(path), src)
    }

    #[test]
    fn raw_atomic_flagged_outside_facade() {
        let v = lint_str(
            "crates/core/src/x.rs",
            "use std::sync::atomic::AtomicU64;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "raw-atomic");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_atomic_allowed_in_facade_and_waived() {
        assert!(lint_str(
            "crates/sync/src/atomic.rs",
            "pub use std::sync::atomic::AtomicU64;\n"
        )
        .is_empty());
        assert!(lint_str(
            "crates/core/src/x.rs",
            "use std::sync::atomic::AtomicU64; // lint: allow(raw-atomic) counters only\n"
        )
        .is_empty());
    }

    #[test]
    fn relaxed_needs_justification() {
        let bad = "x.load(Ordering::Relaxed);\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-justification");

        let same_line = "x.load(Ordering::Relaxed); // relaxed: stat counter\n";
        assert!(lint_str("crates/core/src/x.rs", same_line).is_empty());

        let line_above = "// relaxed: stat counter\nx.load(Ordering::Relaxed);\n";
        assert!(lint_str("crates/core/src/x.rs", line_above).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "let y = unsafe { *p };\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");

        let good = "// SAFETY: p is valid for the slab lifetime\nlet y = unsafe { *p };\n";
        assert!(lint_str("crates/core/src/x.rs", good).is_empty());

        // `unsafe {` inside a string literal is not a block.
        let in_str = "let s = \"unsafe { }\";\n";
        assert!(lint_str("crates/core/src/x.rs", in_str).is_empty());
    }

    #[test]
    fn hot_path_bans_panic_and_alloc() {
        let src = "\
// cphash-lint: hot-path
fn f(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    let b = Box::new(v);
    debug_assert!(*b > 0);
    *b
}
";
        let v = lint_str("crates/core/src/x.rs", src);
        let rules: Vec<&str> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["hot-path", "hot-path"]);
        assert!(v[0].message.contains(".unwrap()"));
        assert!(v[1].message.contains("Box::new"));
    }

    #[test]
    fn hot_path_waiver_and_untagged_files() {
        let tagged =
            "// cphash-lint: hot-path\nlet v = x.unwrap(); // lint: allow(hot-path) startup only\n";
        assert!(lint_str("crates/core/src/x.rs", tagged).is_empty());
        let untagged = "let v = x.unwrap();\n";
        assert!(lint_str("crates/core/src/x.rs", untagged).is_empty());
    }

    #[test]
    fn test_region_skipped() {
        let src = "\
fn shipped() {}
#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU64;
    fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }
}
";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }
}
