//! The repo-wide lint gate.
//!
//! `cargo test -p cphash-lint` fails if any shipped source under
//! `crates/*/src` violates the concurrency-hygiene rules, printing every
//! finding as `file:line: [rule] message` so the offending site is one
//! click away.

use std::path::Path;

fn repo_root() -> &'static Path {
    // tools/lint/ -> tools/ -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the repo root")
}

#[test]
fn repo_is_lint_clean() {
    let report = cphash_lint::run(repo_root()).expect("lint walk failed");
    assert!(
        report.files_checked > 50,
        "lint only saw {} files — directory walk broken?",
        report.files_checked
    );
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("{v}");
        }
        panic!(
            "{} lint violation(s) — see the list above",
            report.violations.len()
        );
    }
}

#[test]
fn violations_report_file_and_line() {
    let src = "use std::sync::atomic::AtomicU64;\n\nlet x = unsafe { *p };\n";
    let v = cphash_lint::lint_source(Path::new("crates/demo/src/x.rs"), src);
    let rules: Vec<&str> = v.iter().map(|v| v.rule).collect();
    assert_eq!(rules, ["raw-atomic", "safety-comment"]);
    assert!(v[0]
        .to_string()
        .starts_with("crates/demo/src/x.rs:1: [raw-atomic]"));
    assert!(v[1]
        .to_string()
        .starts_with("crates/demo/src/x.rs:3: [safety-comment]"));
}
