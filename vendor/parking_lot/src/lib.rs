//! Minimal offline shim for the `parking_lot` crate: `Mutex` and `RwLock`
//! with the parking_lot API (no lock poisoning), backed by `std::sync`.
//! A poisoned std lock means a panic already happened on another thread;
//! matching parking_lot semantics, the shim keeps going with the inner data.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
