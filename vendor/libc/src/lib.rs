//! Minimal offline shim for the `libc` crate: the CPU-affinity pieces
//! `cphash-affinity` uses plus the epoll/eventfd surface behind
//! `cphash-kvserver`'s event-driven front-end, declared directly against
//! the system C library (which std already links).

#![allow(non_camel_case_types)]
#![allow(non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `void` for raw buffer pointers.
pub type c_void = core::ffi::c_void;
/// `size_t` as on Linux.
pub type size_t = usize;
/// `ssize_t` as on Linux.
pub type ssize_t = isize;
/// `pid_t` as on Linux.
pub type pid_t = i32;

/// `cpu_set_t`: a 1024-bit CPU mask, as glibc defines it.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Clear every CPU in the set (glibc's `CPU_ZERO` macro).
///
/// # Safety
/// `set` must point to a valid `cpu_set_t`.
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// Add a CPU to the set (glibc's `CPU_SET` macro). CPUs beyond the mask
/// width are ignored, matching the macro's bounds behaviour.
///
/// # Safety
/// `set` must point to a valid `cpu_set_t`.
#[allow(non_snake_case)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Bind `pid` (0 = calling thread) to the CPUs in `mask`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const cpu_set_t) -> c_int;
    /// CPU the calling thread is executing on, or -1 on error.
    pub fn sched_getcpu() -> c_int;
}

// ---------------------------------------------------------------------------
// epoll + eventfd (Linux readiness notification, used by the kvserver
// reactor).  Constants and the `epoll_event` layout match the kernel UAPI.
// ---------------------------------------------------------------------------

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to request it).
pub const EPOLLERR: u32 = 0x008;
/// Peer hang-up (always reported, no need to request it).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: add a file descriptor to the interest list.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: remove a file descriptor from the interest list.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change the event mask of a registered descriptor.
pub const EPOLL_CTL_MOD: c_int = 3;
/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: c_int = 0x80000;

/// `eventfd` flag: close-on-exec.
pub const EFD_CLOEXEC: c_int = 0x80000;
/// `eventfd` flag: non-blocking reads/writes.
pub const EFD_NONBLOCK: c_int = 0x800;

/// One epoll readiness record: an event mask plus the 64-bit user datum
/// registered with the descriptor.  Packed on x86-64 exactly as the kernel
/// (and glibc's `__EPOLL_PACKED`) lay it out.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    /// Ready-event bit mask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The user datum supplied at registration (the `data.u64` member).
    pub u64: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Create an epoll instance; returns its file descriptor or -1.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Add/modify/remove `fd` on the epoll instance `epfd`.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Wait up to `timeout` ms (0 = poll, -1 = forever) for readiness.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Create an eventfd counter object (the reactor's cross-thread waker).
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    /// Read raw bytes from a file descriptor.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// Write raw bytes to a file descriptor.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// Close a file descriptor.
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_bit_arithmetic() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_ZERO(&mut set);
            CPU_SET(0, &mut set);
            CPU_SET(130, &mut set);
            CPU_SET(4096, &mut set); // out of mask range: ignored
        }
        assert_eq!(set.bits[0], 1);
        assert_eq!(set.bits[2], 1 << 2);
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sched_getcpu_reports_a_cpu() {
        let cpu = unsafe { sched_getcpu() };
        assert!(cpu >= -1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_and_eventfd_round_trip() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let efd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(efd >= 0, "eventfd failed");

            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: 0xDEAD_BEEF,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, efd, &mut ev), 0);

            // Nothing signalled yet: a zero-timeout wait returns no events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // Signal the eventfd and observe the readiness record.
            let one: u64 = 1;
            assert_eq!(
                write(efd, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let datum = out[0].u64;
            assert_eq!(datum, 0xDEAD_BEEF);

            // Drain and confirm the level-triggered readiness clears.
            let mut counter: u64 = 0;
            assert_eq!(read(efd, (&mut counter as *mut u64).cast(), 8), 8);
            assert_eq!(counter, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            assert_eq!(epoll_ctl(ep, EPOLL_CTL_DEL, efd, core::ptr::null_mut()), 0);
            assert_eq!(close(efd), 0);
            assert_eq!(close(ep), 0);
        }
    }
}
