//! Minimal offline shim for the `libc` crate: the CPU-affinity pieces
//! `cphash-affinity` uses, the epoll/eventfd surface behind
//! `cphash-kvserver`'s event-driven front-end, the raw io_uring syscall
//! surface (setup/enter plus the mmap'd ring UAPI layouts) behind the
//! uring front-end, and the socket calls the `SO_REUSEPORT` sharded
//! accept path needs — all declared directly against the system C
//! library (which std already links) or invoked via `syscall(2)`.

#![allow(non_camel_case_types)]
#![allow(non_snake_case)]
#![allow(non_upper_case_globals)]

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `void` for raw buffer pointers.
pub type c_void = core::ffi::c_void;
/// `size_t` as on Linux.
pub type size_t = usize;
/// `ssize_t` as on Linux.
pub type ssize_t = isize;
/// `pid_t` as on Linux.
pub type pid_t = i32;
/// C `long` (the syscall-number / return type of `syscall(2)` on Linux).
pub type c_long = i64;
/// `off_t` as on 64-bit Linux (mmap file offset).
pub type off_t = i64;
/// `socklen_t` as on Linux.
pub type socklen_t = u32;

/// `cpu_set_t`: a 1024-bit CPU mask, as glibc defines it.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Clear every CPU in the set (glibc's `CPU_ZERO` macro).
///
/// # Safety
/// `set` must point to a valid `cpu_set_t`.
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// Add a CPU to the set (glibc's `CPU_SET` macro). CPUs beyond the mask
/// width are ignored, matching the macro's bounds behaviour.
///
/// # Safety
/// `set` must point to a valid `cpu_set_t`.
#[allow(non_snake_case)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Bind `pid` (0 = calling thread) to the CPUs in `mask`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const cpu_set_t) -> c_int;
    /// CPU the calling thread is executing on, or -1 on error.
    pub fn sched_getcpu() -> c_int;
}

// ---------------------------------------------------------------------------
// epoll + eventfd (Linux readiness notification, used by the kvserver
// reactor).  Constants and the `epoll_event` layout match the kernel UAPI.
// ---------------------------------------------------------------------------

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to request it).
pub const EPOLLERR: u32 = 0x008;
/// Peer hang-up (always reported, no need to request it).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: add a file descriptor to the interest list.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: remove a file descriptor from the interest list.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change the event mask of a registered descriptor.
pub const EPOLL_CTL_MOD: c_int = 3;
/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: c_int = 0x80000;

/// `eventfd` flag: close-on-exec.
pub const EFD_CLOEXEC: c_int = 0x80000;
/// `eventfd` flag: non-blocking reads/writes.
pub const EFD_NONBLOCK: c_int = 0x800;

/// One epoll readiness record: an event mask plus the 64-bit user datum
/// registered with the descriptor.  Packed on x86-64 exactly as the kernel
/// (and glibc's `__EPOLL_PACKED`) lay it out.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    /// Ready-event bit mask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The user datum supplied at registration (the `data.u64` member).
    pub u64: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Create an epoll instance; returns its file descriptor or -1.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Add/modify/remove `fd` on the epoll instance `epfd`.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Wait up to `timeout` ms (0 = poll, -1 = forever) for readiness.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Create an eventfd counter object (the reactor's cross-thread waker).
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    /// Read raw bytes from a file descriptor.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// Write raw bytes to a file descriptor.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// Close a file descriptor.
    pub fn close(fd: c_int) -> c_int;
}

// ---------------------------------------------------------------------------
// mmap (the io_uring SQ/CQ rings live in shared kernel/user memory).
// ---------------------------------------------------------------------------

/// `mmap` protection: pages may be read.
pub const PROT_READ: c_int = 0x1;
/// `mmap` protection: pages may be written.
pub const PROT_WRITE: c_int = 0x2;
/// `mmap` flag: updates are shared with the kernel (required for rings).
pub const MAP_SHARED: c_int = 0x01;
/// `mmap` flag: pre-fault the mapping so the hot path never page-faults.
pub const MAP_POPULATE: c_int = 0x8000;
/// `mmap` failure sentinel (`(void *)-1`).
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

#[cfg(target_os = "linux")]
extern "C" {
    /// Map `length` bytes of `fd` at `offset` into the address space.
    pub fn mmap(
        addr: *mut c_void,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmap a region established by `mmap`.
    pub fn munmap(addr: *mut c_void, length: size_t) -> c_int;
    /// Raw indirect system call (glibc sets `errno` on failure, so
    /// `io::Error::last_os_error()` works after a -1 return).
    pub fn syscall(num: c_long, ...) -> c_long;
}

// ---------------------------------------------------------------------------
// io_uring (Linux >= 5.1): raw syscall numbers, the UAPI ring layouts, and
// thin wrappers over `syscall(2)` — the shim's epoll bindings' moral
// equivalent for the completion-based front-end.  Layouts match
// `<linux/io_uring.h>` on x86-64.
// ---------------------------------------------------------------------------

/// `io_uring_setup(2)` syscall number on x86-64.
pub const SYS_io_uring_setup: c_long = 425;
/// `io_uring_enter(2)` syscall number on x86-64.
pub const SYS_io_uring_enter: c_long = 426;

/// Offsets into the SQ ring mapping (`struct io_sqring_offsets`).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_sqring_offsets {
    /// Byte offset of the SQ head index.
    pub head: u32,
    /// Byte offset of the SQ tail index.
    pub tail: u32,
    /// Byte offset of the ring mask (entries - 1).
    pub ring_mask: u32,
    /// Byte offset of the ring size.
    pub ring_entries: u32,
    /// Byte offset of the SQ flags word.
    pub flags: u32,
    /// Byte offset of the dropped-submission counter.
    pub dropped: u32,
    /// Byte offset of the SQE index array.
    pub array: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved (ring address for `IORING_SETUP_NO_MMAP`; unused here).
    pub user_addr: u64,
}

/// Offsets into the CQ ring mapping (`struct io_cqring_offsets`).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_cqring_offsets {
    /// Byte offset of the CQ head index.
    pub head: u32,
    /// Byte offset of the CQ tail index.
    pub tail: u32,
    /// Byte offset of the ring mask (entries - 1).
    pub ring_mask: u32,
    /// Byte offset of the ring size.
    pub ring_entries: u32,
    /// Byte offset of the overflow counter.
    pub overflow: u32,
    /// Byte offset of the CQE array itself.
    pub cqes: u32,
    /// Byte offset of the CQ flags word.
    pub flags: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved (ring address for `IORING_SETUP_NO_MMAP`; unused here).
    pub user_addr: u64,
}

/// Setup parameters exchanged with `io_uring_setup(2)`
/// (`struct io_uring_params`).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_params {
    /// Number of SQ entries (kernel output; rounded-up power of two).
    pub sq_entries: u32,
    /// Number of CQ entries (kernel output).
    pub cq_entries: u32,
    /// `IORING_SETUP_*` flags (input).
    pub flags: u32,
    /// SQPOLL thread CPU (unused without `IORING_SETUP_SQPOLL`).
    pub sq_thread_cpu: u32,
    /// SQPOLL idle time (unused without `IORING_SETUP_SQPOLL`).
    pub sq_thread_idle: u32,
    /// `IORING_FEAT_*` capability bits (kernel output).
    pub features: u32,
    /// Shared async-worker ring fd (unused here).
    pub wq_fd: u32,
    /// Reserved.
    pub resv: [u32; 3],
    /// SQ ring field offsets (kernel output).
    pub sq_off: io_sqring_offsets,
    /// CQ ring field offsets (kernel output).
    pub cq_off: io_cqring_offsets,
}

/// One submission queue entry (`struct io_uring_sqe`, 64 bytes).  The
/// kernel header nests unions; this shim flattens them to the fields the
/// reactor uses (`op_flags` overlays `poll32_events` / `accept_flags` /
/// `rw_flags`, `addr` overlays `addr` / `off2`), which is layout-identical
/// for every opcode we submit.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_sqe {
    /// Operation (`IORING_OP_*`).
    pub opcode: u8,
    /// Per-SQE flags (`IOSQE_*`).
    pub flags: u8,
    /// Priority, or `IORING_ACCEPT_MULTISHOT` for accept SQEs.
    pub ioprio: u16,
    /// Target file descriptor.
    pub fd: i32,
    /// File offset, or the second address (accept `addrlen` pointer).
    pub off: u64,
    /// Buffer/record address (accept `sockaddr` pointer; poll: unused).
    pub addr: u64,
    /// Buffer length, or `IORING_POLL_ADD_MULTI` for poll SQEs.
    pub len: u32,
    /// Opcode-specific flags (poll events, accept flags, rw flags...).
    pub op_flags: u32,
    /// Caller cookie, echoed verbatim in the matching CQE.
    pub user_data: u64,
    /// Registered-buffer index (unused here).
    pub buf_index: u16,
    /// Personality (unused here).
    pub personality: u16,
    /// Splice source fd (unused here).
    pub splice_fd_in: i32,
    /// Third address (unused here).
    pub addr3: u64,
    /// Padding to 64 bytes.
    pub __pad2: u64,
}

/// One completion queue entry (`struct io_uring_cqe`, 16 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_cqe {
    /// The submitting SQE's `user_data` cookie.
    pub user_data: u64,
    /// Result: op-specific count/fd on success, negated errno on failure.
    pub res: i32,
    /// `IORING_CQE_F_*` flags (`F_MORE` = multishot stays armed).
    pub flags: u32,
}

/// Extended wait argument for `IORING_ENTER_EXT_ARG`
/// (`struct io_uring_getevents_arg`).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_getevents_arg {
    /// Signal mask pointer (0 = none).
    pub sigmask: u64,
    /// Size of the signal mask.
    pub sigmask_sz: u32,
    /// Padding.
    pub pad: u32,
    /// Pointer to a `__kernel_timespec` wait bound (0 = wait forever).
    pub ts: u64,
}

/// 64-bit timespec as the kernel UAPI defines it
/// (`struct __kernel_timespec`).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct __kernel_timespec {
    /// Seconds.
    pub tv_sec: i64,
    /// Nanoseconds.
    pub tv_nsec: i64,
}

/// `mmap` offset selecting the SQ ring.
pub const IORING_OFF_SQ_RING: off_t = 0;
/// `mmap` offset selecting the CQ ring.
pub const IORING_OFF_CQ_RING: off_t = 0x8000000;
/// `mmap` offset selecting the SQE array.
pub const IORING_OFF_SQES: off_t = 0x10000000;

/// No-op SQE (plumbing tests).
pub const IORING_OP_NOP: u8 = 0;
/// Arm a poll on a descriptor.
pub const IORING_OP_POLL_ADD: u8 = 6;
/// Cancel an armed poll by `user_data`.
pub const IORING_OP_POLL_REMOVE: u8 = 7;
/// Timeout operation (unused: waits use `EXT_ARG` instead).
pub const IORING_OP_TIMEOUT: u8 = 11;
/// Accept a connection on a listening socket.
pub const IORING_OP_ACCEPT: u8 = 13;
/// Cancel an inflight SQE by `user_data`.
pub const IORING_OP_ASYNC_CANCEL: u8 = 14;

/// Poll stays armed across events, reporting each via `CQE_F_MORE`
/// (goes in `io_uring_sqe.len`; Linux >= 5.13).
pub const IORING_POLL_ADD_MULTI: u32 = 1 << 0;
/// Accept stays armed across connections (goes in `io_uring_sqe.ioprio`;
/// Linux >= 5.19).
pub const IORING_ACCEPT_MULTISHOT: u16 = 1 << 0;
/// CQE flag: the multishot op that produced this CQE is still armed.
pub const IORING_CQE_F_MORE: u32 = 1 << 1;

/// `io_uring_enter` flag: also wait for `min_complete` completions.
pub const IORING_ENTER_GETEVENTS: c_uint = 1 << 0;
/// `io_uring_enter` flag: `arg` is an `io_uring_getevents_arg`.
pub const IORING_ENTER_EXT_ARG: c_uint = 1 << 3;

/// Feature: SQ and CQ rings share one mapping (Linux >= 5.4).
pub const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
/// Feature: completions are never dropped on CQ overflow (Linux >= 5.5).
pub const IORING_FEAT_NODROP: u32 = 1 << 1;
/// Feature: `IORING_ENTER_EXT_ARG` timed waits (Linux >= 5.11).
pub const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

/// Create an io_uring instance: returns the ring fd, or -1 with `errno`
/// set (glibc's `syscall` wrapper handles errno translation).
///
/// # Safety
/// `params` must point to a valid `io_uring_params`; the kernel writes
/// its output fields through it.
#[cfg(target_os = "linux")]
pub unsafe fn io_uring_setup(entries: u32, params: *mut io_uring_params) -> c_int {
    // SAFETY: forwarded to the raw syscall; caller upholds the pointer
    // contract above.
    unsafe { syscall(SYS_io_uring_setup, entries as c_long, params) as c_int }
}

/// Submit and/or wait on an io_uring: returns the number of SQEs
/// consumed, or -1 with `errno` set.
///
/// # Safety
/// `fd` must be a live io_uring fd whose mapped rings stay valid for the
/// duration of the call; `arg`/`argsz` must describe a valid
/// `io_uring_getevents_arg` when `IORING_ENTER_EXT_ARG` is set (null/0
/// otherwise).
#[cfg(target_os = "linux")]
pub unsafe fn io_uring_enter(
    fd: c_int,
    to_submit: c_uint,
    min_complete: c_uint,
    flags: c_uint,
    arg: *const c_void,
    argsz: size_t,
) -> c_int {
    // SAFETY: forwarded to the raw syscall; caller upholds the fd/arg
    // contract above.
    unsafe {
        syscall(
            SYS_io_uring_enter,
            fd as c_long,
            to_submit as c_long,
            min_complete as c_long,
            flags as c_long,
            arg,
            argsz as c_long,
        ) as c_int
    }
}

// ---------------------------------------------------------------------------
// Sockets (the SO_REUSEPORT sharded-accept path builds its listener set
// below the std API, which exposes no setsockopt-before-bind hook).
// ---------------------------------------------------------------------------

/// IPv4 address family.
pub const AF_INET: c_int = 2;
/// Stream (TCP) socket type.
pub const SOCK_STREAM: c_int = 1;
/// `socket` type flag: close-on-exec.
pub const SOCK_CLOEXEC: c_int = 0x80000;
/// `setsockopt` level for socket-level options.
pub const SOL_SOCKET: c_int = 1;
/// Allow rebinding a recently-used local address.
pub const SO_REUSEADDR: c_int = 2;
/// Allow multiple sockets to bind one address: the kernel load-balances
/// incoming connections across them.
pub const SO_REUSEPORT: c_int = 15;

/// IPv4 socket address (`struct sockaddr_in`), 16 bytes.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct sockaddr_in {
    /// Address family (`AF_INET`).
    pub sin_family: u16,
    /// Port in network byte order.
    pub sin_port: u16,
    /// IPv4 address in network byte order.
    pub sin_addr: u32,
    /// Padding to `struct sockaddr` size.
    pub sin_zero: [u8; 8],
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Create a socket; returns its file descriptor or -1.
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    /// Set a socket option.
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    /// Bind a socket to a local address.
    pub fn bind(fd: c_int, addr: *const c_void, addrlen: socklen_t) -> c_int;
    /// Mark a bound socket as accepting connections.
    pub fn listen(fd: c_int, backlog: c_int) -> c_int;
    /// Retrieve the local address of a bound socket.
    pub fn getsockname(fd: c_int, addr: *mut c_void, addrlen: *mut socklen_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_bit_arithmetic() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_ZERO(&mut set);
            CPU_SET(0, &mut set);
            CPU_SET(130, &mut set);
            CPU_SET(4096, &mut set); // out of mask range: ignored
        }
        assert_eq!(set.bits[0], 1);
        assert_eq!(set.bits[2], 1 << 2);
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sched_getcpu_reports_a_cpu() {
        let cpu = unsafe { sched_getcpu() };
        assert!(cpu >= -1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_and_eventfd_round_trip() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let efd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(efd >= 0, "eventfd failed");

            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: 0xDEAD_BEEF,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, efd, &mut ev), 0);

            // Nothing signalled yet: a zero-timeout wait returns no events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // Signal the eventfd and observe the readiness record.
            let one: u64 = 1;
            assert_eq!(
                write(efd, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let datum = out[0].u64;
            assert_eq!(datum, 0xDEAD_BEEF);

            // Drain and confirm the level-triggered readiness clears.
            let mut counter: u64 = 0;
            assert_eq!(read(efd, (&mut counter as *mut u64).cast(), 8), 8);
            assert_eq!(counter, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            assert_eq!(epoll_ctl(ep, EPOLL_CTL_DEL, efd, core::ptr::null_mut()), 0);
            assert_eq!(close(efd), 0);
            assert_eq!(close(ep), 0);
        }
    }

    #[test]
    fn io_uring_uapi_layouts_match_kernel_sizes() {
        assert_eq!(std::mem::size_of::<io_uring_sqe>(), 64);
        assert_eq!(std::mem::size_of::<io_uring_cqe>(), 16);
        assert_eq!(std::mem::size_of::<io_sqring_offsets>(), 40);
        assert_eq!(std::mem::size_of::<io_cqring_offsets>(), 40);
        assert_eq!(std::mem::size_of::<io_uring_params>(), 120);
        assert_eq!(std::mem::size_of::<io_uring_getevents_arg>(), 24);
        assert_eq!(std::mem::size_of::<__kernel_timespec>(), 16);
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
    }

    /// Full raw-syscall round trip: set up a ring, map SQ/CQ/SQEs, arm a
    /// poll on a signalled eventfd, submit+wait with one enter, and reap
    /// the matching CQE.  Skips (rather than fails) on kernels without
    /// io_uring so the shim tests pass everywhere the reactor's runtime
    /// fallback would engage.
    #[cfg(target_os = "linux")]
    #[test]
    fn io_uring_poll_round_trip() {
        unsafe {
            let mut params = io_uring_params::default();
            let ring = io_uring_setup(8, &mut params);
            if ring < 0 {
                eprintln!("skipping io_uring_poll_round_trip: io_uring_setup unavailable");
                return;
            }
            assert!(params.features & IORING_FEAT_SINGLE_MMAP != 0);

            let sq_len = (params.sq_off.array as usize)
                + params.sq_entries as usize * std::mem::size_of::<u32>();
            let cq_len = (params.cq_off.cqes as usize)
                + params.cq_entries as usize * std::mem::size_of::<io_uring_cqe>();
            let ring_len = sq_len.max(cq_len);
            let rings = mmap(
                core::ptr::null_mut(),
                ring_len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                ring,
                IORING_OFF_SQ_RING,
            );
            assert!(rings != MAP_FAILED, "ring mmap failed");
            let sqes_len = params.sq_entries as usize * std::mem::size_of::<io_uring_sqe>();
            let sqes = mmap(
                core::ptr::null_mut(),
                sqes_len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                ring,
                IORING_OFF_SQES,
            );
            assert!(sqes != MAP_FAILED, "sqe mmap failed");

            let base = rings as *mut u8;
            let sq_tail = base.add(params.sq_off.tail as usize) as *mut u32;
            let sq_mask = *(base.add(params.sq_off.ring_mask as usize) as *const u32);
            let sq_array = base.add(params.sq_off.array as usize) as *mut u32;
            let cq_head = base.add(params.cq_off.head as usize) as *mut u32;
            let cq_tail = base.add(params.cq_off.tail as usize) as *const u32;
            let cqes = base.add(params.cq_off.cqes as usize) as *const io_uring_cqe;
            let cq_mask = *(base.add(params.cq_off.ring_mask as usize) as *const u32);

            // Arm a poll on an already-signalled eventfd.
            let efd = eventfd(1, EFD_CLOEXEC);
            assert!(efd >= 0);
            let slot = *sq_tail & sq_mask;
            let sqe = (sqes as *mut io_uring_sqe).add(slot as usize);
            *sqe = io_uring_sqe {
                opcode: IORING_OP_POLL_ADD,
                fd: efd,
                op_flags: EPOLLIN,
                user_data: 0xFEED_F00D,
                ..Default::default()
            };
            *sq_array.add(slot as usize) = slot;
            // Release the tail so the kernel sees the SQE (the test thread
            // is also the submitter, so a volatile store + the syscall's
            // own barrier suffice here).
            core::ptr::write_volatile(sq_tail, (*sq_tail).wrapping_add(1));

            let n = io_uring_enter(ring, 1, 1, IORING_ENTER_GETEVENTS, core::ptr::null(), 0);
            assert_eq!(n, 1, "io_uring_enter consumed the SQE");

            let head = core::ptr::read_volatile(cq_head);
            let tail = core::ptr::read_volatile(cq_tail);
            assert!(tail.wrapping_sub(head) >= 1, "one completion expected");
            let cqe = *cqes.add((head & cq_mask) as usize);
            assert_eq!(cqe.user_data, 0xFEED_F00D);
            assert!(cqe.res > 0 && (cqe.res as u32 & EPOLLIN) != 0);
            core::ptr::write_volatile(cq_head, head.wrapping_add(1));

            assert_eq!(close(efd), 0);
            assert_eq!(munmap(sqes, sqes_len), 0);
            assert_eq!(munmap(rings, ring_len), 0);
            assert_eq!(close(ring), 0);
        }
    }

    /// Two SO_REUSEPORT listeners on one port: build both below std,
    /// then hand them to `TcpListener` and connect through the kernel's
    /// load balancer.
    #[cfg(target_os = "linux")]
    #[test]
    fn so_reuseport_dual_bind() {
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::FromRawFd;

        unsafe fn reuseport_listener(port: u16) -> c_int {
            // SAFETY: raw socket calls on a freshly created fd; the
            // sockaddr_in is a valid 16-byte POD.
            unsafe {
                let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
                assert!(fd >= 0, "socket failed");
                let one: c_int = 1;
                assert_eq!(
                    setsockopt(
                        fd,
                        SOL_SOCKET,
                        SO_REUSEPORT,
                        (&one as *const c_int).cast(),
                        std::mem::size_of::<c_int>() as socklen_t,
                    ),
                    0
                );
                let addr = sockaddr_in {
                    sin_family: AF_INET as u16,
                    sin_port: port.to_be(),
                    sin_addr: u32::from_be_bytes([127, 0, 0, 1]).to_be(),
                    sin_zero: [0; 8],
                };
                assert_eq!(
                    bind(
                        fd,
                        (&addr as *const sockaddr_in).cast(),
                        std::mem::size_of::<sockaddr_in>() as socklen_t,
                    ),
                    0,
                    "bind failed"
                );
                assert_eq!(listen(fd, 16), 0);
                fd
            }
        }

        unsafe {
            let a = TcpListener::from_raw_fd(reuseport_listener(0));
            let port = a.local_addr().unwrap().port();
            let b = TcpListener::from_raw_fd(reuseport_listener(port));
            let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
            drop(stream);
            drop((a, b));
        }
    }
}
