//! Minimal offline shim for the `libc` crate: only the CPU-affinity pieces
//! `cphash-affinity` uses, declared directly against the system C library
//! (which std already links).

#![allow(non_camel_case_types)]
#![allow(non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// `pid_t` as on Linux.
pub type pid_t = i32;

/// `cpu_set_t`: a 1024-bit CPU mask, as glibc defines it.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Clear every CPU in the set (glibc's `CPU_ZERO` macro).
///
/// # Safety
/// `set` must point to a valid `cpu_set_t`.
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// Add a CPU to the set (glibc's `CPU_SET` macro). CPUs beyond the mask
/// width are ignored, matching the macro's bounds behaviour.
///
/// # Safety
/// `set` must point to a valid `cpu_set_t`.
#[allow(non_snake_case)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Bind `pid` (0 = calling thread) to the CPUs in `mask`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const cpu_set_t) -> c_int;
    /// CPU the calling thread is executing on, or -1 on error.
    pub fn sched_getcpu() -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_bit_arithmetic() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_ZERO(&mut set);
            CPU_SET(0, &mut set);
            CPU_SET(130, &mut set);
            CPU_SET(4096, &mut set); // out of mask range: ignored
        }
        assert_eq!(set.bits[0], 1);
        assert_eq!(set.bits[2], 1 << 2);
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sched_getcpu_reports_a_cpu() {
        let cpu = unsafe { sched_getcpu() };
        assert!(cpu >= -1);
    }
}
