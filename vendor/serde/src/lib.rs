//! Minimal offline shim for the `serde` crate.
//!
//! Nothing in this workspace actually serializes through serde yet (reports
//! emit CSV by hand); the derives on config/report types exist so downstream
//! users can opt in. This shim keeps those derives compiling offline:
//! `Serialize` / `Deserialize` are marker traits and the derive macros
//! expand to empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
