//! Minimal offline shim for the `bytes` crate.
//!
//! Implements the subset of [`BytesMut`] plus the [`Buf`] / [`BufMut`]
//! traits that this workspace's wire codecs use. Backed by a plain
//! `Vec<u8>` with a read cursor; `advance`/`split_to` are O(n) in the
//! buffered byte count, which is fine for the small frames involved.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer with a consuming front cursor.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// New empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Remove all bytes.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Split off and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let front = std::mem::replace(&mut self.data, rest);
        BytesMut { data: front }
    }

    /// Copy the readable bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(bytes: &[u8]) -> Self {
        BytesMut {
            data: bytes.to_vec(),
        }
    }
}

/// Read-side buffer operations (shim of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Discard the first `count` bytes.
    fn advance(&mut self, count: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, count: usize) {
        self.data.drain(..count);
    }
}

/// Write-side buffer operations (shim of `bytes::BufMut`).
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, value: u16) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_split_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u64_le(0xDEAD);
        buf.put_u32_le(3);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 16);
        assert_eq!(buf[0], 7);
        buf.advance(1);
        assert_eq!(u64::from_le_bytes(buf[0..8].try_into().unwrap()), 0xDEAD);
        buf.advance(8);
        let size = buf.split_to(4);
        assert_eq!(u32::from_le_bytes(size.to_vec().try_into().unwrap()), 3);
        assert_eq!(&buf[..], b"abc");
        buf.clear();
        assert!(buf.is_empty());
    }
}
