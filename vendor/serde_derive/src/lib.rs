//! Minimal offline shim for `serde_derive`: the `Serialize` / `Deserialize`
//! derives expand to empty marker-trait impls (see vendor/README.md).
//!
//! The input is scanned token-by-token for the `struct`/`enum` name rather
//! than parsed with `syn`, which is plenty for the non-generic config and
//! report types this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following the `struct` or `enum`
/// keyword at the top level of the derive input.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for token in input {
        if let TokenTree::Ident(ident) = token {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}

fn empty_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input).expect("derive input has a struct/enum name");
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Serialize")
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Deserialize")
}
