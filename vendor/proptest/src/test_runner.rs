//! Test configuration and the deterministic RNG behind value generation.

/// Per-`proptest!` configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// xorshift64* generator seeded per test case for reproducibility.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `case`.
    pub fn deterministic(case: u64) -> Self {
        // splitmix64 of the case index gives well-spread nonzero seeds.
        let mut x = case.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (x ^ (x >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
