//! Minimal offline shim for the `proptest` crate (see vendor/README.md).
//!
//! Supports the subset this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {...} }`
//! * range / inclusive-range strategies over unsigned integers
//! * tuple strategies (2- and 3-tuples), [`Just`], `.prop_map(...)`
//! * `prop_oneof![...]`, `prop::collection::vec(...)`, `prop::option::of(...)`
//! * `any::<T>()` for `bool` and unsigned integers
//! * `prop_assert!` / `prop_assert_eq!` (panic-based, like plain asserts)
//!
//! Generation is deterministic: each test case seeds its own xorshift64*
//! stream from the case index, so failures reproduce exactly. Upstream
//! proptest's shrinking is intentionally not implemented.

pub mod strategy;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// Define deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (@body $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(case as u64);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @body $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Pick one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}
