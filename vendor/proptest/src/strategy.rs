//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies of one value type.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `prop::collection::vec`: a vector whose length is drawn from `len` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy built by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of`: `None` one time in three, `Some(inner)` otherwise.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy built by [`option_of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(3) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn union_map_and_collections_compose() {
        let strategy = vec(
            Union::new(vec![
                boxed((0u64..4).prop_map(|v| v * 2)),
                boxed(Just(99u64)),
            ]),
            1..16,
        );
        let mut rng = TestRng::deterministic(7);
        for _ in 0..200 {
            let values = strategy.generate(&mut rng);
            assert!(!values.is_empty() && values.len() < 16);
            assert!(values.iter().all(|v| *v == 99 || (*v % 2 == 0 && *v < 8)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = vec(any::<u32>(), 1..50);
        let a = s.generate(&mut TestRng::deterministic(3));
        let b = s.generate(&mut TestRng::deterministic(3));
        assert_eq!(a, b);
    }
}
