//! Tracked atomics: every operation is a scheduling point, and the declared
//! [`Ordering`] drives the vector-clock happens-before machinery.
//!
//! Each location keeps, besides its value, a *message clock*: the
//! happens-before knowledge released by the last store (or accumulated
//! along a release sequence of RMWs).  Acquire-class loads join it into
//! the reader's view; `Relaxed` loads only stash it in `pending_acquire`,
//! where a later `Acquire` [`fence`] can claim it.

pub use std::sync::atomic::Ordering;

use std::sync::{Mutex, OnceLock};

use crate::rt::{self, OpCtx, VClock};

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Per-location model state: current value + message clock.
struct LocState {
    value: u64,
    msg: VClock,
}

/// The untyped engine all atomic wrappers share.  Values are widened to
/// `u64`.  `new` is `const` (the repo's locks have `const fn new`), so the
/// tracked state is lazily initialised on first use.
struct AtomicCore {
    init: u64,
    state: OnceLock<Mutex<LocState>>,
}

impl AtomicCore {
    const fn new(init: u64) -> AtomicCore {
        AtomicCore {
            init,
            state: OnceLock::new(),
        }
    }

    fn state(&self) -> &Mutex<LocState> {
        self.state.get_or_init(|| {
            Mutex::new(LocState {
                value: self.init,
                msg: VClock::default(),
            })
        })
    }

    fn with_loc<R>(
        &self,
        desc: &str,
        f: impl FnOnce(&mut OpCtx<'_>, &mut LocState) -> Result<R, String>,
    ) -> R {
        let (rt, tid) = rt::current();
        if std::thread::panicking() {
            // Drop glue running while this thread unwinds (after a
            // violation abort): execute the op raw — no scheduling point,
            // and above all no second panic, which would abort the
            // process from inside a destructor.
            return rt.bypass(tid, |ctx| {
                let mut loc = self.state().lock().unwrap_or_else(|e| e.into_inner());
                f(ctx, &mut loc)
            });
        }
        let desc = format!("{desc} @{:p}", self as *const _);
        rt.tracked(tid, &desc, |ctx| {
            let mut loc = self.state().lock().unwrap_or_else(|e| e.into_inner());
            f(ctx, &mut loc)
        })
    }

    fn load(&self, order: Ordering) -> u64 {
        // Checked before the tracked body so the body is infallible (it
        // may also run on the `bypass` path, which cannot report).
        assert!(!is_release(order), "invalid load ordering {order:?}");
        self.with_loc(&format!("load {order:?}"), |ctx, loc| {
            if is_acquire(order) {
                ctx.slot.view.join(&loc.msg);
            } else {
                // Relaxed: no edge now, but an Acquire fence may claim it.
                ctx.slot.pending_acquire.join(&loc.msg);
            }
            Ok(loc.value)
        })
    }

    fn store(&self, val: u64, order: Ordering) {
        assert!(!is_acquire(order), "invalid store ordering {order:?}");
        self.with_loc(&format!("store {order:?}"), |ctx, loc| {
            loc.value = val;
            loc.msg = if is_release(order) {
                ctx.slot.view.clone()
            } else {
                // Relaxed store: releases only what a prior Release fence
                // snapshotted, if any.
                ctx.slot.fence_release.clone().unwrap_or_default()
            };
            Ok(())
        })
    }

    /// Read-modify-write. `f` returns the new value (or `None` to leave the
    /// location untouched — the failed-CAS path).  Returns the old value.
    fn rmw(&self, desc: &str, order: Ordering, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
        self.with_loc(desc, |ctx, loc| {
            let old = loc.value;
            if is_acquire(order) {
                ctx.slot.view.join(&loc.msg);
            } else {
                ctx.slot.pending_acquire.join(&loc.msg);
            }
            if let Some(new) = f(old) {
                loc.value = new;
                // A successful RMW continues the release sequence: the
                // location's message clock is *retained* and, if this op
                // releases, extended with the writer's view.
                if is_release(order) {
                    let view = ctx.slot.view.clone();
                    loc.msg.join(&view);
                } else if let Some(fr) = &ctx.slot.fence_release {
                    loc.msg.join(&fr.clone());
                }
            }
            Ok(old)
        })
    }

    fn swap(&self, val: u64, order: Ordering) -> u64 {
        self.rmw(&format!("swap {order:?}"), order, |_| Some(val))
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        assert!(
            !is_release(failure),
            "invalid CAS failure ordering {failure:?}"
        );
        self.with_loc(&format!("cas {success:?}/{failure:?}"), |ctx, loc| {
            let old = loc.value;
            let order = if old == current { success } else { failure };
            if is_acquire(order) {
                ctx.slot.view.join(&loc.msg);
            } else {
                ctx.slot.pending_acquire.join(&loc.msg);
            }
            if old == current {
                loc.value = new;
                if is_release(success) {
                    let view = ctx.slot.view.clone();
                    loc.msg.join(&view);
                } else if let Some(fr) = ctx.slot.fence_release.clone() {
                    loc.msg.join(&fr);
                }
                Ok(Ok(old))
            } else {
                Ok(Err(old))
            }
        })
    }

    /// Untracked read for `Debug` / drop-time inspection.
    fn raw(&self) -> u64 {
        self.state().lock().unwrap_or_else(|e| e.into_inner()).value
    }
}

/// Declare one typed atomic wrapper over [`AtomicCore`].
macro_rules! atomic_int {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        pub struct $name {
            core: AtomicCore,
        }

        impl $name {
            /// Create a new atomic with `v` as the initial value.
            pub const fn new(v: $ty) -> $name {
                $name { core: AtomicCore::new(v as u64) }
            }

            /// Tracked load.
            pub fn load(&self, order: Ordering) -> $ty {
                self.core.load(order) as $ty
            }

            /// Tracked store.
            pub fn store(&self, val: $ty, order: Ordering) {
                self.core.store(val as u64, order)
            }

            /// Tracked swap; returns the previous value.
            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                self.core.swap(val as u64, order) as $ty
            }

            /// Tracked compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.core
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// Tracked compare-and-exchange; the model never fails
            /// spuriously, so this is exactly `compare_exchange`.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Tracked wrapping add; returns the previous value.
            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_add {order:?}"), order, |old| {
                    Some((old as $ty).wrapping_add(val) as u64)
                }) as $ty
            }

            /// Tracked wrapping sub; returns the previous value.
            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_sub {order:?}"), order, |old| {
                    Some((old as $ty).wrapping_sub(val) as u64)
                }) as $ty
            }

            /// Tracked bitwise and; returns the previous value.
            pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_and {order:?}"), order, |old| {
                    Some(((old as $ty) & val) as u64)
                }) as $ty
            }

            /// Tracked bitwise or; returns the previous value.
            pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_or {order:?}"), order, |old| {
                    Some(((old as $ty) | val) as u64)
                }) as $ty
            }

            /// Tracked bitwise xor; returns the previous value.
            pub fn fetch_xor(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_xor {order:?}"), order, |old| {
                    Some(((old as $ty) ^ val) as u64)
                }) as $ty
            }

            /// Tracked max; returns the previous value.
            pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_max {order:?}"), order, |old| {
                    Some((old as $ty).max(val) as u64)
                }) as $ty
            }

            /// Tracked min; returns the previous value.
            pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(&format!("fetch_min {order:?}"), order, |old| {
                    Some((old as $ty).min(val) as u64)
                }) as $ty
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.core.raw() as $ty)
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(<$ty>::default())
            }
        }
    };
}

atomic_int!(
    /// Tracked equivalent of [`std::sync::atomic::AtomicU8`].
    AtomicU8, u8
);
atomic_int!(
    /// Tracked equivalent of [`std::sync::atomic::AtomicU32`].
    AtomicU32, u32
);
atomic_int!(
    /// Tracked equivalent of [`std::sync::atomic::AtomicU64`].
    AtomicU64, u64
);
atomic_int!(
    /// Tracked equivalent of [`std::sync::atomic::AtomicUsize`].
    AtomicUsize, usize
);

/// Tracked equivalent of [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    core: AtomicCore,
}

impl AtomicBool {
    /// Create a new atomic with `v` as the initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            core: AtomicCore::new(v as u64),
        }
    }

    /// Tracked load.
    pub fn load(&self, order: Ordering) -> bool {
        self.core.load(order) != 0
    }

    /// Tracked store.
    pub fn store(&self, val: bool, order: Ordering) {
        self.core.store(val as u64, order)
    }

    /// Tracked swap; returns the previous value.
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        self.core.swap(val as u64, order) != 0
    }

    /// Tracked compare-and-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.core
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }

    /// Tracked compare-and-exchange (never spuriously fails in the model).
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBool({})", self.core.raw() != 0)
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

/// Tracked memory fence.
///
/// The shim approximation: an `Acquire` fence claims the message clocks of
/// every `Relaxed` load this thread has performed (joins `pending_acquire`
/// into the view); a `Release` fence snapshots the view so that later
/// `Relaxed` stores carry it.  `AcqRel`/`SeqCst` do both.
pub fn fence(order: Ordering) {
    assert!(order != Ordering::Relaxed, "fence(Relaxed) is invalid");
    if std::thread::panicking() {
        // Drop glue during an abort unwind: ordering no longer matters
        // and a second panic would abort the process.
        return;
    }
    let (rt, tid) = rt::current();
    rt.tracked(tid, &format!("fence {order:?}"), |ctx| {
        if is_acquire(order) {
            let pending = std::mem::take(&mut ctx.slot.pending_acquire);
            ctx.slot.view.join(&pending);
        }
        if is_release(order) {
            ctx.slot.fence_release = Some(ctx.slot.view.clone());
        }
        Ok(())
    })
}
