//! Offline shim of the [loom](https://crates.io/crates/loom) model checker.
//!
//! Like the other `vendor/` shims, this implements exactly the surface the
//! workspace uses — here, enough of loom's API to model-check the CPHash
//! concurrency cores (SPSC rings, the epoch router, the remote free-list,
//! and the lock family):
//!
//! * [`model`] / [`Builder`] — run a closure over and over, exploring a
//!   different interleaving of its *model threads* each time, until the
//!   state space is exhausted (or a violation is found).
//! * [`thread::spawn`] / [`thread::JoinHandle`] — model threads.  They are
//!   real OS threads, but a scheduler serializes them: exactly one runs at
//!   a time, and every tracked operation is a scheduling point.
//! * [`sync::atomic`] — tracked atomics.  Every `load`/`store`/RMW is a
//!   scheduling point, and `Ordering`s are honoured by the happens-before
//!   machinery (release/acquire edges merge vector clocks; `Relaxed` moves
//!   data but synchronizes nothing).
//! * [`cell::UnsafeCell`] — tracked data cells.  Accesses are *not*
//!   scheduling points (keeping the state space small) but they are checked
//!   against the vector clocks: a read that does not happen-after every
//!   write, or a write that does not happen-after every prior access, is a
//!   data race and fails the execution — on every schedule, not just the
//!   ones where the accesses physically collide.
//!
//! # The memory model, honestly
//!
//! Executions are explored as sequentially consistent interleavings of the
//! tracked operations.  Weak-memory effects are approximated through the
//! ordering-aware happens-before race detector: publishing data with
//! `Relaxed` where `Release`/`Acquire` is required is reported as a data
//! race even though the interleaving itself is SC.  Stale `Relaxed` loads
//! (reading older values than the SC interleaving would) are *not*
//! simulated; `compare_exchange_weak` never fails spuriously.  This is a
//! deliberate shim trade-off — the full C11 treatment is what the real
//! loom provides, and swapping it in is a one-line change per
//! `vendor/README.md`.
//!
//! # Schedules and replay
//!
//! Every violation report carries the schedule — the sequence of thread
//! ids granted at each scheduling point — plus the tail of the event log.
//! [`Builder::replay`] re-runs a single execution pinned to a schedule, so
//! a failure can be single-stepped deterministically.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cell;
pub mod hint;
mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, Report, Violation};
