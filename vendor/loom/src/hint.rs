//! Spin-loop hints inside the model.

use crate::rt;

/// Model equivalent of [`std::hint::spin_loop`]: a scheduling point that
/// deprioritizes this thread until every `Ready` thread has had a turn.
/// This is what keeps `while !flag.load(..) { spin_loop() }` from turning
/// the DFS into an infinite tree: the spinner only re-runs when the thread
/// it is waiting on cannot make progress either.
pub fn spin_loop() {
    if std::thread::panicking() {
        // Drop glue during an abort unwind must not re-enter the
        // scheduler (a second panic in a destructor aborts the process).
        return;
    }
    let (rt, tid) = rt::current();
    rt.yield_now(tid);
}
