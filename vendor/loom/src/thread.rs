//! Model threads: real OS threads serialized by the per-execution
//! scheduler so that exactly one runs at a time.

use std::sync::{Arc, Mutex};

use crate::rt::{self, Rt};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value.  Blocks this
    /// model thread (it is unschedulable until the target finishes) and
    /// establishes the join happens-before edge.
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, tid) = rt::current();
        rt.join_wait(tid, self.tid);
        let slot = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
        match slot {
            Some(v) => Ok(v),
            // The child panicked before producing a value; the runtime has
            // already recorded the violation, so the payload is synthetic.
            None => Err(Box::new(format!("model thread {} panicked", self.tid))),
        }
    }
}

/// Spawn a model thread.  A scheduling point: the spawn itself is a tracked
/// op, and the child's first event happens-after it.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, tid) = rt::current();
    let child_view = rt.tracked(tid, "spawn", |ctx| Ok(ctx.slot.view.clone()));
    let child_tid = rt.register_thread(child_view);
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let rt2 = Arc::clone(&rt);
    let handle = std::thread::Builder::new()
        .name(format!("loom-t{child_tid}"))
        .spawn(move || {
            Rt::run_thread_body(rt2, child_tid, move || {
                let v = f();
                *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            })
        })
        .expect("spawn model thread");
    rt.lock().os_handles.push(handle);
    JoinHandle {
        tid: child_tid,
        result,
    }
}

/// Model equivalent of [`std::thread::yield_now`]: identical to a spin
/// hint — this thread is deprioritized until every `Ready` thread has run.
pub fn yield_now() {
    let (rt, tid) = rt::current();
    rt.yield_now(tid);
}
