//! The model runtime: one scheduler per execution, vector clocks, and the
//! park/grant protocol every tracked operation goes through.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::model::Violation;

/// Hard cap on model threads (vector clocks are dense vectors).
pub(crate) const MAX_THREADS: usize = 16;

/// Panic payload used to unwind model threads when an execution aborts
/// (violation found, or exploration shutting down).  Caught by the thread
/// wrapper and never surfaced to the user.
pub(crate) struct ModelAbort;

/// A vector clock: component `i` counts the events thread `i` has executed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    t: Vec<u32>,
}

impl VClock {
    pub fn get(&self, i: usize) -> u32 {
        self.t.get(i).copied().unwrap_or(0)
    }

    pub fn set(&mut self, i: usize, v: u32) {
        if self.t.len() <= i {
            self.t.resize(i + 1, 0);
        }
        self.t[i] = v;
    }

    pub fn bump(&mut self, i: usize) {
        let v = self.get(i) + 1;
        self.set(i, v);
    }

    /// Pointwise maximum: `self ∪= other`.
    pub fn join(&mut self, other: &VClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (a, b) in self.t.iter_mut().zip(&other.t) {
            *a = (*a).max(*b);
        }
    }

    /// `other ⊑ self`: every event in `other` is known to `self`.
    pub fn contains(&self, other: &VClock) -> bool {
        (0..other.t.len()).all(|i| self.get(i) >= other.get(i))
    }
}

/// Scheduling state of one model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Parked at a scheduling point, wants to run.
    Ready,
    /// Granted; executing user code until the next scheduling point.
    Running,
    /// Parked via a spin hint / yield: schedulable only when nothing is
    /// `Ready` (this is what keeps spin loops from exploding the DFS).
    Yielded,
    /// Waiting for another thread to finish (`JoinHandle::join`).
    Blocked,
    /// Done (returned or unwound).
    Finished,
}

pub(crate) struct ThreadSlot {
    pub status: Status,
    /// Target of a `Blocked` join.
    pub blocked_on: Option<usize>,
    /// The thread's happens-before knowledge.
    pub view: VClock,
    /// `view` at the moment the thread finished (join edge source).
    pub final_view: VClock,
    /// Message clocks of locations read with `Relaxed`, claimable by a
    /// later `Acquire` fence.
    pub pending_acquire: VClock,
    /// `view` at the latest `Release` fence, carried by later stores.
    pub fence_release: Option<VClock>,
    /// Human-readable description of the op the thread is parked on.
    pub pending_op: String,
}

impl ThreadSlot {
    fn new(view: VClock) -> ThreadSlot {
        ThreadSlot {
            status: Status::Running,
            blocked_on: None,
            view,
            final_view: VClock::default(),
            pending_acquire: VClock::default(),
            fence_release: None,
            pending_op: String::new(),
        }
    }
}

pub(crate) struct RtState {
    pub threads: Vec<ThreadSlot>,
    /// Thread granted at each scheduling point so far.
    pub schedule: Vec<usize>,
    /// One line per tracked event, for violation reports.
    pub events: Vec<String>,
    pub aborting: bool,
    pub violation: Option<Violation>,
    /// OS handles of spawned model threads, reaped at execution end.
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Rt {
    pub state: Mutex<RtState>,
    pub cv: Condvar,
    pub max_threads: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// Handle to the runtime from inside a model thread.
pub(crate) fn current() -> (Arc<Rt>, usize) {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!("loom primitive used outside a model run (wrap the test body in loom::model)")
    })
}

pub(crate) fn set_current(rt: Arc<Rt>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Context handed to a tracked operation's body: the executing thread's
/// slot, with its clock already bumped for this event.
pub(crate) struct OpCtx<'a> {
    pub tid: usize,
    pub slot: &'a mut ThreadSlot,
}

impl Rt {
    pub fn new(max_threads: usize) -> Rt {
        Rt {
            state: Mutex::new(RtState {
                threads: Vec::new(),
                schedule: Vec::new(),
                events: Vec::new(),
                aborting: false,
                violation: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
            max_threads: max_threads.min(MAX_THREADS),
        }
    }

    /// Lock the shared state, shrugging off poisoning (a panicking model
    /// thread must not wedge the whole exploration).
    pub fn lock(&self) -> MutexGuard<'_, RtState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new model thread whose first event happens-after `view`.
    /// Returns its id.  The thread starts `Running` (it parks at its first
    /// scheduling point on its own).
    pub fn register_thread(&self, view: VClock) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        if tid >= self.max_threads {
            let v = self.record_violation_locked(
                &mut st,
                format!(
                    "spawned more than max_threads={} model threads",
                    self.max_threads
                ),
            );
            drop(st);
            drop(v);
            std::panic::panic_any(ModelAbort);
        }
        st.threads.push(ThreadSlot::new(view));
        tid
    }

    /// Park as `status` and wait to be granted `Running`.
    fn park_and_wait(&self, tid: usize, status: Status, desc: &str) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.threads[tid].status = status;
        desc.clone_into(&mut st.threads[tid].pending_op);
        self.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.threads[tid].status == Status::Running {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Run one tracked operation: park at a scheduling point, and once
    /// granted execute `f` with this thread's clock bumped.  `Err` from `f`
    /// is a violation and aborts the execution.
    pub fn tracked<R>(
        &self,
        tid: usize,
        desc: &str,
        f: impl FnOnce(&mut OpCtx<'_>) -> Result<R, String>,
    ) -> R {
        self.park_and_wait(tid, Status::Ready, desc);
        self.execute(tid, desc, f)
    }

    /// Run a tracked op's body with no scheduling point, no event
    /// recording, and no abort panic.  Used for drop glue running while
    /// the thread is already unwinding: a second panic inside a
    /// destructor aborts the whole process, so tracked ops reached from
    /// `Drop` during an abort must execute raw instead.  The bodies run
    /// this way are infallible (ordering validity is checked before the
    /// body; the execution's bookkeeping no longer matters).
    pub fn bypass<R>(&self, tid: usize, f: impl FnOnce(&mut OpCtx<'_>) -> Result<R, String>) -> R {
        let mut st = self.lock();
        let mut ctx = OpCtx {
            tid,
            slot: &mut st.threads[tid],
        };
        f(&mut ctx).unwrap_or_else(|msg| unreachable!("bypass op failed: {msg}"))
    }

    /// Run a tracked *access* (cell read/write): checked against the vector
    /// clocks but not a scheduling point — the thread keeps its grant.
    pub fn access<R>(
        &self,
        tid: usize,
        desc: &str,
        f: impl FnOnce(&mut OpCtx<'_>) -> Result<R, String>,
    ) -> R {
        let st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        drop(st);
        self.execute(tid, desc, f)
    }

    fn execute<R>(
        &self,
        tid: usize,
        desc: &str,
        f: impl FnOnce(&mut OpCtx<'_>) -> Result<R, String>,
    ) -> R {
        let mut st = self.lock();
        let event = format!("t{tid} {desc}");
        st.events.push(event);
        st.threads[tid].view.bump(tid);
        let mut ctx = OpCtx {
            tid,
            slot: &mut st.threads[tid],
        };
        match f(&mut ctx) {
            Ok(r) => r,
            Err(msg) => {
                let _ = self.record_violation_locked(&mut st, msg);
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Spin hint / yield: a scheduling point that deprioritizes this thread
    /// until everything else `Ready` has run.
    pub fn yield_now(&self, tid: usize) {
        self.park_and_wait(tid, Status::Yielded, "yield");
    }

    /// `JoinHandle::join`: block until `target` finishes, then merge its
    /// final clock (the join happens-before edge).
    pub fn join_wait(&self, tid: usize, target: usize) {
        let mut st = self.lock();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.threads[target].status == Status::Finished {
                let fv = st.threads[target].final_view.clone();
                st.threads[tid].view.join(&fv);
                return;
            }
            st.threads[tid].status = Status::Blocked;
            st.threads[tid].blocked_on = Some(target);
            self.cv.notify_all();
            while !st.aborting && st.threads[tid].status != Status::Running {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Mark a thread finished; `panic_payload` is a user panic (assertion
    /// failure inside the model), which becomes the execution's violation.
    pub fn finish_thread(&self, tid: usize, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock();
        if let Some(payload) = panic_payload {
            if !payload.is::<ModelAbort>() && st.violation.is_none() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                let _ = self.record_violation_locked(&mut st, msg);
            }
        }
        st.threads[tid].status = Status::Finished;
        st.threads[tid].final_view = st.threads[tid].view.clone();
        self.cv.notify_all();
    }

    /// Record the first violation (with the schedule so far) and begin
    /// aborting the execution.  Returns the violation for convenience.
    fn record_violation_locked(&self, st: &mut RtState, message: String) -> Violation {
        let v = Violation {
            message,
            schedule: st.schedule.clone(),
            events: st.events.clone(),
        };
        if st.violation.is_none() {
            st.violation = Some(v.clone());
        }
        st.aborting = true;
        self.cv.notify_all();
        v
    }

    /// Same as [`Rt::record_violation_locked`] but from controller context.
    pub fn record_violation(&self, message: String) {
        let mut st = self.lock();
        let _ = self.record_violation_locked(&mut st, message);
    }

    /// Wrapper every model thread body runs inside: installs the
    /// thread-local runtime handle, catches panics, reports the finish.
    pub fn run_thread_body(rt: Arc<Rt>, tid: usize, body: impl FnOnce()) {
        set_current(Arc::clone(&rt), tid);
        let result = catch_unwind(AssertUnwindSafe(body));
        clear_current();
        rt.finish_thread(tid, result.err());
    }
}
