//! Tracked synchronization primitives (`loom::sync::atomic`).

pub mod atomic;
