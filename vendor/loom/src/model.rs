//! Exploration driver: DFS over scheduling choices, bounded replay, and
//! the violation report surfaced to the user.

use std::sync::Arc;

use crate::rt::{Rt, Status, VClock};

/// A failed execution: what went wrong, and the exact schedule to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What failed: a data race, a failed assertion, a deadlock, …
    pub message: String,
    /// Thread granted at each scheduling point (feed to [`Builder::replay`]).
    pub schedule: Vec<usize>,
    /// Event log of the failing execution (one tracked op per line).
    pub events: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model violation: {}", self.message)?;
        let sched: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        writeln!(
            f,
            "schedule ({} points): [{}]",
            sched.len(),
            sched.join(",")
        )?;
        writeln!(f, "replay with Builder::replay(&[{}], ..)", sched.join(","))?;
        let tail = self.events.len().saturating_sub(40);
        if tail > 0 {
            writeln!(f, "… {tail} earlier events elided …")?;
        }
        for e in &self.events[tail..] {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions completed (including the violating one, if any).
    pub executions: usize,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
}

/// One scheduling point on the DFS trail.
struct Choice {
    /// Candidate threads, in deterministic order (previously-running thread
    /// first, then ascending id).
    options: Vec<usize>,
    /// Option currently being explored.
    index: usize,
    /// Whether picking each option costs a preemption (switching away from
    /// a thread that could have continued).
    preempts: Vec<bool>,
    /// Preemptions spent on the path *before* this point.
    preempt_before: usize,
}

enum Mode {
    /// DFS over the whole (bounded) space.
    Explore,
    /// Single execution pinned to a given schedule.
    Replay(Vec<usize>),
}

struct Explorer {
    trail: Vec<Choice>,
    depth: usize,
    path_preemptions: usize,
    preemption_bound: Option<usize>,
    mode: Mode,
}

impl Explorer {
    fn new(preemption_bound: Option<usize>, mode: Mode) -> Explorer {
        Explorer {
            trail: Vec::new(),
            depth: 0,
            path_preemptions: 0,
            preemption_bound,
            mode,
        }
    }

    /// Pick the thread to grant at this scheduling point.
    fn choose(&mut self, enabled: &[usize], prev: Option<usize>) -> usize {
        if let Mode::Replay(schedule) = &self.mode {
            let step = self.depth;
            self.depth += 1;
            let choice = schedule.get(step).copied().unwrap_or_else(|| {
                panic!(
                    "replay schedule ended at step {step} but the execution wants another choice"
                )
            });
            assert!(
                enabled.contains(&choice),
                "replay schedule chose thread {choice} at step {step}, but enabled set is {enabled:?} \
                 (the code under test changed since the schedule was recorded?)"
            );
            return choice;
        }
        if self.depth < self.trail.len() {
            // Re-walking the recorded prefix of this execution.
            let cp = &self.trail[self.depth];
            assert!(
                cp.options.iter().all(|t| enabled.contains(t)) && cp.options.len() == enabled.len(),
                "non-deterministic execution: enabled set changed between runs \
                 (step {}, recorded {:?}, now {:?})",
                self.depth,
                cp.options,
                enabled
            );
            let choice = cp.options[cp.index];
            self.path_preemptions += cp.preempts[cp.index] as usize;
            self.depth += 1;
            return choice;
        }
        // New frontier: record a fresh choice point.
        let mut options: Vec<usize> = Vec::with_capacity(enabled.len());
        if let Some(p) = prev {
            if enabled.contains(&p) {
                options.push(p);
            }
        }
        for &t in enabled {
            if !options.contains(&t) {
                options.push(t);
            }
        }
        let prev_enabled = prev.is_some_and(|p| enabled.contains(&p));
        let preempts: Vec<bool> = options
            .iter()
            .map(|&t| prev_enabled && Some(t) != prev)
            .collect();
        let cp = Choice {
            options,
            index: 0,
            preempts,
            preempt_before: self.path_preemptions,
        };
        let choice = cp.options[cp.index];
        self.path_preemptions += cp.preempts[cp.index] as usize;
        self.trail.push(cp);
        self.depth += 1;
        choice
    }

    /// Advance to the next unexplored execution. Returns `false` when the
    /// space is exhausted (or after a replay's single execution).
    fn advance(&mut self) -> bool {
        if matches!(self.mode, Mode::Replay(_)) {
            return false;
        }
        loop {
            let bound = self.preemption_bound;
            let Some(cp) = self.trail.last_mut() else {
                return false;
            };
            cp.index += 1;
            while cp.index < cp.options.len() {
                let cost = cp.preempt_before + cp.preempts[cp.index] as usize;
                if bound.is_none_or(|b| cost <= b) {
                    break;
                }
                cp.index += 1;
            }
            if cp.index < cp.options.len() {
                self.depth = 0;
                self.path_preemptions = 0;
                return true;
            }
            self.trail.pop();
        }
    }
}

/// Exploration configuration. The defaults suit small, focused models;
/// every knob exists because some suite needed it.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Most model threads one execution may create (≤ 16).
    pub max_threads: usize,
    /// Most scheduling points per execution before the run is reported as
    /// a livelock.
    pub max_branches: usize,
    /// Most executions before exploration gives up (reported as an error:
    /// shrink the model or add a preemption bound).
    pub max_executions: usize,
    /// Bounded search: maximum context switches away from a runnable
    /// thread per execution (`None` = exhaustive).
    pub preemption_bound: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_threads: 5,
            max_branches: 4_000,
            max_executions: 400_000,
            preemption_bound: None,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explore every (bounded) interleaving of `f`; panic with the full
    /// report on the first violation.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let report = self.explore(f);
        if let Some(v) = report.violation {
            panic!("{v}");
        }
    }

    /// Explore every (bounded) interleaving of `f`, stopping at the first
    /// violation; never panics on violations (bound overruns still panic).
    pub fn explore<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.run(f, Mode::Explore)
    }

    /// Run exactly one execution of `f`, granting threads per `schedule`
    /// (as printed in a [`Violation`]).  Returns the violation, if it
    /// reproduces.
    pub fn replay<F>(&self, schedule: &[usize], f: F) -> Option<Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.run(f, Mode::Replay(schedule.to_vec())).violation
    }

    fn run<F>(&self, f: F, mode: Mode) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut explorer = Explorer::new(self.preemption_bound, mode);
        let mut executions = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                panic!(
                    "model exploration exceeded max_executions={} — shrink the model \
                     or set a preemption_bound",
                    self.max_executions
                );
            }
            let violation = self.run_one(&mut explorer, Arc::clone(&f));
            if violation.is_some() {
                return Report {
                    executions,
                    violation,
                };
            }
            if !explorer.advance() {
                return Report {
                    executions,
                    violation: None,
                };
            }
        }
    }

    /// Run a single execution to completion; returns its violation, if any.
    fn run_one<F>(&self, explorer: &mut Explorer, f: Arc<F>) -> Option<Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let rt = Arc::new(Rt::new(self.max_threads));
        let t0 = rt.register_thread(VClock::default());
        debug_assert_eq!(t0, 0);
        {
            let rt2 = Arc::clone(&rt);
            let handle = std::thread::Builder::new()
                .name("loom-t0".into())
                .spawn(move || Rt::run_thread_body(Arc::clone(&rt2), 0, move || f()))
                .expect("spawn model thread 0");
            rt.lock().os_handles.push(handle);
        }

        // Controller loop: wait until every thread is parked, unblock
        // finished joins, pick the next thread, grant it.
        loop {
            let mut st = rt.lock();
            while st.threads.iter().any(|t| t.status == Status::Running) {
                st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            // Joins whose target finished become schedulable again.
            for i in 0..st.threads.len() {
                if st.threads[i].status == Status::Blocked {
                    let target = st.threads[i].blocked_on.expect("blocked without target");
                    if st.threads[target].status == Status::Finished {
                        st.threads[i].status = Status::Running;
                        st.threads[i].blocked_on = None;
                    }
                }
            }
            if st.threads.iter().any(|t| t.status == Status::Running) {
                // A join was released; let it re-check its predicate.
                rt.cv.notify_all();
                continue;
            }
            if st.aborting {
                if st.threads.iter().all(|t| t.status == Status::Finished) {
                    break;
                }
                // Wake everything parked so it can unwind.
                for t in st.threads.iter_mut() {
                    if t.status != Status::Finished {
                        t.status = Status::Running;
                    }
                }
                rt.cv.notify_all();
                continue;
            }
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                break;
            }
            let ready: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .map(|(i, _)| i)
                .collect();
            let enabled = if ready.is_empty() {
                let yielded: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Yielded)
                    .map(|(i, _)| i)
                    .collect();
                if yielded.len() > 1 {
                    // Every runnable thread is parked on a spin-loop yield.
                    // Branching here would let the DFS starve one spinner
                    // forever (an unfair schedule no real OS produces and a
                    // guaranteed livelock for the search), so the wake order
                    // is collapsed to deterministic round-robin: grant the
                    // least recently granted spinner.  Full branching
                    // resumes at the thread's next tracked op, which parks
                    // it `Ready`.
                    let pick = yielded
                        .iter()
                        .copied()
                        .min_by_key(|&t| {
                            st.schedule
                                .iter()
                                .rposition(|&g| g == t)
                                .map_or(-1, |p| p as isize)
                        })
                        .expect("yielded set is non-empty");
                    vec![pick]
                } else {
                    yielded
                }
            } else {
                ready
            };
            if enabled.is_empty() {
                // Only Blocked (unsatisfiable joins) remain: deadlock.
                let waiting: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Blocked)
                    .map(|(i, t)| format!("t{i} joining t{:?}", t.blocked_on))
                    .collect();
                drop(st);
                rt.record_violation(format!("deadlock: {}", waiting.join(", ")));
                continue;
            }
            if st.schedule.len() >= self.max_branches {
                drop(st);
                rt.record_violation(format!(
                    "execution exceeded max_branches={} scheduling points (livelock?)",
                    self.max_branches
                ));
                continue;
            }
            let prev = st.schedule.last().copied();
            let choice = explorer.choose(&enabled, prev);
            st.schedule.push(choice);
            st.threads[choice].status = Status::Running;
            rt.cv.notify_all();
        }

        // All threads finished; reap the OS threads and collect the result.
        let handles = {
            let mut st = rt.lock();
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let st = rt.lock();
        st.violation.clone()
    }
}

/// Explore every interleaving of `f` with the default bounds, panicking on
/// the first violation.  The loom entry point.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
