//! Engine unit tests: exhaustiveness counts, race detection, replay.

use std::sync::Arc;

use loom::cell::UnsafeCell;
use loom::sync::atomic::{fence, AtomicU64, Ordering};
use loom::{Builder, Violation};

/// Two threads, one tracked op each: exactly 2 interleavings.
#[test]
fn exhaustive_two_single_ops() {
    let report = Builder::new().explore(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || {
            a2.store(1, Ordering::Release);
        });
        a.load(Ordering::Acquire);
        h.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(report.executions, 2);
}

/// Two threads, two tracked ops each: C(4,2) = 6 interleavings.
#[test]
fn exhaustive_two_double_ops() {
    let report = Builder::new().explore(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = loom::thread::spawn(move || {
            a2.store(1, Ordering::Release);
            b2.store(1, Ordering::Release);
        });
        a.load(Ordering::Acquire);
        b.load(Ordering::Acquire);
        h.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(report.executions, 6);
}

/// A preemption bound of 0 collapses the space to the non-preemptive
/// schedules: each thread runs to completion once started.
#[test]
fn preemption_bound_zero_prunes() {
    let mut b = Builder::new();
    b.preemption_bound = Some(0);
    let report = b.explore(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
            a2.fetch_add(1, Ordering::AcqRel);
        });
        a.fetch_add(1, Ordering::AcqRel);
        a.fetch_add(1, Ordering::AcqRel);
        h.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.executions < 6,
        "bound should prune below the 6 exhaustive schedules, got {}",
        report.executions
    );
}

fn publish_with(order: Ordering) -> Option<Violation> {
    Builder::new()
        .explore(move || {
            let cell = Arc::new(UnsafeCell::new(0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
            let h = loom::thread::spawn(move || {
                c2.with_mut(|p| {
                    // SAFETY: model-checked — the checker verifies this
                    // write is exclusive on every explored schedule.
                    unsafe { *p = 42 }
                });
                f2.store(1, order);
            });
            if flag.load(if order == Ordering::Relaxed {
                Ordering::Relaxed
            } else {
                Ordering::Acquire
            }) == 1
            {
                let v = cell.with(|p| {
                    // SAFETY: model-checked, as above.
                    unsafe { *p }
                });
                assert_eq!(v, 42);
            }
            h.join().unwrap();
        })
        .violation
}

/// Release/acquire publication carries the happens-before edge: no race.
#[test]
fn release_acquire_publication_clean() {
    assert!(publish_with(Ordering::Release).is_none());
}

/// The same protocol with a Relaxed publish is a data race, even though
/// the SC interleaving still reads 42.
#[test]
fn relaxed_publication_is_a_race() {
    let v = publish_with(Ordering::Relaxed).expect("expected a violation");
    assert!(v.message.contains("data race"), "got: {}", v.message);
    assert!(!v.schedule.is_empty());
}

/// Release fence + relaxed store / relaxed load + acquire fence is the
/// fence-based publication idiom; the approximation must accept it.
#[test]
fn fence_publication_clean() {
    let report = Builder::new().explore(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicU64::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let h = loom::thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: model-checked.
                unsafe { *p = 7 }
            });
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            let v = cell.with(|p| {
                // SAFETY: model-checked.
                unsafe { *p }
            });
            assert_eq!(v, 7);
        }
        h.join().unwrap();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// Join returns the child's value and establishes happens-before.
#[test]
fn join_passes_value_and_synchronizes() {
    let report = Builder::new().explore(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let c2 = Arc::clone(&cell);
        let h = loom::thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: model-checked.
                unsafe { *p = 9 }
            });
            123u32
        });
        assert_eq!(h.join().unwrap(), 123);
        let v = cell.with(|p| {
            // SAFETY: model-checked.
            unsafe { *p }
        });
        assert_eq!(v, 9);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// An assertion failure becomes a violation whose schedule replays to the
/// same failure deterministically.
#[test]
fn replay_reproduces_failure() {
    let body = || {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || {
            a2.store(1, Ordering::Release);
        });
        // Fails only on the schedule where the child ran first.
        assert_eq!(a.load(Ordering::Acquire), 0, "lost the race");
        h.join().unwrap();
    };
    let v = Builder::new().explore(body).violation.expect("violation");
    assert!(v.message.contains("lost the race"), "got: {}", v.message);
    let replayed = Builder::new().replay(&v.schedule, body).expect("replay");
    assert_eq!(replayed.message, v.message);
}

/// A spin loop that can never make progress trips the livelock bound
/// rather than hanging the explorer.
#[test]
fn livelock_reports_bound() {
    let mut b = Builder::new();
    b.max_branches = 64;
    let report = b.explore(|| {
        let a = AtomicU64::new(0);
        // relaxed: the loop is the point — nothing ever stores 1.
        while a.load(Ordering::Relaxed) != 1 {
            loom::hint::spin_loop();
        }
    });
    let v = report.violation.expect("expected livelock violation");
    assert!(v.message.contains("max_branches"), "got: {}", v.message);
}

/// Unjoined threads deadlocking on each other are reported, not hung:
/// here the parent exits while the child blocks forever on a flag.
#[test]
fn stuck_spinner_with_finished_peer_reports() {
    let mut b = Builder::new();
    b.max_branches = 64;
    let report = b.explore(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let h = loom::thread::spawn(move || {
            // relaxed: spin target; never satisfied by design.
            while f2.load(Ordering::Relaxed) != 1 {
                loom::hint::spin_loop();
            }
        });
        h.join().unwrap();
    });
    let v = report.violation.expect("expected violation");
    assert!(v.message.contains("max_branches"), "got: {}", v.message);
}

/// compare_exchange: two CAS-incrementing threads never lose an update.
#[test]
fn cas_counter_exact() {
    let report = Builder::new().explore(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || loop {
            let cur = a2.load(Ordering::Relaxed); // relaxed: CAS below is the sync point
            if a2
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        });
        loop {
            let cur = a.load(Ordering::Relaxed); // relaxed: CAS below is the sync point
            if a.compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        h.join().unwrap();
        assert_eq!(a.load(Ordering::Acquire), 2);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
