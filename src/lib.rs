//! # cphash-suite — the CPHash reproduction, in one crate
//!
//! This façade crate re-exports the whole workspace so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`table`] | `cphash` | the cache-partitioned hash table itself (CPHASH) |
//! | [`lockhash`] | `cphash-lockhash` | the fine-grained-locking baseline (LOCKHASH) |
//! | [`hashcore`] | `cphash-hashcore` | the shared partition data structure |
//! | [`channel`] | `cphash-channel` | shared-memory message passing (rings + single slot) |
//! | [`alloc`] | `cphash-alloc` | the per-partition value allocator |
//! | [`sync`] | `cphash-sync` | spinlock / ticket / Anderson locks |
//! | [`affinity`] | `cphash-affinity` | topology modelling and thread pinning |
//! | [`cachesim`] | `cphash-cachesim` | the software cache model behind Figures 6–7 |
//! | [`cacheline`] | `cphash-cacheline` | cache-line geometry and packing arithmetic |
//! | [`kvproto`] | `cphash-kvproto` | the CPSERVER/LOCKSERVER wire protocol |
//! | [`kvserver`] | `cphash-kvserver` | CPSERVER, LOCKSERVER and the memcached-style baseline |
//! | [`loadgen`] | `cphash-loadgen` | workload generation and benchmark drivers |
//! | [`migrate`] | `cphash-migrate` | online repartitioning (live key migration) |
//! | [`perfmon`] | `cphash-perfmon` | timing, histograms and figure reports |
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use cphash_suite::{CpHash, CpHashConfig};
//!
//! let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
//! clients[0].insert(7, b"seven").unwrap();
//! assert_eq!(clients[0].get(7).unwrap().unwrap().as_slice(), b"seven");
//! drop(clients);
//! table.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub use cphash as table;
pub use cphash_affinity as affinity;
pub use cphash_alloc as alloc;
pub use cphash_cacheline as cacheline;
pub use cphash_cachesim as cachesim;
pub use cphash_channel as channel;
pub use cphash_hashcore as hashcore;
pub use cphash_kvproto as kvproto;
pub use cphash_kvserver as kvserver;
pub use cphash_loadgen as loadgen;
pub use cphash_lockhash as lockhash;
pub use cphash_migrate as migrate;
pub use cphash_perfmon as perfmon;

// The names most callers want, at the top level.
pub use cphash::{
    AnyKeyClient, BatchStats, BucketLayout, ClientHandle, Completion, CompletionKind, CpHash,
    CpHashConfig, EvictionPolicy, KeyRef, KvClient, KvError, KvOp, MigrationPacing, OpError,
    PartitionStats, PartitionedClient, RemoteClient, ServerPipeline, TableError, ValueBytes,
    MAX_KEY,
};
pub use cphash_kvserver::{CpServer, CpServerConfig, LockServer, LockServerConfig};
pub use cphash_loadgen::{DriverOptions, RunResult, WorkloadSpec};
pub use cphash_lockhash::{LockHash, LockHashConfig};
pub use cphash_migrate::{MigrationPacer, RepartitionCoordinator};
