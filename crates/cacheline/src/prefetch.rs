//! Software-prefetch intrinsics.
//!
//! CPHash's server loop hides DRAM latency by issuing prefetches for every
//! hash bucket in a batch of requests *before* touching any of them, so the
//! resulting cache misses overlap instead of serializing (the same batched
//! bucket-prefetch staging DHash and the GPU compact-hash-table work use).
//! This module is the one place the workspace talks to the hardware about
//! it: a real `core::arch` prefetch on x86-64, a `prfm` on AArch64, and a
//! no-op on everything else — callers never need their own `cfg` ladders.

/// Hint the CPU to pull the cache line containing `ptr` into the L1 data
/// cache for a future read.
///
/// This is *advisory*: it never faults (prefetch instructions ignore
/// invalid addresses), never changes architectural state, and compiles to
/// nothing on architectures without a stable prefetch primitive.  Pass a
/// pointer to the *first byte you will read*; the hardware fetches the
/// whole line around it.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is architecturally defined to be a hint with no
    // side effects; it cannot fault even on unmapped addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP is a hint instruction; it cannot fault and
    // touches no architectural state beyond the cache hierarchy.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{addr}]",
            addr = in(reg) ptr as *const u8,
            options(nostack, preserves_flags),
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = ptr;
    }
}

/// Whether [`prefetch_read`] emits a real prefetch instruction on this
/// target (false means it compiles to nothing).
///
/// Benchmarks use this to annotate results: an ablation run on a target
/// without prefetch support measures only the batching effect.
#[inline]
pub const fn prefetch_supported() -> bool {
    cfg!(any(target_arch = "x86_64", target_arch = "aarch64"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_harmless_hint() {
        // Valid, dangling and null pointers must all be accepted: the
        // instruction is defined never to fault.
        let value = 42u64;
        prefetch_read(&value);
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(0xDEAD_B000 as *const u8);
        assert_eq!(value, 42);
    }

    #[test]
    fn support_flag_matches_target() {
        #[cfg(target_arch = "x86_64")]
        assert!(prefetch_supported());
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert!(!prefetch_supported());
    }
}
