//! Cache-line geometry and alignment primitives.
//!
//! CPHash's whole design is phrased in units of cache lines: partition
//! metadata should stay in the owning core's cache, message-passing buffers
//! should move between caches one full line at a time, and several small
//! messages should *pack* into a single 64-byte line so one coherence
//! transfer delivers a whole batch (paper §3.4, §6.2).
//!
//! This crate provides the small, dependency-free vocabulary the rest of the
//! workspace builds on:
//!
//! * [`CACHE_LINE_SIZE`] — the line size every layout computation uses.
//! * [`CacheAligned`] — a `#[repr(align(64))]` wrapper that forces a value to
//!   start on a line boundary so that independently-written fields never
//!   share a line (false sharing).
//! * [`geometry`] — address ↔ line-index arithmetic used by the cache model
//!   and by the ring buffers to detect "a whole line worth of messages has
//!   been produced".
//! * [`packing`] — messages-per-line arithmetic backing the paper's claim
//!   that eight 8-byte lookups (or four 16-byte inserts) fit in one line,
//!   plus the tagged-bucket line geometry (how many 8-bit tags + `u32`
//!   element refs + overflow head pack into one bucket's own line).
//! * [`prefetch`] — the software-prefetch hint the batched server pipeline
//!   uses to overlap bucket cache misses (real instruction on x86-64 and
//!   AArch64, no-op elsewhere).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod geometry;
pub mod packing;
pub mod prefetch;

mod aligned;

pub use aligned::CacheAligned;
pub use prefetch::{prefetch_read, prefetch_supported};

/// Size, in bytes, of a cache line on the machines the paper targets
/// (and on essentially every contemporary x86-64 / AArch64 part).
///
/// The paper's packing arithmetic ("a cache line can hold several messages
/// ... in our test machines a cache line is 64 bytes", §3.4) is relative to
/// this constant; all layout code in the workspace uses it rather than
/// hard-coding 64.
pub const CACHE_LINE_SIZE: usize = 64;

/// Number of 64-bit words in one cache line.
pub const WORDS_PER_LINE: usize = CACHE_LINE_SIZE / core::mem::size_of::<u64>();

/// Round `n` up to the next multiple of the cache-line size.
///
/// Used when sizing value allocations and ring-buffer storage so that
/// adjacent objects never straddle a line owned by another writer.
#[inline]
pub const fn round_up_to_line(n: usize) -> usize {
    (n + CACHE_LINE_SIZE - 1) & !(CACHE_LINE_SIZE - 1)
}

/// Round `n` down to a multiple of the cache-line size.
#[inline]
pub const fn round_down_to_line(n: usize) -> usize {
    n & !(CACHE_LINE_SIZE - 1)
}

/// Number of cache lines needed to hold `n` bytes.
///
/// A zero-byte object occupies zero lines (the paper's element header
/// describes the value as "zero or more cache lines following the header",
/// §3.1).
#[inline]
pub const fn lines_for_bytes(n: usize) -> usize {
    n.div_ceil(CACHE_LINE_SIZE)
}

/// Returns `true` if `n` is a multiple of the cache-line size.
#[inline]
pub const fn is_line_multiple(n: usize) -> bool {
    n.is_multiple_of(CACHE_LINE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_size_is_a_power_of_two() {
        assert!(CACHE_LINE_SIZE.is_power_of_two());
        assert_eq!(WORDS_PER_LINE, 8);
    }

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up_to_line(0), 0);
        assert_eq!(round_up_to_line(1), 64);
        assert_eq!(round_up_to_line(63), 64);
        assert_eq!(round_up_to_line(64), 64);
        assert_eq!(round_up_to_line(65), 128);
    }

    #[test]
    fn round_down_basics() {
        assert_eq!(round_down_to_line(0), 0);
        assert_eq!(round_down_to_line(1), 0);
        assert_eq!(round_down_to_line(64), 64);
        assert_eq!(round_down_to_line(127), 64);
        assert_eq!(round_down_to_line(128), 128);
    }

    #[test]
    fn lines_for_bytes_basics() {
        assert_eq!(lines_for_bytes(0), 0);
        assert_eq!(lines_for_bytes(1), 1);
        assert_eq!(lines_for_bytes(64), 1);
        assert_eq!(lines_for_bytes(65), 2);
        assert_eq!(lines_for_bytes(8 * 64), 8);
    }

    #[test]
    fn is_line_multiple_basics() {
        assert!(is_line_multiple(0));
        assert!(is_line_multiple(64));
        assert!(is_line_multiple(640));
        assert!(!is_line_multiple(1));
        assert!(!is_line_multiple(63));
    }

    #[test]
    fn round_up_then_down_is_identity_on_multiples() {
        for n in (0..4096).step_by(64) {
            assert_eq!(round_up_to_line(n), n);
            assert_eq!(round_down_to_line(n), n);
        }
    }
}
