//! Message-packing arithmetic.
//!
//! Batching is one of CPHash's two load-bearing ideas (the other is
//! partition-per-core placement).  The paper's accounting (§6.2) is:
//!
//! > "CPHASH can place eight lookup messages (consisting of an 8-byte key),
//! > or four insert messages (consisting of an 8-byte key and an 8-byte
//! > value pointer) into a single 64-byte cache line."
//!
//! and the headline consequence:
//!
//! > "CPHASH incurs about 1.5 cache misses, on average, to send and receive
//! > two messages per operation."
//!
//! The functions here capture that arithmetic so the ring buffers, the cache
//! model, and the Figure 6/7 harness all agree on how many messages share a
//! line transfer.

use crate::CACHE_LINE_SIZE;

/// How many fixed-size messages of `msg_size` bytes pack into one cache line.
///
/// Messages larger than a line pack zero-per-line (they must be split by the
/// caller); the CPHash request/response structs are all ≤ 16 bytes so this
/// never happens in practice.
#[inline]
pub const fn messages_per_line(msg_size: usize) -> usize {
    if msg_size == 0 {
        return usize::MAX;
    }
    CACHE_LINE_SIZE / msg_size
}

/// Number of cache-line transfers needed to move `n` messages of
/// `msg_size` bytes from producer to consumer, assuming messages are packed
/// contiguously and flushed one full line at a time.
#[inline]
pub const fn lines_for_messages(n: usize, msg_size: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let per_line = messages_per_line(msg_size);
    if per_line == 0 {
        // One message spans multiple lines.
        return n * crate::lines_for_bytes(msg_size);
    }
    n.div_ceil(per_line)
}

/// Average number of line transfers *per message* for a batch of `n`
/// messages — the quantity that drops from 1.0 (single-slot channel) towards
/// `1 / messages_per_line` as batching improves.
#[inline]
pub fn lines_per_message(n: usize, msg_size: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    lines_for_messages(n, msg_size) as f64 / n as f64
}

/// Bytes of one inline bucket entry's key tag (see
/// [`bucket_inline_slots`]).
pub const BUCKET_TAG_BYTES: usize = 1;

/// Bytes of one inline bucket entry's element reference (a `u32` slot
/// index into the partition's element slab).
pub const BUCKET_REF_BYTES: usize = 4;

/// Bytes of the overflow chain head stored at the end of a bucket line.
pub const BUCKET_OVERFLOW_BYTES: usize = 4;

/// How many tagged entries pack inline into one bucket cache line.
///
/// The tagged-bucket layout opens each line with a *header word*: the
/// 8-bit key tags share the line's first 8-byte word with a one-byte
/// occupancy bitmap, so at most `8 - 1 = 7` tags fit — which also leaves
/// the `u32` element refs naturally aligned right behind the header with
/// zero padding.  The refs plus the `u32` overflow chain head must then
/// still fit in the remainder of the line; whichever bound is tighter
/// wins.  For the ubiquitous 64-byte line both bounds allow 7, and the
/// populated prefix of the line is `8 + 7·4 + 4 = 40` bytes.
#[inline]
pub const fn bucket_inline_slots(line_bytes: usize) -> usize {
    // Tags + occupancy bitmap share the leading 8-byte header word.
    let by_header = (8 - 1) / BUCKET_TAG_BYTES;
    // Refs + overflow head fill the rest of the line.
    if line_bytes < 8 + BUCKET_OVERFLOW_BYTES {
        return 0;
    }
    let by_body = (line_bytes - 8 - BUCKET_OVERFLOW_BYTES) / BUCKET_REF_BYTES;
    if by_header < by_body {
        by_header
    } else {
        by_body
    }
}

/// Bytes of one bucket line actually populated by `slots` inline entries
/// (header word + refs + overflow head); the rest of the line is padding.
#[inline]
pub const fn bucket_line_used_bytes(slots: usize) -> usize {
    8 + slots * BUCKET_REF_BYTES + BUCKET_OVERFLOW_BYTES
}

/// Paper constant: bytes in a `Lookup` request message (8-byte key).
pub const LOOKUP_MSG_BYTES: usize = 8;

/// Paper constant: bytes in an `Insert` request message (8-byte key +
/// 8-byte size/value-pointer word).
pub const INSERT_MSG_BYTES: usize = 16;

/// Summary of the packing behaviour of one message type, used by the
/// benchmark harness to print the §6.2 claims next to measured values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingSummary {
    /// Size of one message in bytes.
    pub msg_size: usize,
    /// Messages that fit in a single cache line.
    pub per_line: usize,
    /// Line transfers needed for a 1,000-message batch.
    pub lines_per_1000: usize,
}

/// Compute the packing summary for a message size.
pub const fn summarize(msg_size: usize) -> PackingSummary {
    PackingSummary {
        msg_size,
        per_line: messages_per_line(msg_size),
        lines_per_1000: lines_for_messages(1000, msg_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packing_claims_hold() {
        // Eight 8-byte lookup messages per line.
        assert_eq!(messages_per_line(LOOKUP_MSG_BYTES), 8);
        // Four 16-byte insert messages per line.
        assert_eq!(messages_per_line(INSERT_MSG_BYTES), 4);
    }

    #[test]
    fn lines_for_messages_basics() {
        assert_eq!(lines_for_messages(0, 8), 0);
        assert_eq!(lines_for_messages(1, 8), 1);
        assert_eq!(lines_for_messages(8, 8), 1);
        assert_eq!(lines_for_messages(9, 8), 2);
        assert_eq!(lines_for_messages(16, 16), 4);
        assert_eq!(lines_for_messages(1000, 8), 125);
    }

    #[test]
    fn oversized_messages_fall_back_to_per_message_lines() {
        // A 128-byte message needs two lines each.
        assert_eq!(lines_for_messages(3, 128), 6);
    }

    #[test]
    fn lines_per_message_approaches_packing_limit() {
        // A single message costs a full line.
        assert!((lines_per_message(1, 8) - 1.0).abs() < 1e-12);
        // A big batch of lookups approaches 1/8 line per message.
        let amortized = lines_per_message(10_000, 8);
        assert!((amortized - 0.125).abs() < 1e-3, "amortized={amortized}");
    }

    #[test]
    fn summary_matches_components() {
        let s = summarize(8);
        assert_eq!(s.per_line, 8);
        assert_eq!(s.lines_per_1000, 125);
        let s = summarize(16);
        assert_eq!(s.per_line, 4);
        assert_eq!(s.lines_per_1000, 250);
    }

    #[test]
    fn bucket_line_geometry_fits_seven_tagged_entries() {
        // The tagged-bucket layout: 7 tags + occupancy byte fill the header
        // word, 7 refs + overflow head fill 32 more bytes — 40 of 64 used.
        let n = bucket_inline_slots(CACHE_LINE_SIZE);
        assert_eq!(n, 7);
        assert_eq!(bucket_line_used_bytes(n), 40);
        assert!(bucket_line_used_bytes(n) <= CACHE_LINE_SIZE);
        // The header bound (not the body bound) is what caps a 64-byte
        // line; a hypothetical 32-byte line is body-capped instead.
        assert_eq!(bucket_inline_slots(32), 5);
        assert_eq!(bucket_inline_slots(8), 0);
    }

    #[test]
    fn send_and_receive_two_messages_is_about_one_and_a_half_lines() {
        // The §6.2 claim: one operation = request (packed with 7 others)
        // + response (packed similarly) + the read-index update amortized
        // over a line's worth of messages.  With 8-per-line packing the
        // request side costs 1/8 line and the response side 1 full line of
        // value-pointer responses per 8 ops plus the data access; the
        // measured constant in the paper is ~1.5 misses for two messages.
        // Here we just check our arithmetic brackets that constant when a
        // realistic mix is used.
        let request_lines = lines_per_message(1024, LOOKUP_MSG_BYTES);
        let response_lines = lines_per_message(1024, INSERT_MSG_BYTES);
        let per_op = request_lines + response_lines;
        assert!(per_op > 0.3 && per_op < 1.5, "per_op={per_op}");
    }
}
