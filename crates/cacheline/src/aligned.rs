//! Cache-line aligned wrapper type.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Forces the wrapped value to begin on a cache-line boundary and to occupy
/// a whole number of cache lines.
///
/// The message-passing indices of the ring buffers (read index, write index,
/// temporary write index) are each wrapped in `CacheAligned` so the producer
/// and consumer never invalidate each other's lines when updating their own
/// private index — the paper calls this out explicitly: "The read index,
/// write index and temporary write index are aligned in memory to avoid
/// false sharing" (§3.4).
///
/// `CacheAligned<T>` derefs to `T`, so it is transparent at use sites.
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wrap a value, aligning it to a cache-line boundary.
    #[inline]
    pub const fn new(value: T) -> Self {
        CacheAligned(value)
    }

    /// Consume the wrapper and return the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0
    }

    /// Borrow the inner value.
    #[inline]
    pub const fn get(&self) -> &T {
        &self.0
    }

    /// Mutably borrow the inner value.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> Deref for CacheAligned<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CacheAligned<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CacheAligned<T> {
    #[inline]
    fn from(value: T) -> Self {
        CacheAligned(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CacheAligned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CacheAligned").field(&self.0).finish()
    }
}

impl<T: fmt::Display> fmt::Display for CacheAligned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CACHE_LINE_SIZE;
    use core::sync::atomic::AtomicUsize;

    #[test]
    fn alignment_is_a_cache_line() {
        assert_eq!(core::mem::align_of::<CacheAligned<u8>>(), CACHE_LINE_SIZE);
        assert_eq!(core::mem::align_of::<CacheAligned<u64>>(), CACHE_LINE_SIZE);
        assert_eq!(
            core::mem::align_of::<CacheAligned<AtomicUsize>>(),
            CACHE_LINE_SIZE
        );
    }

    #[test]
    fn small_values_occupy_a_full_line() {
        assert_eq!(core::mem::size_of::<CacheAligned<u8>>(), CACHE_LINE_SIZE);
        assert_eq!(core::mem::size_of::<CacheAligned<u64>>(), CACHE_LINE_SIZE);
    }

    #[test]
    fn adjacent_array_entries_live_on_distinct_lines() {
        let arr = [CacheAligned::new(0u64), CacheAligned::new(1u64)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= CACHE_LINE_SIZE);
        assert_eq!(a % CACHE_LINE_SIZE, 0);
        assert_eq!(b % CACHE_LINE_SIZE, 0);
    }

    #[test]
    fn deref_round_trip() {
        let mut x = CacheAligned::new(41u32);
        *x += 1;
        assert_eq!(*x.get(), 42);
        assert_eq!(x.into_inner(), 42);
    }

    #[test]
    fn from_and_display() {
        let x: CacheAligned<u32> = 7.into();
        assert_eq!(format!("{x}"), "7");
        assert_eq!(format!("{x:?}"), "CacheAligned(7)");
    }
}
