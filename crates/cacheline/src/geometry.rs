//! Address ↔ cache-line arithmetic.
//!
//! The software cache model ([`cphash-cachesim`]) tracks state per *line*,
//! not per byte; the ring buffers flush when a *line* worth of messages has
//! been produced. Both need the same small set of address computations,
//! collected here.

use crate::CACHE_LINE_SIZE;

/// Identifier of a cache line: the address shifted right by `log2(line size)`.
///
/// Two addresses map to the same `LineId` exactly when they live on the same
/// cache line and therefore move between caches together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub u64);

impl LineId {
    /// The line containing byte address `addr`.
    #[inline]
    pub const fn containing(addr: u64) -> Self {
        LineId(addr / CACHE_LINE_SIZE as u64)
    }

    /// First byte address of this line.
    #[inline]
    pub const fn base_addr(self) -> u64 {
        self.0 * CACHE_LINE_SIZE as u64
    }

    /// The `n`-th line after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Self {
        LineId(self.0 + n)
    }
}

/// The line id of a Rust reference (used when feeding real objects to the
/// cache model).
#[inline]
pub fn line_of<T>(r: &T) -> LineId {
    LineId::containing(r as *const T as u64)
}

/// All line ids touched by an object of `len` bytes starting at `addr`.
///
/// Zero-length objects touch no lines.
pub fn lines_touched(addr: u64, len: usize) -> impl Iterator<Item = LineId> {
    let first = if len == 0 {
        1
    } else {
        LineId::containing(addr).0
    };
    let last = if len == 0 {
        0
    } else {
        LineId::containing(addr + len as u64 - 1).0
    };
    (first..=last).map(LineId)
}

/// Number of distinct cache lines an object of `len` bytes starting at
/// `addr` overlaps. Accounts for misalignment: a 64-byte object that starts
/// mid-line straddles two lines.
#[inline]
pub fn lines_spanned(addr: u64, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = addr / CACHE_LINE_SIZE as u64;
    let last = (addr + len as u64 - 1) / CACHE_LINE_SIZE as u64;
    (last - first + 1) as usize
}

/// Returns `true` when `[addr, addr+len)` is entirely inside a single cache
/// line. Message structs must satisfy this so that writing one message never
/// dirties two lines.
#[inline]
pub fn fits_in_one_line(addr: u64, len: usize) -> bool {
    lines_spanned(addr, len) <= 1
}

/// Offset of `addr` within its cache line.
#[inline]
pub const fn offset_in_line(addr: u64) -> usize {
    (addr % CACHE_LINE_SIZE as u64) as usize
}

/// Returns `true` when `addr` is the first byte of a cache line.
#[inline]
pub const fn is_line_start(addr: u64) -> bool {
    addr.is_multiple_of(CACHE_LINE_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_id_containing_and_base() {
        assert_eq!(LineId::containing(0), LineId(0));
        assert_eq!(LineId::containing(63), LineId(0));
        assert_eq!(LineId::containing(64), LineId(1));
        assert_eq!(LineId(5).base_addr(), 320);
        assert_eq!(LineId(3).offset(4), LineId(7));
    }

    #[test]
    fn lines_spanned_handles_alignment() {
        // Aligned 64-byte object: exactly one line.
        assert_eq!(lines_spanned(128, 64), 1);
        // Misaligned 64-byte object: straddles two lines.
        assert_eq!(lines_spanned(130, 64), 2);
        // Tiny object never spans more than one line when aligned.
        assert_eq!(lines_spanned(8, 8), 1);
        // Zero bytes span zero lines.
        assert_eq!(lines_spanned(8, 0), 0);
        // Large object.
        assert_eq!(lines_spanned(0, 4096), 64);
    }

    #[test]
    fn lines_touched_enumerates_every_line() {
        let ids: Vec<_> = lines_touched(60, 10).collect();
        assert_eq!(ids, vec![LineId(0), LineId(1)]);
        let ids: Vec<_> = lines_touched(64, 128).collect();
        assert_eq!(ids, vec![LineId(1), LineId(2)]);
        assert_eq!(lines_touched(100, 0).count(), 0);
    }

    #[test]
    fn fits_in_one_line_checks() {
        assert!(fits_in_one_line(0, 64));
        assert!(fits_in_one_line(32, 32));
        assert!(!fits_in_one_line(32, 33));
        assert!(fits_in_one_line(12345, 0));
    }

    #[test]
    fn offsets_and_starts() {
        assert_eq!(offset_in_line(0), 0);
        assert_eq!(offset_in_line(70), 6);
        assert!(is_line_start(0));
        assert!(is_line_start(192));
        assert!(!is_line_start(191));
    }

    #[test]
    fn line_of_reference_is_stable() {
        let x = 42u64;
        assert_eq!(line_of(&x), line_of(&x));
    }

    #[test]
    fn touched_count_matches_spanned() {
        for addr in [0u64, 1, 17, 63, 64, 65, 1000] {
            for len in [0usize, 1, 7, 8, 63, 64, 65, 200, 511] {
                assert_eq!(
                    lines_touched(addr, len).count(),
                    lines_spanned(addr, len),
                    "addr={addr} len={len}"
                );
            }
        }
    }
}
