//! Criterion microbenchmarks for the message-passing substrate: the batched
//! ring buffer against the single-slot channel (§3.4's two designs), plus
//! the raw cost of the packing-aware producer path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cphash_channel::{duplex, ring, RingConfig, SingleSlotChannel};

fn bench_ring_throughput(c: &mut Criterion) {
    const BATCH: u64 = 8_192;
    let mut group = c.benchmark_group("channel_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function("ring_same_thread_push_pop", |b| {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(16_384));
        let mut out = Vec::with_capacity(BATCH as usize);
        b.iter(|| {
            for i in 0..BATCH {
                tx.try_push(i).unwrap();
            }
            tx.flush();
            out.clear();
            rx.pop_batch(&mut out, BATCH as usize);
            assert_eq!(out.len(), BATCH as usize);
        });
    });

    group.bench_function("ring_cross_thread_round_trip", |b| {
        b.iter(|| {
            let (mut client, mut server) = duplex::<u64, u64>(RingConfig::with_capacity(4096));
            let handle = std::thread::spawn(move || {
                let mut batch = Vec::with_capacity(512);
                let mut served = 0u64;
                while served < BATCH {
                    batch.clear();
                    if server.recv_batch(&mut batch, 512) == 0 {
                        core::hint::spin_loop();
                        continue;
                    }
                    for m in &batch {
                        server.send_blocking(*m);
                    }
                    server.flush();
                    served += batch.len() as u64;
                }
            });
            let mut sent = 0u64;
            let mut got = 0u64;
            let mut resp = Vec::with_capacity(512);
            while got < BATCH {
                while sent < BATCH && client.try_send(sent).is_ok() {
                    sent += 1;
                }
                client.flush();
                resp.clear();
                got += client.recv_batch(&mut resp, 512) as u64;
            }
            handle.join().unwrap();
        });
    });

    group.bench_function("single_slot_round_trip", |b| {
        // One outstanding exchange at a time, same thread serving.
        let channel = SingleSlotChannel::<u64, u64>::new();
        b.iter(|| {
            for i in 0..256u64 {
                channel.send_request(i);
                assert!(channel.try_serve(|x| x + 1));
                assert_eq!(channel.wait_response(), i + 1);
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ring_throughput);
criterion_main!(benches);
