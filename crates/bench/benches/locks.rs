//! Criterion microbenchmarks for the lock algorithms (§6.2's discussion of
//! spinlocks vs scalable locks): uncontended acquire/release cost and a
//! 4-thread contended counter.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use cphash_sync::{ArrayLock, RawLock, RawSpinLock, TicketLock};

fn bench_uncontended<L: RawLock + 'static>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("lock_uncontended_{name}"), |b| {
        let lock = L::default();
        b.iter(|| {
            for _ in 0..1_000 {
                lock.raw_lock();
                lock.raw_unlock();
            }
        });
    });
}

fn bench_contended<L: RawLock + 'static>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("lock_contended4_{name}"), |b| {
        b.iter(|| {
            let lock = Arc::new(L::default());
            let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    let counter = Arc::clone(&counter);
                    std::thread::spawn(move || {
                        for _ in 0..2_000 {
                            lock.raw_lock();
                            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            lock.raw_unlock();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 8_000);
        });
    });
}

fn bench_locks(c: &mut Criterion) {
    bench_uncontended::<RawSpinLock>(c, "spin");
    bench_uncontended::<TicketLock>(c, "ticket");
    bench_uncontended::<ArrayLock>(c, "anderson");
    bench_contended::<RawSpinLock>(c, "spin");
    bench_contended::<TicketLock>(c, "ticket");
    bench_contended::<ArrayLock>(c, "anderson");
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
