//! Criterion microbenchmarks for the shared partition data structure
//! (bucket chains, LRU list, allocator): the per-operation cost floor that
//! both CPHash and LockHash build on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cphash_hashcore::{EvictionPolicy, Partition, PartitionConfig};

fn prefilled(n: u64, capacity: Option<usize>, eviction: EvictionPolicy) -> Partition {
    let mut p = Partition::new(PartitionConfig::new(n as usize, capacity).with_eviction(eviction));
    for key in 0..n {
        p.insert_copy(key, &key.to_le_bytes()).unwrap();
    }
    p
}

fn bench_partition(c: &mut Criterion) {
    const KEYS: u64 = 16_384;
    let mut group = c.benchmark_group("partition_ops");
    group.sample_size(30);
    group.throughput(Throughput::Elements(KEYS));

    group.bench_function("lookup_hit_lru", |b| {
        let mut p = prefilled(KEYS, None, EvictionPolicy::Lru);
        let mut buf = Vec::with_capacity(8);
        b.iter(|| {
            let mut hits = 0u64;
            for key in 0..KEYS {
                if p.lookup_copy(key, &mut buf) {
                    hits += 1;
                }
            }
            assert_eq!(hits, KEYS);
        });
    });

    group.bench_function("insert_overwrite_lru", |b| {
        let mut p = prefilled(KEYS, None, EvictionPolicy::Lru);
        b.iter(|| {
            for key in 0..KEYS {
                p.insert_copy(key, &key.to_le_bytes()).unwrap();
            }
        });
    });

    group.bench_function("insert_with_eviction_lru", |b| {
        // Capacity for only a quarter of the keys: every insert evicts.
        let mut p = prefilled(KEYS / 4, Some((KEYS as usize / 4) * 8), EvictionPolicy::Lru);
        b.iter(|| {
            for key in 0..KEYS {
                p.insert_copy(key, &key.to_le_bytes()).unwrap();
            }
        });
    });

    group.bench_function("insert_with_eviction_random", |b| {
        let mut p = prefilled(KEYS / 4, Some((KEYS as usize / 4) * 8), EvictionPolicy::Random);
        b.iter(|| {
            for key in 0..KEYS {
                p.insert_copy(key, &key.to_le_bytes()).unwrap();
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
