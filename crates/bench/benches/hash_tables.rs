//! Criterion microbenchmarks comparing CPHash and LockHash end to end on a
//! small version of the paper's §6.1 workload (1 MB working set is scaled to
//! 256 KB and the operation count kept small so `cargo bench` stays quick;
//! the figure binaries run the full-scale sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cphash_bench::figures::{cphash_options, lockhash_options};
use cphash_bench::MachineScale;
use cphash_loadgen::{run_cphash, run_lockhash, WorkloadSpec};

fn spec(ops: u64) -> WorkloadSpec {
    WorkloadSpec {
        working_set_bytes: 256 << 10,
        capacity_bytes: 256 << 10,
        operations: ops,
        batch: 512,
        ..Default::default()
    }
}

fn bench_tables(c: &mut Criterion) {
    let scale = MachineScale::detect(Some(2));
    let ops: u64 = 60_000;
    let mut group = c.benchmark_group("hash_tables_mixed_workload");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops));

    group.bench_function(BenchmarkId::new("cphash", ops), |b| {
        b.iter(|| run_cphash(&spec(ops), &cphash_options(&scale)).operations)
    });
    group.bench_function(BenchmarkId::new("lockhash", ops), |b| {
        b.iter(|| run_lockhash(&spec(ops), &lockhash_options(&scale)).operations)
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
