//! Mapping the paper's 80-core machine onto the current host.
//!
//! The paper's default configuration (§6.1) is 80 client threads + 80 server
//! threads for CPHash (one pair per core) and 160 client threads for
//! LockHash, with a 4,096-way partitioned LockHash.  This reproduction runs
//! on whatever machine it finds; [`MachineScale`] derives proportional
//! thread and partition counts and scaled working-set sweeps, and prints the
//! mapping so results are interpretable.

use cphash_affinity::Topology;

/// The scaled experiment shape for this host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineScale {
    /// Client/server *pairs* for CPHash (the paper uses 80).
    pub pairs: usize,
    /// LockHash client threads (the paper uses 160).
    pub lockhash_threads: usize,
    /// LockHash partition count (the paper uses 4,096).
    pub lockhash_partitions: usize,
    /// Hardware threads the host exposes.
    pub hw_threads: usize,
    /// Detected topology model.
    pub topology: Topology,
}

impl MachineScale {
    /// Derive a scale from the detected topology, optionally overriding the
    /// pair count.
    pub fn detect(pair_override: Option<usize>) -> Self {
        let topology = Topology::detect();
        Self::for_hw_threads(topology, pair_override)
    }

    /// Derive a scale for a given topology (used by tests).
    pub fn for_hw_threads(topology: Topology, pair_override: Option<usize>) -> Self {
        let hw = topology.total_hw_threads().max(2);
        // One client/server pair per two hardware threads, as in the paper's
        // placement; cap to keep laptop runs snappy.
        let pairs = pair_override.unwrap_or_else(|| (hw / 2).clamp(1, 16));
        let lockhash_threads = (pairs * 2).max(2);
        // Keep roughly the paper's 4096/160 ≈ 25.6 partitions-per-thread
        // ratio, capped at the paper's 4,096 ("a larger number of partitions
        // does not increase throughput", §6.1).
        let lockhash_partitions = (lockhash_threads * 25).next_power_of_two().clamp(64, 4096);
        MachineScale {
            pairs,
            lockhash_threads,
            lockhash_partitions,
            hw_threads: hw,
            topology,
        }
    }

    /// The working-set sweep (bytes) for Figures 5, 8 and 13, scaled down
    /// from the paper's 100 KB – 10 GB range so the largest point clearly
    /// exceeds this machine's last-level cache without taking minutes.
    pub fn working_set_sweep(&self, quick: bool) -> Vec<usize> {
        if quick {
            vec![64 << 10, 1 << 20, 8 << 20]
        } else {
            vec![64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20]
        }
    }

    /// Default operations per measured point.
    pub fn default_ops(&self) -> u64 {
        2_000_000
    }

    /// The Figure 9/10 working-set size (the paper uses 128 MB; scaled to
    /// 16 MB here so each point stays in the seconds range).
    pub fn large_working_set(&self) -> usize {
        16 << 20
    }

    /// Human-readable description of the paper → host mapping.
    pub fn describe(&self) -> String {
        format!(
            "paper: 80 client + 80 server threads, 160 LockHash threads, 4096 LockHash partitions\n\
             host : {} client + {} server threads, {} LockHash threads, {} LockHash partitions \
             ({} hardware threads detected)",
            self.pairs, self.pairs, self.lockhash_threads, self.lockhash_partitions, self.hw_threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_scales_to_paper_counts_when_uncapped() {
        let scale = MachineScale::for_hw_threads(Topology::paper_machine(), Some(80));
        assert_eq!(scale.pairs, 80);
        assert_eq!(scale.lockhash_threads, 160);
        assert_eq!(scale.lockhash_partitions, 4096);
    }

    #[test]
    fn small_hosts_get_proportional_counts() {
        let scale = MachineScale::for_hw_threads(Topology::single_socket(4, 2), None);
        assert_eq!(scale.hw_threads, 8);
        assert_eq!(scale.pairs, 4);
        assert_eq!(scale.lockhash_threads, 8);
        assert!(scale.lockhash_partitions >= 128);
        assert!(scale.describe().contains("host"));
    }

    #[test]
    fn sweeps_are_monotonic() {
        let scale = MachineScale::for_hw_threads(Topology::single_socket(8, 2), None);
        for quick in [true, false] {
            let sweep = scale.working_set_sweep(quick);
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            assert!(!sweep.is_empty());
        }
        assert!(scale.default_ops() > 0);
        assert!(scale.large_working_set() > 1 << 20);
    }

    #[test]
    fn overrides_are_respected() {
        let scale = MachineScale::for_hw_threads(Topology::single_socket(16, 2), Some(3));
        assert_eq!(scale.pairs, 3);
        assert_eq!(scale.lockhash_threads, 6);
    }
}
