//! Sweep implementations behind the figure binaries.
//!
//! Each function runs one of the paper's experiments at this host's scale
//! and returns a [`FigureReport`] (or a preformatted text block for the
//! Figure 6/7 tables).  The binaries in `src/bin/` are thin wrappers that
//! parse arguments, call one of these, and print the result.

use cphash::EvictionPolicy;
use cphash_affinity::HwThreadId;
use cphash_cachesim::opmodel::{simulate_cphash, simulate_lockhash, OpModelParams};
use cphash_cachesim::{AccessTag, CostModel};
use cphash_kvserver::{
    CpServer, CpServerConfig, LockServer, LockServerConfig, MemcacheCluster, MemcacheConfig,
};
use cphash_loadgen::tcp::{run_tcp_load, TcpLoadOptions};
use cphash_loadgen::{run_cphash, run_lockhash, DriverOptions, WorkloadSpec};
use cphash_perfmon::{FigureReport, Stopwatch};

use crate::paper;
use crate::scale::MachineScale;

/// Driver options for the CPHash side of a comparison at this scale.
pub fn cphash_options(scale: &MachineScale) -> DriverOptions {
    let mut opts = DriverOptions::new(scale.pairs, scale.pairs);
    if scale.hw_threads >= scale.pairs * 2 {
        // The §6.1 placement: clients on the first hardware thread of each
        // "core slot", servers on the second.
        opts.client_pins = (0..scale.pairs).map(HwThreadId).collect();
        opts.server_pins = (scale.pairs..scale.pairs * 2).map(HwThreadId).collect();
    }
    opts
}

/// Driver options for the LockHash side of a comparison at this scale.
pub fn lockhash_options(scale: &MachineScale) -> DriverOptions {
    let mut opts = DriverOptions::new(scale.lockhash_threads, scale.lockhash_partitions);
    if scale.hw_threads >= scale.lockhash_threads {
        opts.client_pins = (0..scale.lockhash_threads).map(HwThreadId).collect();
    }
    opts
}

/// Figures 5 and 8: throughput of both tables over a range of working-set
/// sizes (LRU for Figure 5, random eviction for Figure 8).
pub fn working_set_sweep(
    scale: &MachineScale,
    eviction: EvictionPolicy,
    ops_per_point: u64,
    quick: bool,
) -> FigureReport {
    let title = match eviction {
        EvictionPolicy::Lru => "Figure 5: throughput vs working set size (LRU)",
        EvictionPolicy::Random => "Figure 8: throughput vs working set size (random eviction)",
    };
    let mut report = FigureReport::new(title, "working_set_bytes", "queries/second");
    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    for ws in scale.working_set_sweep(quick) {
        let spec = WorkloadSpec {
            operations: ops_per_point,
            ..WorkloadSpec::working_set_point(ws, ops_per_point)
        };
        let mut cp_opts = cphash_options(scale);
        cp_opts.eviction = eviction;
        let mut lh_opts = lockhash_options(scale);
        lh_opts.eviction = eviction;
        let cp = run_cphash(&spec, &cp_opts);
        let lh = run_lockhash(&spec, &lh_opts);
        eprintln!(
            "  ws={:>10}  cphash {:>12.0} q/s   lockhash {:>12.0} q/s   ratio {:.2}x",
            ws,
            cp.throughput(),
            lh.throughput(),
            cp.throughput() / lh.throughput().max(1.0)
        );
        cp_series.push((ws as f64, cp.throughput()));
        lh_series.push((ws as f64, lh.throughput()));
    }
    let s = report.add_series("CPHash");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockHash");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    report
}

/// Figure 9: throughput over a range of hash-table capacities at a fixed
/// working set.
pub fn capacity_sweep(scale: &MachineScale, ops_per_point: u64, quick: bool) -> FigureReport {
    let ws = scale.large_working_set();
    let fractions: &[f64] = if quick {
        &[0.25, 1.0]
    } else {
        &[0.125, 0.25, 0.5, 0.75, 1.0]
    };
    let mut report = FigureReport::new(
        format!(
            "Figure 9: throughput vs hash table capacity ({} MB working set)",
            ws >> 20
        ),
        "capacity_bytes",
        "queries/second",
    );
    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    for &fraction in fractions {
        let capacity = ((ws as f64 * fraction) as usize).max(1 << 16);
        let spec = WorkloadSpec::capacity_point(ws, capacity, ops_per_point);
        let cp = run_cphash(&spec, &cphash_options(scale));
        let lh = run_lockhash(&spec, &lockhash_options(scale));
        eprintln!(
            "  capacity={:>10}  cphash {:>12.0} q/s   lockhash {:>12.0} q/s",
            capacity,
            cp.throughput(),
            lh.throughput()
        );
        cp_series.push((capacity as f64, cp.throughput()));
        lh_series.push((capacity as f64, lh.throughput()));
    }
    let s = report.add_series("CPHash");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockHash");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    report
}

/// Figure 10: throughput over a range of INSERT fractions.
pub fn insert_ratio_sweep(scale: &MachineScale, ops_per_point: u64, quick: bool) -> FigureReport {
    let ws = scale.large_working_set();
    let ratios: &[f64] = if quick {
        &[0.0, 0.3, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let mut report = FigureReport::new(
        format!(
            "Figure 10: throughput vs INSERT fraction ({} MB working set)",
            ws >> 20
        ),
        "insert_fraction",
        "queries/second",
    );
    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    for &ratio in ratios {
        let spec = WorkloadSpec::insert_ratio_point(ws, ratio, ops_per_point);
        let cp = run_cphash(&spec, &cphash_options(scale));
        let lh = run_lockhash(&spec, &lockhash_options(scale));
        eprintln!(
            "  insert_ratio={ratio:>4.2}  cphash {:>12.0} q/s   lockhash {:>12.0} q/s",
            cp.throughput(),
            lh.throughput()
        );
        cp_series.push((ratio, cp.throughput()));
        lh_series.push((ratio, lh.throughput()));
    }
    let s = report.add_series("CPHash");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockHash");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    report
}

/// Figure 11: per-hardware-thread throughput as the number of hardware
/// threads grows (socket granularity in the paper; pair granularity here).
pub fn thread_scaling_sweep(scale: &MachineScale, ops_per_point: u64, quick: bool) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure 11: per-hardware-thread throughput vs hardware threads used",
        "hardware_threads",
        "queries/second/hw_thread",
    );
    let mut pair_counts: Vec<usize> = vec![1, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|p| *p <= scale.pairs)
        .collect();
    if !pair_counts.contains(&scale.pairs) {
        pair_counts.push(scale.pairs);
    }
    if quick && pair_counts.len() > 3 {
        pair_counts = vec![
            pair_counts[0],
            pair_counts[pair_counts.len() / 2],
            *pair_counts.last().expect("non-empty"),
        ];
    }
    let spec_template = WorkloadSpec::working_set_point(1 << 20, ops_per_point);
    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    for pairs in pair_counts {
        let sub_scale = MachineScale {
            pairs,
            lockhash_threads: pairs * 2,
            lockhash_partitions: scale.lockhash_partitions,
            hw_threads: scale.hw_threads,
            topology: scale.topology,
        };
        let hw_used = pairs * 2;
        let cp = run_cphash(&spec_template, &cphash_options(&sub_scale));
        let lh = run_lockhash(&spec_template, &lockhash_options(&sub_scale));
        eprintln!(
            "  hw_threads={hw_used:>3}  cphash {:>12.0} q/s/thread   lockhash {:>12.0} q/s/thread",
            cp.throughput_per(hw_used),
            lh.throughput_per(hw_used)
        );
        cp_series.push((hw_used as f64, cp.throughput_per(hw_used)));
        lh_series.push((hw_used as f64, lh.throughput_per(hw_used)));
    }
    let s = report.add_series("CPHash");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockHash");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    report
}

/// Figure 12: the three hardware-thread placements.  On hosts where pinning
/// is unavailable the three configurations differ only in thread count,
/// which the report notes.
pub fn smt_configurations(scale: &MachineScale, ops_per_point: u64) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure 12: throughput under three hardware-thread configurations",
        "configuration (0 = all threads, 1 = one per core, 2 = all threads on half the cores)",
        "queries/second",
    );
    let spec = WorkloadSpec::working_set_point(1 << 20, ops_per_point);
    let full_pairs = scale.pairs;
    let half_pairs = (scale.pairs / 2).max(1);

    // Config 0: both "SMT siblings" of every core slot (the default).
    let config0 = (
        cphash_options(scale),
        lockhash_options(scale),
        full_pairs * 2,
    );
    // Config 1: one hardware thread per core slot — half the threads, spread
    // out over the same range of CPUs (even CPU ids).
    let mut cp1 = DriverOptions::new(half_pairs, half_pairs);
    let mut lh1 = DriverOptions::new(half_pairs * 2, scale.lockhash_partitions);
    if scale.hw_threads >= full_pairs * 2 {
        cp1.client_pins = (0..half_pairs).map(|i| HwThreadId(i * 2)).collect();
        cp1.server_pins = (0..half_pairs)
            .map(|i| HwThreadId(i * 2 + full_pairs))
            .collect();
        lh1.client_pins = (0..half_pairs * 2).map(|i| HwThreadId(i * 2)).collect();
    }
    let config1 = (cp1, lh1, full_pairs);
    // Config 2: the same number of threads as config 1 but packed onto a
    // contiguous block of CPUs ("both hardware threads on half the cores").
    let mut cp2 = DriverOptions::new(half_pairs, half_pairs);
    let mut lh2 = DriverOptions::new(half_pairs * 2, scale.lockhash_partitions);
    if scale.hw_threads >= full_pairs {
        cp2.client_pins = (0..half_pairs).map(HwThreadId).collect();
        cp2.server_pins = (half_pairs..half_pairs * 2).map(HwThreadId).collect();
        lh2.client_pins = (0..half_pairs * 2).map(HwThreadId).collect();
    }
    let config2 = (cp2, lh2, full_pairs);

    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    for (x, (cp_opts, lh_opts, _hw)) in [config0, config1, config2].into_iter().enumerate() {
        let cp = run_cphash(&spec, &cp_opts);
        let lh = run_lockhash(&spec, &lh_opts);
        eprintln!(
            "  config {x}: cphash {:>12.0} q/s   lockhash {:>12.0} q/s",
            cp.throughput(),
            lh.throughput()
        );
        cp_series.push((x as f64, cp.throughput()));
        lh_series.push((x as f64, lh.throughput()));
    }
    let s = report.add_series("CPHash");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockHash");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    report
}

/// Figures 6 and 7: the per-operation cycle and cache-miss breakdown tables,
/// produced by the software cache model plus a measured throughput run.
pub fn breakdown_tables(scale: &MachineScale, operations: u64) -> String {
    let mut out = String::new();

    // The cache model replays the paper-machine configuration (Figure 6/7
    // are specifically about the 80-core machine at a 1 MB working set).
    let params = OpModelParams {
        operations,
        ..OpModelParams::default()
    };
    let lockhash = simulate_lockhash(&params);
    let cphash = simulate_cphash(&params);
    let cost = CostModel::default();

    let lh_est = cost.estimate(&lockhash.total(), lockhash.operations, 160);
    let cp_client_est = cost.estimate(&cphash.client.total(), cphash.client.operations, 80);
    let cp_server_est = cost.estimate(&cphash.server.total(), cphash.server.operations, 80);

    out.push_str("Figure 6: per-operation cost (model vs paper)\n");
    out.push_str(&format!(
        "{:<22} {:>14} {:>14} {:>14}\n",
        "", "CPHash client", "CPHash server", "LockHash"
    ));
    out.push_str(&format!(
        "{:<22} {:>14.0} {:>14.0} {:>14.0}\n",
        "cycles/op (model)",
        cp_client_est.cycles_per_op,
        cp_server_est.cycles_per_op,
        lh_est.cycles_per_op
    ));
    out.push_str(&format!(
        "{:<22} {:>14.0} {:>14.0} {:>14.0}\n",
        "cycles/op (paper)",
        paper::fig6::CPHASH_CLIENT_CYCLES,
        paper::fig6::CPHASH_SERVER_CYCLES,
        paper::fig6::LOCKHASH_CYCLES
    ));
    out.push_str(&format!(
        "{:<22} {:>14.2} {:>14.2} {:>14.2}\n",
        "L2 misses/op (model)",
        cphash.client.total_l2_per_op(),
        cphash.server.total_l2_per_op(),
        lockhash.total_l2_per_op()
    ));
    out.push_str(&format!(
        "{:<22} {:>14.2} {:>14.2} {:>14.2}\n",
        "L2 misses/op (paper)",
        paper::fig6::L2_MISSES.0,
        paper::fig6::L2_MISSES.1,
        paper::fig6::L2_MISSES.2
    ));
    out.push_str(&format!(
        "{:<22} {:>14.2} {:>14.2} {:>14.2}\n",
        "L3 misses/op (model)",
        cphash.client.total_l3_per_op(),
        cphash.server.total_l3_per_op(),
        lockhash.total_l3_per_op()
    ));
    out.push_str(&format!(
        "{:<22} {:>14.2} {:>14.2} {:>14.2}\n",
        "L3 misses/op (paper)",
        paper::fig6::L3_MISSES.0,
        paper::fig6::L3_MISSES.1,
        paper::fig6::L3_MISSES.2
    ));
    out.push_str(&format!(
        "{:<22} {:>14.0} {:>29.0}\n",
        "L3 miss cost (model)", cp_client_est.l3_miss_cost, lh_est.l3_miss_cost
    ));
    out.push_str(&format!(
        "{:<22} {:>14.0} {:>29.0}\n\n",
        "L3 miss cost (paper)",
        paper::fig6::L3_COST.0,
        paper::fig6::L3_COST.1
    ));

    out.push_str("Figure 7: per-function cache-miss breakdown (model)\n\n");
    out.push_str(&lockhash.to_table("LOCKHASH"));
    out.push('\n');
    out.push_str(&cphash.client.to_table("CPHASH client thread"));
    out.push('\n');
    out.push_str(&cphash.server.to_table("CPHASH server thread"));
    out.push('\n');
    out.push_str(&format!(
        "paper totals:  LockHash {:.1}/{:.1}   client {:.1}/{:.1}   server {:.1}/{:.1}  (L2/L3 per op)\n",
        paper::fig7::LOCKHASH_TOTAL.0,
        paper::fig7::LOCKHASH_TOTAL.1,
        paper::fig7::CPHASH_CLIENT_TOTAL.0,
        paper::fig7::CPHASH_CLIENT_TOTAL.1,
        paper::fig7::CPHASH_SERVER_TOTAL.0,
        paper::fig7::CPHASH_SERVER_TOTAL.1
    ));

    // A small *measured* run on this host, for the wall-clock counterpart of
    // the model's cycle estimates.
    let spec = WorkloadSpec::figure6(200_000.min(operations));
    let cp = run_cphash(&spec, &cphash_options(scale));
    let lh = run_lockhash(&spec, &lockhash_options(scale));
    out.push_str(&format!(
        "\nmeasured on this host (1 MB working set): cphash {:.0} q/s, lockhash {:.0} q/s, ratio {:.2}x\n",
        cp.throughput(),
        lh.throughput(),
        cp.throughput() / lh.throughput().max(1.0)
    ));
    out.push_str(&format!(
        "message packing check: {} lookups per line, {} inserts per line (paper: 8 and 4)\n",
        cphash_cacheline::packing::messages_per_line(8),
        cphash_cacheline::packing::messages_per_line(16)
    ));
    let send_row = cphash.client.row(AccessTag::SendMessage);
    out.push_str(&format!(
        "model send-message misses/op: {:.2} (batching amortizes the line transfers)\n",
        (send_row.l2_misses + send_row.l3_misses) as f64 / cphash.client.operations.max(1) as f64
    ));
    out
}

/// Figure 13: CPSERVER vs LOCKSERVER throughput over working-set sizes,
/// driven over loopback TCP.
pub fn server_working_set_sweep(
    scale: &MachineScale,
    ops_per_point: u64,
    quick: bool,
) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure 13: key/value server throughput vs working set size (TCP)",
        "working_set_bytes",
        "queries/second",
    );
    let sweep = if quick {
        vec![256 << 10, 4 << 20]
    } else {
        vec![256 << 10, 1 << 20, 4 << 20, 16 << 20]
    };
    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    for ws in sweep {
        let spec = WorkloadSpec {
            prefill: false,
            ..WorkloadSpec::working_set_point(ws, ops_per_point)
        };
        let load = TcpLoadOptions {
            threads: scale.pairs.clamp(1, 4),
            connections_per_thread: 2,
            pipeline: 64,
            ..Default::default()
        };

        let mut cpserver = CpServer::start(CpServerConfig {
            client_threads: scale.pairs,
            partitions: scale.pairs,
            capacity_bytes: Some(ws),
            typical_value_bytes: spec.value_bytes,
            ..Default::default()
        })
        .expect("starting CPSERVER");
        let cp_result = run_tcp_load(
            &spec,
            &TcpLoadOptions {
                addr: cpserver.addr(),
                ..load.clone()
            },
        )
        .expect("CPSERVER load run");
        cpserver.shutdown();

        let mut lockserver = LockServer::start(LockServerConfig {
            worker_threads: scale.lockhash_threads,
            partitions: scale.lockhash_partitions,
            capacity_bytes: Some(ws),
            typical_value_bytes: spec.value_bytes,
            ..Default::default()
        })
        .expect("starting LOCKSERVER");
        let lh_result = run_tcp_load(
            &spec,
            &TcpLoadOptions {
                addr: lockserver.addr(),
                ..load
            },
        )
        .expect("LOCKSERVER load run");
        lockserver.shutdown();

        eprintln!(
            "  ws={:>10}  cpserver {:>12.0} q/s   lockserver {:>12.0} q/s",
            ws,
            cp_result.throughput(),
            lh_result.throughput()
        );
        cp_series.push((ws as f64, cp_result.throughput()));
        lh_series.push((ws as f64, lh_result.throughput()));
    }
    let s = report.add_series("CPServer");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockServer");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    report
}

/// Figure 14: per-core throughput of CPSERVER, LOCKSERVER and the
/// memcached-style cluster as the number of cores grows.
pub fn memcached_comparison(scale: &MachineScale, ops_per_point: u64, quick: bool) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure 14: per-core server throughput vs number of cores",
        "cores",
        "queries/second/core",
    );
    let max_cores = scale.pairs.max(1);
    let mut core_counts: Vec<usize> = [1, 2, 4, 8, 16]
        .into_iter()
        .filter(|c| *c <= max_cores)
        .collect();
    if quick {
        core_counts.truncate(2);
    }
    let ws = 4 << 20;

    let mut cp_series = Vec::new();
    let mut lh_series = Vec::new();
    let mut mc_series = Vec::new();
    for cores in core_counts {
        let spec = WorkloadSpec {
            prefill: false,
            ..WorkloadSpec::working_set_point(ws, ops_per_point)
        };
        let load_threads = cores.clamp(1, 4);

        // CPSERVER with `cores` client threads and partitions.
        let mut cpserver = CpServer::start(CpServerConfig {
            client_threads: cores,
            partitions: cores,
            capacity_bytes: Some(ws),
            typical_value_bytes: spec.value_bytes,
            ..Default::default()
        })
        .expect("starting CPSERVER");
        let cp = run_tcp_load(
            &spec,
            &TcpLoadOptions {
                addr: cpserver.addr(),
                threads: load_threads,
                connections_per_thread: 2,
                pipeline: 64,
            },
        )
        .expect("CPSERVER load");
        cpserver.shutdown();

        // LOCKSERVER with `cores` worker threads.
        let mut lockserver = LockServer::start(LockServerConfig {
            worker_threads: cores,
            partitions: scale.lockhash_partitions,
            capacity_bytes: Some(ws),
            typical_value_bytes: spec.value_bytes,
            ..Default::default()
        })
        .expect("starting LOCKSERVER");
        let lh = run_tcp_load(
            &spec,
            &TcpLoadOptions {
                addr: lockserver.addr(),
                threads: load_threads,
                connections_per_thread: 2,
                pipeline: 64,
            },
        )
        .expect("LOCKSERVER load");
        lockserver.shutdown();

        // Memcached-style: one single-lock instance per core with
        // client-side key partitioning (each instance gets its share of the
        // keyspace and of the request volume, driven concurrently).
        let mut cluster = MemcacheCluster::start(MemcacheConfig {
            instances: cores,
            capacity_bytes_per_instance: Some(ws / cores),
            ..Default::default()
        })
        .expect("starting the memcached-style cluster");
        let per_instance_spec = WorkloadSpec {
            working_set_bytes: (ws / cores).max(4096),
            capacity_bytes: (ws / cores).max(4096),
            operations: ops_per_point / cores as u64,
            prefill: false,
            ..spec
        };
        let addrs = cluster.addrs();
        let watch = Stopwatch::start();
        let total_ops: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = addrs
                .iter()
                .map(|addr| {
                    let spec = per_instance_spec;
                    let addr = *addr;
                    scope.spawn(move || {
                        run_tcp_load(
                            &spec,
                            &TcpLoadOptions {
                                addr,
                                threads: 1,
                                connections_per_thread: 2,
                                pipeline: 32,
                            },
                        )
                        .map(|r| r.operations)
                        .unwrap_or(0)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
        });
        let mc_throughput = total_ops as f64 / watch.elapsed_secs().max(1e-9);
        cluster.shutdown();

        eprintln!(
            "  cores={cores:>2}  cpserver {:>10.0}  lockserver {:>10.0}  memcached-style {:>10.0}  (q/s/core)",
            cp.throughput_per(cores),
            lh.throughput_per(cores),
            mc_throughput / cores as f64
        );
        cp_series.push((cores as f64, cp.throughput_per(cores)));
        lh_series.push((cores as f64, lh.throughput_per(cores)));
        mc_series.push((cores as f64, mc_throughput / cores as f64));
    }
    let s = report.add_series("CPServer");
    for (x, y) in cp_series {
        s.push(x, y);
    }
    let s = report.add_series("LockServer");
    for (x, y) in lh_series {
        s.push(x, y);
    }
    let s = report.add_series("Memcached-style");
    for (x, y) in mc_series {
        s.push(x, y);
    }
    report
}

/// §6.1 batching ablation: throughput as a function of the outstanding-
/// request window.
pub fn batching_sweep(scale: &MachineScale, ops_per_point: u64, quick: bool) -> FigureReport {
    let mut report = FigureReport::new(
        "Ablation: CPHash throughput vs outstanding-request window (batch size)",
        "batch",
        "queries/second",
    );
    let batches: &[usize] = if quick {
        &[16, 512, 4096]
    } else {
        &[1, 16, 64, 256, 512, 1024, 4096, 8192]
    };
    let mut series = Vec::new();
    for &batch in batches {
        let spec = WorkloadSpec {
            batch,
            ..WorkloadSpec::working_set_point(1 << 20, ops_per_point)
        };
        let cp = run_cphash(&spec, &cphash_options(scale));
        eprintln!("  batch={batch:>5}  cphash {:>12.0} q/s", cp.throughput());
        series.push((batch as f64, cp.throughput()));
    }
    let s = report.add_series("CPHash");
    for (x, y) in series {
        s.push(x, y);
    }
    report
}

/// Lock-algorithm ablation (§6.2's spinlock vs scalable-lock discussion):
/// LockHash throughput under each lock kind at two partition counts.
pub fn lock_ablation(scale: &MachineScale, ops_per_point: u64) -> FigureReport {
    use cphash_lockhash::LockKind;
    let mut report = FigureReport::new(
        "Ablation: LockHash throughput by lock algorithm and partition count",
        "partitions",
        "queries/second",
    );
    let spec = WorkloadSpec::working_set_point(1 << 20, ops_per_point);
    for kind in [LockKind::Spin, LockKind::Ticket, LockKind::Anderson] {
        let mut series = Vec::new();
        for partitions in [scale.lockhash_threads.max(2), scale.lockhash_partitions] {
            let mut opts = lockhash_options(scale);
            opts.partitions = partitions;
            opts.lock_kind = kind;
            let result = run_lockhash(&spec, &opts);
            eprintln!(
                "  {:<14} partitions={partitions:>5}  {:>12.0} q/s  (contention {:.1}%)",
                kind.name(),
                result.throughput(),
                result.lock_contention.unwrap_or(0.0) * 100.0
            );
            series.push((partitions as f64, result.throughput()));
        }
        let s = report.add_series(kind.name());
        for (x, y) in series {
            s.push(x, y);
        }
    }
    report
}

/// §8.1 ablation: throughput and server utilization across static server
/// counts, plus what the dynamic controller would recommend at each point.
pub fn dynamic_servers_ablation(scale: &MachineScale, ops_per_point: u64) -> FigureReport {
    use cphash::ServerLoadController;
    let mut report = FigureReport::new(
        "Ablation: throughput and server utilization vs server-thread count (§8.1)",
        "server_threads",
        "queries/second",
    );
    let controller = ServerLoadController::default();
    let spec = WorkloadSpec::working_set_point(1 << 20, ops_per_point);
    let mut throughput_series = Vec::new();
    let mut utilization_series = Vec::new();
    let candidates: Vec<usize> = [1, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|s| *s <= scale.pairs.max(1) * 2)
        .collect();
    for servers in candidates {
        let mut opts = cphash_options(scale);
        opts.partitions = servers;
        opts.server_pins.clear();
        opts.client_pins.clear();
        let result = run_cphash(&spec, &opts);
        let utilization = result.mean_server_utilization.unwrap_or(0.0);
        let recommendation = controller.recommend_for_utilization(utilization, servers);
        eprintln!(
            "  servers={servers:>3}  {:>12.0} q/s  utilization {:>5.1}%  controller says {:?}",
            result.throughput(),
            utilization * 100.0,
            recommendation
        );
        throughput_series.push((servers as f64, result.throughput()));
        utilization_series.push((servers as f64, utilization));
    }
    let s = report.add_series("throughput");
    for (x, y) in throughput_series {
        s.push(x, y);
    }
    let s = report.add_series("utilization");
    for (x, y) in utilization_series {
        s.push(x, y);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_affinity::Topology;

    fn tiny_scale() -> MachineScale {
        MachineScale::for_hw_threads(Topology::single_socket(2, 2), Some(2))
    }

    #[test]
    fn driver_options_pin_when_there_is_room() {
        let scale = MachineScale::for_hw_threads(Topology::single_socket(8, 2), Some(4));
        let cp = cphash_options(&scale);
        assert_eq!(cp.client_pins.len(), 4);
        assert_eq!(cp.server_pins.len(), 4);
        let lh = lockhash_options(&scale);
        assert_eq!(lh.client_threads, 8);
    }

    #[test]
    fn breakdown_tables_mention_all_sections() {
        let scale = tiny_scale();
        let text = breakdown_tables(&scale, 20_000);
        assert!(text.contains("Figure 6"));
        assert!(text.contains("Figure 7"));
        assert!(text.contains("LOCKHASH"));
        assert!(text.contains("CPHASH server thread"));
        assert!(text.contains("measured on this host"));
    }

    #[test]
    fn working_set_sweep_produces_both_series() {
        let scale = tiny_scale();
        let report = working_set_sweep(&scale, EvictionPolicy::Lru, 30_000, true);
        let cp = report.series_named("CPHash").expect("CPHash series");
        let lh = report.series_named("LockHash").expect("LockHash series");
        assert_eq!(cp.points.len(), lh.points.len());
        assert!(cp.points.iter().all(|p| p.y > 0.0));
        assert!(lh.points.iter().all(|p| p.y > 0.0));
    }
}
