//! Live-repartitioning ablations: what does an online grow/shrink cost
//! while traffic keeps flowing, and how does the dynamic server-load
//! controller steer a live table?
//!
//! Two harnesses, both built on a shared pipelined mixed-load driver:
//!
//! * [`live_repartition_ablation`] — measure throughput before, during and
//!   after a live 2→4 grow, against a statically 4-partitioned table as the
//!   baseline (`ablate_live_repartition`).
//! * [`dynamic_servers_live`] — a closed loop: run a load phase, feed the
//!   measured server utilization to `ServerLoadController`, apply its
//!   recommendation with the `RepartitionCoordinator`, repeat
//!   (`ablate_dynamic_servers`).

use cphash_sync::atomic::plain::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cphash::{ClientHandle, CpHash, CpHashConfig, MigrationPacing, ServerLoadController};
use cphash_migrate::{MigrationPacer, MigrationReport, RepartitionCoordinator};
use cphash_perfmon::FigureReport;

use crate::scale::MachineScale;

/// Pipelined-window size per worker; modest so single-CPU hosts interleave
/// client and server work smoothly.
const WINDOW: usize = 64;

/// Throughput-sampling window for the dip measurement.
const SAMPLE_WINDOW: Duration = Duration::from_millis(10);

/// A window counts towards the dip duration while its throughput is below
/// this fraction of the pre-migration baseline.
const DIP_THRESHOLD: f64 = 0.9;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One worker's share of a mixed 90/10 lookup/insert phase.  Every polled
/// completion bumps `progress`, so a sampler can watch throughput live.
fn mixed_load_worker(
    client: &mut ClientHandle,
    keys: u64,
    ops: u64,
    seed: u64,
    progress: &AtomicU64,
) {
    let mut completions = Vec::with_capacity(WINDOW * 2);
    let mut state = seed | 1;
    for _ in 0..ops {
        let r = xorshift(&mut state);
        let key = (r >> 8) % keys;
        if r.is_multiple_of(10) {
            client.submit_insert(key, &key.to_le_bytes());
        } else {
            client.submit_lookup(key);
        }
        while client.outstanding() >= WINDOW {
            completions.clear();
            if client.poll(&mut completions) == 0 {
                std::thread::yield_now();
            } else {
                // relaxed: progress counter read by the live reporter
                progress.fetch_add(completions.len() as u64, Ordering::Relaxed);
            }
        }
    }
    completions.clear();
    if client.drain(&mut completions).is_ok() {
        progress.fetch_add(completions.len() as u64, Ordering::Relaxed); // relaxed: progress counter read by the live reporter
    }
}

/// Run one timed phase across all clients; returns the clients and the
/// aggregate throughput in operations/second.
fn timed_phase(
    clients: Vec<ClientHandle>,
    keys: u64,
    total_ops: u64,
    phase_seed: u64,
) -> (Vec<ClientHandle>, f64) {
    let (clients, qps, _, _) = timed_phase_sampled(clients, keys, total_ops, phase_seed);
    (clients, qps)
}

/// Like [`timed_phase`], but additionally samples throughput in
/// [`SAMPLE_WINDOW`]-sized windows.  Returns the clients, the aggregate
/// throughput, the phase start instant and `(window_end_offset_secs, qps)`
/// samples.
fn timed_phase_sampled(
    clients: Vec<ClientHandle>,
    keys: u64,
    total_ops: u64,
    phase_seed: u64,
) -> (Vec<ClientHandle>, f64, Instant, Vec<(f64, f64)>) {
    let workers = clients.len().max(1) as u64;
    let ops_each = total_ops / workers;
    let barrier = Arc::new(Barrier::new(clients.len() + 1));
    let progress = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            let barrier = Arc::clone(&barrier);
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || {
                barrier.wait();
                mixed_load_worker(
                    &mut client,
                    keys,
                    ops_each,
                    phase_seed ^ ((i as u64) << 32),
                    &progress,
                );
                client
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let sampler = {
        let progress = Arc::clone(&progress);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut windows = Vec::new();
            let mut last_count = 0u64;
            let mut last_t = Instant::now();
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(SAMPLE_WINDOW);
                let now = Instant::now();
                let count = progress.load(Ordering::Relaxed); // relaxed: progress counter read by the live reporter
                let secs = now.duration_since(last_t).as_secs_f64().max(1e-9);
                windows.push((
                    now.duration_since(start).as_secs_f64(),
                    (count - last_count) as f64 / secs,
                ));
                last_count = count;
                last_t = now;
            }
            windows
        })
    };
    let clients: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("worker"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    done.store(true, Ordering::Release);
    let windows = sampler.join().expect("sampler");
    (
        clients,
        (ops_each * workers) as f64 / elapsed,
        start,
        windows,
    )
}

/// Fill the table with the working set.
fn preload(client: &mut ClientHandle, keys: u64) {
    let mut completions = Vec::with_capacity(WINDOW * 2);
    for key in 0..keys {
        client.submit_insert(key, &key.to_le_bytes());
        while client.outstanding() >= WINDOW {
            completions.clear();
            if client.poll(&mut completions) == 0 {
                std::thread::yield_now();
            }
        }
    }
    completions.clear();
    client.drain(&mut completions).expect("preload");
}

/// Everything one live 2→4 grow under load measured.
#[derive(Debug, Clone)]
pub struct DipMeasurement {
    /// Aggregate throughput before the migration (the baseline).
    pub before_qps: f64,
    /// Aggregate throughput of the phase the migration overlapped.
    pub during_qps: f64,
    /// Aggregate throughput after the migration.
    pub after_qps: f64,
    /// Slowest [`SAMPLE_WINDOW`] that overlapped the migration.
    pub min_window_qps: f64,
    /// Dip depth: `1 - mean(overlapping windows) / before_qps`, clamped at
    /// 0 — the average foreground deficit while the migration was actually
    /// running.  (The worst single window is reported separately via
    /// `min_window_qps`; on oversubscribed hosts a single window is
    /// dominated by scheduler noise.)
    pub dip_depth: f64,
    /// Total time of migration-overlapping windows whose throughput fell
    /// below [`DIP_THRESHOLD`] of the baseline.
    pub dip_duration: Duration,
    /// Operations redirected by retry responses during the run.
    pub redirected: u64,
    /// The coordinator's own account of the transition.
    pub migration: MigrationReport,
}

impl DipMeasurement {
    fn describe(&self, label: &str) -> String {
        format!(
            "{label}: before {:>11.0} op/s  during {:>11.0} op/s  after {:>11.0} op/s  \
             dip depth {:>5.1}%  dip duration {:>8.1?}  ({} redirected)",
            self.before_qps,
            self.during_qps,
            self.after_qps,
            self.dip_depth * 100.0,
            self.dip_duration,
            self.redirected
        )
    }
}

/// Measure the foreground cost of a live 2→4 grow under mixed load, with
/// the chunk hand-offs paced according to `pacing`.
pub fn migration_dip(
    scale: &MachineScale,
    ops_per_phase: u64,
    pacing: MigrationPacing,
) -> DipMeasurement {
    let clients = scale.pairs.clamp(1, 4);
    let keys: u64 = 10_000;
    let (table, mut handles) = CpHash::new(CpHashConfig::new(2, clients).with_max_partitions(4));
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    let mut pacer = MigrationPacer::for_table(&table, pacing);
    preload(&mut handles[0], keys);

    let (handles, before_qps) = timed_phase(handles, keys, ops_per_phase, 0xA11CE);

    // The coordinator migrates concurrently with the sampled load phase.
    let resizer = std::thread::spawn(move || {
        let started = Instant::now();
        let report = coordinator
            .resize_to_paced(4, &mut pacer)
            .expect("live grow");
        (started, Instant::now(), report)
    });
    let (handles, during_qps, phase_start, windows) =
        timed_phase_sampled(handles, keys, ops_per_phase, 0xB0B);
    let (migration_start, migration_end, migration) = resizer.join().expect("resizer thread");

    let (handles, after_qps) = timed_phase(handles, keys, ops_per_phase, 0xC0FFEE);
    let redirected: u64 = handles.iter().map(|h| h.migration_retries()).sum();
    drop(handles);

    // Intersect the sampled windows with the migration interval.
    let window_secs = SAMPLE_WINDOW.as_secs_f64();
    let from = migration_start.duration_since(phase_start).as_secs_f64();
    let to = migration_end.duration_since(phase_start).as_secs_f64() + window_secs;
    let overlapping: Vec<f64> = windows
        .iter()
        .filter(|(end, _)| *end >= from && *end - window_secs <= to)
        .map(|(_, qps)| *qps)
        .collect();
    let (min_window_qps, mean_window_qps) = if overlapping.is_empty() {
        // Migration finished inside a single sampling window; fall back to
        // the phase aggregate.
        (during_qps, during_qps)
    } else {
        (
            overlapping.iter().copied().fold(f64::INFINITY, f64::min),
            overlapping.iter().sum::<f64>() / overlapping.len() as f64,
        )
    };
    let dip_windows = overlapping
        .iter()
        .filter(|&&q| q < DIP_THRESHOLD * before_qps)
        .count();
    DipMeasurement {
        before_qps,
        during_qps,
        after_qps,
        min_window_qps,
        dip_depth: (1.0 - mean_window_qps / before_qps.max(1e-9)).max(0.0),
        dip_duration: SAMPLE_WINDOW * dip_windows as u32,
        redirected,
        migration,
    }
}

/// Ablation: throughput before / during / after a live 2→4 repartition —
/// unpaced (PR 1 behaviour) vs a finite pacing budget — with a statically
/// 4-partitioned table as the reference.  Reports dip *depth* (mean
/// throughput of the migration-overlapping sampling windows vs baseline;
/// the worst single window is in `DipMeasurement::min_window_qps`) and dip
/// *duration* (time spent below 90% of baseline while the migration ran)
/// for both runs.
pub fn live_repartition_ablation(scale: &MachineScale, ops_per_phase: u64) -> FigureReport {
    let clients = scale.pairs.clamp(1, 4);
    let keys: u64 = 10_000;
    let mut report = FigureReport::new(
        "Ablation: live 2→4 repartition under load — unpaced vs paced vs a static 4-partition table",
        "phase (0=before, 1=during migration, 2=after)",
        "operations/second",
    );

    let unpaced = migration_dip(scale, ops_per_phase, MigrationPacing::Unpaced);
    // A finite budget: 64 chunks at 400/s spreads the hand-offs over at
    // least 160 ms instead of firing them back-to-back.
    let paced = migration_dip(
        scale,
        ops_per_phase,
        MigrationPacing::Rate {
            chunks_per_sec: 400.0,
        },
    );

    // Reference: the same load on a table that was born with 4 partitions.
    let (_static_table, mut static_handles) = CpHash::new(CpHashConfig::new(4, clients));
    preload(&mut static_handles[0], keys);
    let (static_handles, static_qps) = timed_phase(static_handles, keys, ops_per_phase, 0xA11CE);
    drop(static_handles);

    eprintln!("  unpaced: {}", unpaced.migration);
    eprintln!("  paced:   {}", paced.migration);
    eprintln!("  {}", unpaced.describe("unpaced"));
    eprintln!("  {}", paced.describe("paced  "));
    eprintln!(
        "  static 4-partition table {static_qps:>12.0} op/s — post-migration table at {:.1}% of static",
        unpaced.after_qps / static_qps.max(1e-9) * 100.0
    );

    let s = report.add_series("elastic (2→4 mid-run)");
    s.push(0.0, unpaced.before_qps);
    s.push(1.0, unpaced.during_qps);
    s.push(2.0, unpaced.after_qps);
    let s = report.add_series("elastic paced (2→4 mid-run)");
    s.push(0.0, paced.before_qps);
    s.push(1.0, paced.during_qps);
    s.push(2.0, paced.after_qps);
    let s = report.add_series("static 4 partitions");
    s.push(0.0, static_qps);
    s.push(2.0, static_qps);
    // Dip metrics as their own series so the CSV carries them: x encodes
    // the run (0 = unpaced, 1 = paced).
    let s = report.add_series("dip depth (fraction of baseline)");
    s.push(0.0, unpaced.dip_depth);
    s.push(1.0, paced.dip_depth);
    let s = report.add_series("dip duration (ms)");
    s.push(0.0, unpaced.dip_duration.as_secs_f64() * 1e3);
    s.push(1.0, paced.dip_duration.as_secs_f64() * 1e3);
    report
}

/// Closed-loop ablation: measured utilization → controller recommendation →
/// live resize, repeated for a few phases (§8.1's future work, actuated).
pub fn dynamic_servers_live(scale: &MachineScale, ops_per_phase: u64) -> FigureReport {
    let max_partitions = (scale.pairs.max(1) * 2).clamp(2, 8);
    let clients = scale.pairs.clamp(1, 4);
    let keys: u64 = 10_000;
    let controller = ServerLoadController {
        max_servers: max_partitions,
        ..Default::default()
    };
    let mut report = FigureReport::new(
        "Ablation: dynamic server count — controller recommendations applied live (§8.1)",
        "phase",
        "operations/second",
    );

    // Start deliberately over-provisioned: on a lightly loaded host the
    // controller walks the server count down live; under saturating load it
    // holds or grows it. Either way the actuation path is exercised.
    let (table, mut handles) =
        CpHash::new(CpHashConfig::new(max_partitions, clients).with_max_partitions(max_partitions));
    let mut coordinator =
        RepartitionCoordinator::new(table.take_control().expect("control handle"));
    // Resizes triggered by the controller run in feedback mode: the pacer
    // watches the servers' queue-depth gauges and backs off when the load
    // phase keeps them saturated.
    let mut pacer = MigrationPacer::for_table(&table, MigrationPacing::feedback(2_000.0));
    preload(&mut handles[0], keys);

    let mut throughput_series = Vec::new();
    let mut servers_series = Vec::new();
    let mut utilization_series = Vec::new();
    let mut handles = handles;
    for phase in 0..6u32 {
        let busy_idle_before = cumulative_busy_idle(&table);
        let (returned, qps) = timed_phase(handles, keys, ops_per_phase, 0xD1CE ^ phase as u64);
        handles = returned;
        let (busy, idle) = {
            let (b1, i1) = cumulative_busy_idle(&table);
            (b1 - busy_idle_before.0, i1 - busy_idle_before.1)
        };
        let utilization = if busy + idle == 0 {
            0.0
        } else {
            busy as f64 / (busy + idle) as f64
        };
        let active = table.partitions();
        let recommendation = controller.recommend_for_utilization(utilization, active);
        eprintln!(
            "  phase {phase}: servers={active:>2}  {qps:>12.0} op/s  utilization {:>5.1}%  controller: {recommendation:?}",
            utilization * 100.0
        );
        throughput_series.push((phase as f64, qps));
        servers_series.push((phase as f64, active as f64));
        utilization_series.push((phase as f64, utilization));
        match coordinator.apply_paced(recommendation, &mut pacer) {
            Ok(Some(migration)) => eprintln!("    applied live: {migration}"),
            Ok(None) => {}
            Err(e) => {
                eprintln!("    resize failed: {e}");
                break;
            }
        }
    }
    drop(handles);

    let s = report.add_series("throughput");
    for (x, y) in throughput_series {
        s.push(x, y);
    }
    let s = report.add_series("server_threads");
    for (x, y) in servers_series {
        s.push(x, y);
    }
    let s = report.add_series("utilization");
    for (x, y) in utilization_series {
        s.push(x, y);
    }
    report
}

/// Sum of (busy, idle) loop iterations over the currently active servers.
fn cumulative_busy_idle(table: &CpHash) -> (u64, u64) {
    use cphash_sync::atomic::plain::Ordering;
    let active = table.partitions().min(table.server_stats().len());
    table.server_stats()[..active]
        .iter()
        .fold((0, 0), |(b, i), s| {
            (
                b + s.busy_iterations.load(Ordering::Relaxed), // relaxed: diagnostic snapshot; tearing across counters is fine
                i + s.idle_iterations.load(Ordering::Relaxed), // relaxed: diagnostic snapshot; tearing across counters is fine
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_affinity::Topology;

    fn tiny_scale() -> MachineScale {
        MachineScale::for_hw_threads(Topology::single_socket(2, 2), Some(2))
    }

    #[test]
    fn live_repartition_ablation_produces_both_series() {
        let report = live_repartition_ablation(&tiny_scale(), 4_000);
        let elastic = report
            .series_named("elastic (2→4 mid-run)")
            .expect("series");
        assert_eq!(elastic.points.len(), 3);
        assert!(elastic.points.iter().all(|p| p.y > 0.0));
        assert!(report.series_named("static 4 partitions").is_some());
        // The dip metrics cover both the unpaced and the paced run.
        let depth = report
            .series_named("dip depth (fraction of baseline)")
            .expect("dip depth series");
        assert_eq!(depth.points.len(), 2);
        assert!(depth.points.iter().all(|p| (0.0..=1.0).contains(&p.y)));
        let duration = report.series_named("dip duration (ms)").expect("series");
        assert_eq!(duration.points.len(), 2);
        assert!(duration.points.iter().all(|p| p.y >= 0.0));
    }

    #[test]
    fn paced_migration_dip_waits_on_the_bucket() {
        // A deliberately tight budget must produce paced waits; the table
        // must still finish the transition and keep serving.
        let dip = migration_dip(
            &tiny_scale(),
            2_000,
            cphash::MigrationPacing::Rate {
                chunks_per_sec: 300.0,
            },
        );
        assert_eq!(dip.migration.to_partitions, 4);
        assert!(
            dip.migration.paced_waits > 0,
            "finite budget produced no waits: {:?}",
            dip.migration
        );
        assert!(dip.after_qps > 0.0 && dip.before_qps > 0.0);
    }

    #[test]
    fn dynamic_servers_live_runs_the_control_loop() {
        let report = dynamic_servers_live(&tiny_scale(), 2_000);
        let servers = report.series_named("server_threads").expect("series");
        assert!(!servers.points.is_empty());
        assert!(servers.points.iter().all(|p| p.y >= 1.0));
        assert!(report.series_named("throughput").is_some());
        assert!(report.series_named("utilization").is_some());
    }
}
