//! Live-repartitioning ablations: what does an online grow/shrink cost
//! while traffic keeps flowing, and how does the dynamic server-load
//! controller steer a live table?
//!
//! Two harnesses, both built on a shared pipelined mixed-load driver:
//!
//! * [`live_repartition_ablation`] — measure throughput before, during and
//!   after a live 2→4 grow, against a statically 4-partitioned table as the
//!   baseline (`ablate_live_repartition`).
//! * [`dynamic_servers_live`] — a closed loop: run a load phase, feed the
//!   measured server utilization to `ServerLoadController`, apply its
//!   recommendation with the `RepartitionCoordinator`, repeat
//!   (`ablate_dynamic_servers`).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use cphash::{ClientHandle, CpHash, CpHashConfig, ServerLoadController};
use cphash_migrate::RepartitionCoordinator;
use cphash_perfmon::FigureReport;

use crate::scale::MachineScale;

/// Pipelined-window size per worker; modest so single-CPU hosts interleave
/// client and server work smoothly.
const WINDOW: usize = 64;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One worker's share of a mixed 90/10 lookup/insert phase.
fn mixed_load_worker(client: &mut ClientHandle, keys: u64, ops: u64, seed: u64) {
    let mut completions = Vec::with_capacity(WINDOW * 2);
    let mut state = seed | 1;
    for _ in 0..ops {
        let r = xorshift(&mut state);
        let key = (r >> 8) % keys;
        if r.is_multiple_of(10) {
            client.submit_insert(key, &key.to_le_bytes());
        } else {
            client.submit_lookup(key);
        }
        while client.outstanding() >= WINDOW {
            completions.clear();
            if client.poll(&mut completions) == 0 {
                std::thread::yield_now();
            }
        }
    }
    completions.clear();
    let _ = client.drain(&mut completions);
}

/// Run one timed phase across all clients; returns the clients and the
/// aggregate throughput in operations/second.
fn timed_phase(
    clients: Vec<ClientHandle>,
    keys: u64,
    total_ops: u64,
    phase_seed: u64,
) -> (Vec<ClientHandle>, f64) {
    let workers = clients.len().max(1) as u64;
    let ops_each = total_ops / workers;
    let barrier = Arc::new(Barrier::new(clients.len() + 1));
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                mixed_load_worker(&mut client, keys, ops_each, phase_seed ^ ((i as u64) << 32));
                client
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let clients: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("worker"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (clients, (ops_each * workers) as f64 / elapsed)
}

/// Fill the table with the working set.
fn preload(client: &mut ClientHandle, keys: u64) {
    let mut completions = Vec::with_capacity(WINDOW * 2);
    for key in 0..keys {
        client.submit_insert(key, &key.to_le_bytes());
        while client.outstanding() >= WINDOW {
            completions.clear();
            if client.poll(&mut completions) == 0 {
                std::thread::yield_now();
            }
        }
    }
    completions.clear();
    client.drain(&mut completions).expect("preload");
}

/// Ablation: throughput before / during / after a live 2→4 repartition,
/// with a statically 4-partitioned table as the reference.
pub fn live_repartition_ablation(scale: &MachineScale, ops_per_phase: u64) -> FigureReport {
    let clients = scale.pairs.clamp(1, 4);
    let keys: u64 = 10_000;
    let mut report = FigureReport::new(
        "Ablation: live 2→4 repartition under load vs a static 4-partition table",
        "phase (0=before, 1=during migration, 2=after)",
        "operations/second",
    );

    // Elastic table: starts at 2 partitions, can grow to 4.
    let (_table, mut handles) = CpHash::new(CpHashConfig::new(2, clients).with_max_partitions(4));
    let mut coordinator =
        RepartitionCoordinator::new(_table.take_control().expect("control handle"));
    preload(&mut handles[0], keys);

    let (handles, before) = timed_phase(handles, keys, ops_per_phase, 0xA11CE);

    // Phase 1: the coordinator migrates concurrently with the load.
    let resizer = std::thread::spawn(move || {
        let report = coordinator.resize_to(4).expect("live grow");
        (coordinator, report)
    });
    let (handles, during) = timed_phase(handles, keys, ops_per_phase, 0xB0B);
    let (_coordinator, migration) = resizer.join().expect("resizer thread");

    let (handles, after) = timed_phase(handles, keys, ops_per_phase, 0xC0FFEE);
    let redirected: u64 = handles.iter().map(|h| h.migration_retries()).sum();
    drop(handles);

    // Reference: the same load on a table that was born with 4 partitions.
    let (_static_table, mut static_handles) = CpHash::new(CpHashConfig::new(4, clients));
    preload(&mut static_handles[0], keys);
    let (static_handles, static_qps) = timed_phase(static_handles, keys, ops_per_phase, 0xA11CE);
    drop(static_handles);

    eprintln!("  {migration}");
    eprintln!(
        "  before {before:>12.0} op/s   during {during:>12.0} op/s ({:+.1}% dip)   after {after:>12.0} op/s",
        (during / before.max(1e-9) - 1.0) * 100.0
    );
    eprintln!(
        "  static 4-partition table {static_qps:>12.0} op/s — post-migration table at {:.1}% of static ({redirected} redirected ops)",
        after / static_qps.max(1e-9) * 100.0
    );

    let s = report.add_series("elastic (2→4 mid-run)");
    s.push(0.0, before);
    s.push(1.0, during);
    s.push(2.0, after);
    let s = report.add_series("static 4 partitions");
    s.push(0.0, static_qps);
    s.push(2.0, static_qps);
    report
}

/// Closed-loop ablation: measured utilization → controller recommendation →
/// live resize, repeated for a few phases (§8.1's future work, actuated).
pub fn dynamic_servers_live(scale: &MachineScale, ops_per_phase: u64) -> FigureReport {
    let max_partitions = (scale.pairs.max(1) * 2).clamp(2, 8);
    let clients = scale.pairs.clamp(1, 4);
    let keys: u64 = 10_000;
    let controller = ServerLoadController {
        max_servers: max_partitions,
        ..Default::default()
    };
    let mut report = FigureReport::new(
        "Ablation: dynamic server count — controller recommendations applied live (§8.1)",
        "phase",
        "operations/second",
    );

    // Start deliberately over-provisioned: on a lightly loaded host the
    // controller walks the server count down live; under saturating load it
    // holds or grows it. Either way the actuation path is exercised.
    let (table, mut handles) =
        CpHash::new(CpHashConfig::new(max_partitions, clients).with_max_partitions(max_partitions));
    let mut coordinator =
        RepartitionCoordinator::new(table.take_control().expect("control handle"));
    preload(&mut handles[0], keys);

    let mut throughput_series = Vec::new();
    let mut servers_series = Vec::new();
    let mut utilization_series = Vec::new();
    let mut handles = handles;
    for phase in 0..6u32 {
        let busy_idle_before = cumulative_busy_idle(&table);
        let (returned, qps) = timed_phase(handles, keys, ops_per_phase, 0xD1CE ^ phase as u64);
        handles = returned;
        let (busy, idle) = {
            let (b1, i1) = cumulative_busy_idle(&table);
            (b1 - busy_idle_before.0, i1 - busy_idle_before.1)
        };
        let utilization = if busy + idle == 0 {
            0.0
        } else {
            busy as f64 / (busy + idle) as f64
        };
        let active = table.partitions();
        let recommendation = controller.recommend_for_utilization(utilization, active);
        eprintln!(
            "  phase {phase}: servers={active:>2}  {qps:>12.0} op/s  utilization {:>5.1}%  controller: {recommendation:?}",
            utilization * 100.0
        );
        throughput_series.push((phase as f64, qps));
        servers_series.push((phase as f64, active as f64));
        utilization_series.push((phase as f64, utilization));
        match coordinator.apply(recommendation) {
            Ok(Some(migration)) => eprintln!("    applied live: {migration}"),
            Ok(None) => {}
            Err(e) => {
                eprintln!("    resize failed: {e}");
                break;
            }
        }
    }
    drop(handles);

    let s = report.add_series("throughput");
    for (x, y) in throughput_series {
        s.push(x, y);
    }
    let s = report.add_series("server_threads");
    for (x, y) in servers_series {
        s.push(x, y);
    }
    let s = report.add_series("utilization");
    for (x, y) in utilization_series {
        s.push(x, y);
    }
    report
}

/// Sum of (busy, idle) loop iterations over the currently active servers.
fn cumulative_busy_idle(table: &CpHash) -> (u64, u64) {
    use core::sync::atomic::Ordering;
    let active = table.partitions().min(table.server_stats().len());
    table.server_stats()[..active]
        .iter()
        .fold((0, 0), |(b, i), s| {
            (
                b + s.busy_iterations.load(Ordering::Relaxed),
                i + s.idle_iterations.load(Ordering::Relaxed),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_affinity::Topology;

    fn tiny_scale() -> MachineScale {
        MachineScale::for_hw_threads(Topology::single_socket(2, 2), Some(2))
    }

    #[test]
    fn live_repartition_ablation_produces_both_series() {
        let report = live_repartition_ablation(&tiny_scale(), 4_000);
        let elastic = report
            .series_named("elastic (2→4 mid-run)")
            .expect("series");
        assert_eq!(elastic.points.len(), 3);
        assert!(elastic.points.iter().all(|p| p.y > 0.0));
        assert!(report.series_named("static 4 partitions").is_some());
    }

    #[test]
    fn dynamic_servers_live_runs_the_control_loop() {
        let report = dynamic_servers_live(&tiny_scale(), 2_000);
        let servers = report.series_named("server_threads").expect("series");
        assert!(!servers.points.is_empty());
        assert!(servers.points.iter().all(|p| p.y >= 1.0));
        assert!(report.series_named("throughput").is_some());
        assert!(report.series_named("utilization").is_some());
    }
}
