//! The paper's own headline numbers, for side-by-side printing.
//!
//! Absolute throughput on the 80-core testbed is not reproducible on a
//! laptop-class host; what the harnesses check (and EXPERIMENTS.md records)
//! is the *shape*: who wins, by roughly what factor, and where the
//! crossovers sit.  These constants are the paper's claims, quoted where the
//! figures/text state them.

/// §1 / §6.1: CPHash throughput advantage over LockHash in the cached
/// working-set range (256 KB – 128 MB): "a factor of 1.6× to 2×".
pub const FIG5_SPEEDUP_RANGE: (f64, f64) = (1.6, 2.0);

/// Figure 6: cycles per operation.
pub mod fig6 {
    /// CPHash client cycles per operation.
    pub const CPHASH_CLIENT_CYCLES: f64 = 1126.0;
    /// CPHash server cycles per operation.
    pub const CPHASH_SERVER_CYCLES: f64 = 672.0;
    /// LockHash cycles per operation.
    pub const LOCKHASH_CYCLES: f64 = 3664.0;
    /// Per-operation L2 misses (client, server, lockhash).
    pub const L2_MISSES: (f64, f64, f64) = (1.0, 2.5, 2.4);
    /// Per-operation L3 misses (client, server, lockhash).
    pub const L3_MISSES: (f64, f64, f64) = (1.9, 1.2, 4.6);
    /// L2 miss cost in cycles (cphash, lockhash).
    pub const L2_COST: (f64, f64) = (64.0, 170.0);
    /// L3 miss cost in cycles (cphash, lockhash).
    pub const L3_COST: (f64, f64) = (381.0, 1421.0);
}

/// Figure 7 totals: (L2 misses/op, L3 misses/op).
pub mod fig7 {
    /// LockHash total misses per operation.
    pub const LOCKHASH_TOTAL: (f64, f64) = (2.4, 4.6);
    /// CPHash client totals.
    pub const CPHASH_CLIENT_TOTAL: (f64, f64) = (1.0, 1.9);
    /// CPHash server totals.
    pub const CPHASH_SERVER_TOTAL: (f64, f64) = (2.5, 1.2);
}

/// §6.3: with random eviction the advantage drops but stays significant
/// ("1.45× at 4 MB").
pub const FIG8_SPEEDUP_AT_4MB: f64 = 1.45;

/// §7: hash-table work is ~30 % of CPSERVER's per-request cost, so the
/// 1.6× table win translates into ~11 % at most; measured ~5 %.
pub const FIG13_SERVER_SPEEDUP: f64 = 1.05;

/// §6.2: server threads spend 59 % of their time processing operations.
pub const SERVER_UTILIZATION: f64 = 0.59;

/// §6.1: batch sizes between 512 and 8,192 give similar throughput.
pub const BATCH_SWEET_SPOT: (usize, usize) = (512, 8192);

/// Compare a measured CPHash/LockHash throughput ratio against the paper's
/// Figure 5 claim, returning a short verdict string for the report.
pub fn verdict_fig5(ratio: f64) -> String {
    let (lo, hi) = FIG5_SPEEDUP_RANGE;
    if ratio >= lo {
        format!("measured {ratio:.2}x — matches the paper's {lo:.1}x–{hi:.1}x claim")
    } else if ratio >= 1.0 {
        format!("measured {ratio:.2}x — CPHash ahead but below the paper's {lo:.1}x–{hi:.1}x")
    } else {
        format!("measured {ratio:.2}x — CPHash behind LockHash at this point")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_sane() {
        assert!(FIG5_SPEEDUP_RANGE.0 < FIG5_SPEEDUP_RANGE.1);
        assert!(fig6::LOCKHASH_CYCLES > fig6::CPHASH_CLIENT_CYCLES);
        assert!(fig6::L3_COST.1 > fig6::L3_COST.0);
        assert!(FIG8_SPEEDUP_AT_4MB > 1.0);
        assert!(SERVER_UTILIZATION > 0.0 && SERVER_UTILIZATION < 1.0);
        assert!(BATCH_SWEET_SPOT.0 < BATCH_SWEET_SPOT.1);
    }

    #[test]
    fn verdict_strings_cover_all_cases() {
        assert!(verdict_fig5(1.8).contains("matches"));
        assert!(verdict_fig5(1.2).contains("ahead"));
        assert!(verdict_fig5(0.8).contains("behind"));
    }
}
