//! Shared harness code for the figure-regenerating benchmark binaries.
//!
//! Every table and figure in the paper's evaluation (§6 and §7) has a
//! corresponding binary in `src/bin/` (`fig05_working_set`, …,
//! `fig14_memcached`, plus `ablate_*` binaries for design-choice ablations).
//! They all share the same plumbing, which lives here:
//!
//! * [`args::HarnessArgs`] — a tiny `--quick` / `--ops` / `--csv` argument
//!   parser so every binary behaves the same way.
//! * [`scale::MachineScale`] — maps the paper's 80-core machine onto
//!   whatever this host offers (thread counts, partition counts, scaled
//!   working-set sweeps), and records the mapping so EXPERIMENTS.md can
//!   show both.
//! * [`figures`] — the sweep implementations used by the binaries.
//! * [`paper`] — the paper's own headline numbers, printed next to measured
//!   results for easy comparison.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod args;
pub mod figures;
pub mod live;
pub mod paper;
pub mod scale;

pub use args::HarnessArgs;
pub use scale::MachineScale;

use cphash_perfmon::FigureReport;

/// The xorshift64* step shared by harness binaries that need a cheap
/// deterministic stream (e.g. `ablate_prefetch`'s key mix).
pub fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Print a finished figure to stdout (human table plus CSV block) and, if
/// requested, write the CSV to a file.
pub fn emit_report(report: &FigureReport, args: &HarnessArgs) {
    println!("{}", report.to_table());
    println!("--- CSV ---\n{}", report.to_csv());
    if let Some(path) = &args.csv_path {
        if let Err(e) = std::fs::write(path, report.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(CSV written to {})", path.display());
        }
    }
}
