//! Figures 6 and 7: per-operation cycle counts and per-function cache-miss
//! breakdowns for CPHash (client and server threads) and LockHash, at the
//! 1 MB working-set configuration.
//!
//! Hardware performance counters are replaced by the software cache model in
//! `cphash-cachesim` (see DESIGN.md §4); the harness prints the model's
//! numbers next to the paper's.

use cphash_bench::{figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(200_000);
    let text = figures::breakdown_tables(&scale, ops);
    println!("{text}");
    if let Some(path) = &args.csv_path {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}
