//! Ablation (§6.2): LockHash under different lock algorithms — the paper's
//! spinlock against a ticket lock and Anderson's array lock — at low and
//! high partition counts.

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(1_000_000);
    let report = figures::lock_ablation(&scale, ops);
    emit_report(&report, &args);
    println!("paper: at 4,096 partitions contention is rare, so the cheap uncontended spinlock beats scalable locks (which pay two misses to acquire and one to release)");
}
