//! Figure 8: the Figure 5 working-set sweep repeated with a random eviction
//! policy instead of LRU (§6.3).

use cphash::EvictionPolicy;
use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(scale.default_ops());
    let report = figures::working_set_sweep(&scale, EvictionPolicy::Random, ops, args.quick);
    emit_report(&report, &args);
    println!(
        "paper: with random eviction the CPHash advantage shrinks (to ~{:.2}x at 4 MB) but remains",
        cphash_bench::paper::FIG8_SPEEDUP_AT_4MB
    );
}
