//! Figure 12: throughput under three hardware-thread configurations
//! (all threads / one thread per core / all threads on half the cores).

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    println!("note: on hosts without SMT or without permission to set CPU affinity, the three configurations differ only in thread count\n");
    let ops = args.ops_or(scale.default_ops());
    let report = figures::smt_configurations(&scale, ops);
    emit_report(&report, &args);
    println!("paper: both tables do best with SMT siblings sharing cores on fewer sockets; CPHash gains more from the extra hardware threads");
}
