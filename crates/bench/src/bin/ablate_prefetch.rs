//! Ablation: the batched, prefetch-pipelined server hot loop vs the scalar
//! baseline.
//!
//! Two measurements of the same mechanism, at the paper-style read-heavy
//! mix (95 % lookups / 5 % value-replacing inserts, uniform keys):
//!
//! 1. **Hot loop (gated)** — one thread drives one real `Partition`
//!    through exactly the stages the server executor runs:
//!    * `scalar`        — hash, touch memory, finish, one op at a time;
//!    * `batched`       — prepare (hash) a whole batch, then execute it:
//!      even without prefetches, back-to-back independent bucket walks let
//!      the CPU overlap their misses (memory-level parallelism the scalar
//!      loop's interleaved bookkeeping never exposes);
//!    * `prefetch`      — prepare + software-prefetch every bucket chain
//!      head, then execute (what `ServerPipeline::BatchedPrefetch` ships);
//!    * `prefetch-deep` — an extra staging pass that re-reads each fetched
//!      head and prefetches its LRU neighbors
//!      (`Partition::prefetch_neighbors`).  Reported, not shipped: it wins
//!      while the table fits the last-level cache and loses once the heads
//!      themselves come from DRAM (the re-reads stall the staging pass).
//!
//!    All four arms are pinned to `BucketLayout::Chain` at one bucket per
//!    key, so they remain the PR 5 baseline in its historical regime.
//!    `--strict` exits nonzero unless `prefetch ≥ 1.1 × scalar` here —
//!    this isolates the server mechanism, so the gate holds even on hosts
//!    with fewer cores than benchmark threads.
//!
//! 1a. **Bucket layout (gated)** — the same prefetch staging loop on two
//!    same-shaped partitions, one per `BucketLayout`, at `--load-factor`
//!    keys per bucket (default 4; a capacity-bound cache runs its buckets
//!    populated).  There the chained layout's lookup is a dependent-miss
//!    chain of element headers, while the tagged inline line still holds
//!    every entry — one prefetched line resolves the whole common case.
//!    `--strict` exits nonzero unless `inline ≥ 1.1 × chain-prefetch`.
//!    The [`cphash_cachesim::BucketProbeModel`] prediction (expected
//!    exposed-line reduction per probe) is printed next to the
//!    measurement, and an `inline-deep` arm reports the
//!    `prefetch_neighbors` second pass, which under the inline layout
//!    re-reads only the already-prefetched bucket line.
//!
//! 1b. **Tracing overhead (gated)** — the prefetch arm re-run with the
//!    production [`StageSpan`] hooks compiled in.  With tracing disabled
//!    the hooks must cost `<= 2%` (`--strict` gates `hooks-off >= 0.98 ×
//!    hook-free`); with tracing enabled the slowdown is reported as the
//!    documented cost of `--trace`.
//!
//! 2. **End-to-end (context, ungated)** — the full table (client threads,
//!    rings, server threads) under `ServerPipeline::{Scalar, Batched,
//!    BatchedPrefetch}`.  On machines with enough cores that the server
//!    thread is the bottleneck this tracks the hot-loop ratio; on
//!    oversubscribed hosts it mostly measures timesharing, which is why
//!    the gate lives on the hot loop.
//!
//! With `--json <path>` the run additionally writes its results (rates,
//! gate ratios, model prediction, end-to-end rows) as a machine-readable
//! JSON document, so benchmark trajectories can be tracked in-repo.
//!
//! ```text
//! cargo run --release -p cphash-bench --bin ablate_prefetch -- \
//!     [--keys N] [--ops N] [--batch N] [--insert-pct P] [--repeats N] \
//!     [--e2e-ops N] [--e2e-working-set-mb N] [--skip-e2e] [--quick] \
//!     [--strict] [--json PATH]
//! ```

use cphash::ServerPipeline;
use cphash_bench::xorshift64;
use cphash_cachesim::BucketProbeModel;
use cphash_hashcore::{BucketLayout, BucketRef, Partition, PartitionConfig};
use cphash_loadgen::{run_cphash, DriverOptions, RunResult, WorkloadSpec};
use cphash_perfmon::trace::{self, TraceStage};
use cphash_perfmon::{StageSpan, Stopwatch};

struct Args {
    keys: u64,
    ops: u64,
    batch: usize,
    insert_pct: u64,
    repeats: usize,
    e2e_ops: u64,
    e2e_working_set_mb: usize,
    skip_e2e: bool,
    strict: bool,
    json: Option<String>,
    load_factor: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        keys: 4_000_000,
        ops: 3_000_000,
        batch: 64,
        insert_pct: 5,
        repeats: 3,
        e2e_ops: 1_000_000,
        e2e_working_set_mb: 32,
        skip_e2e: false,
        strict: false,
        json: None,
        load_factor: 4.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--keys" => args.keys = value("--keys").parse().expect("bad --keys"),
            "--ops" => args.ops = value("--ops").parse().expect("bad --ops"),
            "--batch" => args.batch = value("--batch").parse().expect("bad --batch"),
            "--insert-pct" => {
                args.insert_pct = value("--insert-pct").parse().expect("bad --insert-pct")
            }
            "--repeats" => {
                args.repeats = value("--repeats")
                    .parse::<usize>()
                    .expect("bad --repeats")
                    .max(1)
            }
            "--e2e-ops" => args.e2e_ops = value("--e2e-ops").parse().expect("bad --e2e-ops"),
            "--e2e-working-set-mb" => {
                args.e2e_working_set_mb = value("--e2e-working-set-mb")
                    .parse()
                    .expect("bad --e2e-working-set-mb")
            }
            "--skip-e2e" => args.skip_e2e = true,
            "--quick" => {
                args.keys = 1_500_000;
                args.ops = 1_000_000;
                args.repeats = 2;
                args.e2e_ops = 400_000;
                args.e2e_working_set_mb = 16;
            }
            "--strict" => args.strict = true,
            "--json" => args.json = Some(value("--json")),
            "--load-factor" => {
                args.load_factor = value("--load-factor").parse().expect("bad --load-factor")
            }
            other => panic!(
                "unknown flag {other:?} (--keys N --ops N --batch N --insert-pct P --repeats N --load-factor F --e2e-ops N --e2e-working-set-mb N --skip-e2e --quick --strict --json PATH)"
            ),
        }
    }
    args
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum HotArm {
    Scalar,
    Batched,
    Prefetch,
    PrefetchDeep,
}

const HOT_ARMS: [(HotArm, &str); 4] = [
    (HotArm::Scalar, "scalar"),
    (HotArm::Batched, "batched"),
    (HotArm::Prefetch, "prefetch"),
    (HotArm::PrefetchDeep, "prefetch-deep"),
];

/// One hot-loop run: `ops` operations against a prefilled partition,
/// returning operations per second.
fn run_hot(partition: &mut Partition, arm: HotArm, args: &Args) -> f64 {
    let mut rng = 0x0DD0_BA11_5EED_0001u64;
    let mut value_buf: Vec<u8> = Vec::with_capacity(16);
    let mut preps: Vec<BucketRef> = Vec::with_capacity(args.batch);
    let mut kinds: Vec<bool> = Vec::with_capacity(args.batch); // true = insert
    let watch = Stopwatch::start();
    let mut done = 0u64;
    while done < args.ops {
        let n = args.batch.min((args.ops - done) as usize);
        if arm == HotArm::Scalar {
            for _ in 0..n {
                let r = xorshift64(&mut rng);
                let key = r % args.keys;
                if r % 100 < args.insert_pct {
                    partition
                        .insert_copy(key, &r.to_le_bytes())
                        .expect("unbounded");
                } else if let Some(hit) = partition.lookup(key) {
                    partition.read_value(&hit, &mut value_buf);
                    partition.decref(hit.id);
                }
            }
        } else {
            // Stage 1: prepare (and under the prefetch arms, hint) the
            // whole batch without touching table memory.
            preps.clear();
            kinds.clear();
            for _ in 0..n {
                let r = xorshift64(&mut rng);
                let key = r % args.keys;
                let prep = partition.prepare(key);
                if arm != HotArm::Batched {
                    partition.prefetch_prepared(&prep);
                }
                preps.push(prep);
                kinds.push(r % 100 < args.insert_pct);
            }
            if arm == HotArm::PrefetchDeep {
                for prep in &preps {
                    partition.prefetch_neighbors(prep);
                }
            }
            // Stage 2: execute the batch in order.
            for (prep, is_insert) in preps.iter().zip(kinds.iter()) {
                if *is_insert {
                    partition
                        .insert_prepared(*prep, 8)
                        .map(|r| partition.fill_and_ready(r.id, &prep.key().to_le_bytes()))
                        .expect("unbounded");
                } else if let Some(hit) = partition.lookup_prepared(*prep) {
                    partition.read_value(&hit, &mut value_buf);
                    partition.decref(hit.id);
                }
            }
        }
        done += n as u64;
    }
    args.ops as f64 / watch.elapsed_secs()
}

/// The prefetch hot loop with the production trace hooks compiled in: one
/// [`StageSpan`] per pipeline stage per batch, exactly like the server's
/// staged executor.  With tracing disabled this measures the hooks' fixed
/// cost (a relaxed load and branch per span); enabled, the cost of
/// `--trace`.
fn run_hot_hooked(partition: &mut Partition, args: &Args) -> f64 {
    let mut rng = 0x0DD0_BA11_5EED_0001u64;
    let mut value_buf: Vec<u8> = Vec::with_capacity(16);
    let mut preps: Vec<BucketRef> = Vec::with_capacity(args.batch);
    let mut kinds: Vec<bool> = Vec::with_capacity(args.batch);
    let watch = Stopwatch::start();
    let mut done = 0u64;
    while done < args.ops {
        let n = args.batch.min((args.ops - done) as usize);
        preps.clear();
        kinds.clear();
        let span = StageSpan::begin(TraceStage::Prepare);
        for _ in 0..n {
            let r = xorshift64(&mut rng);
            let key = r % args.keys;
            let prep = partition.prepare(key);
            partition.prefetch_prepared(&prep);
            preps.push(prep);
            kinds.push(r % 100 < args.insert_pct);
        }
        span.finish(n as u32);
        let span = StageSpan::begin(TraceStage::Execute);
        for (prep, is_insert) in preps.iter().zip(kinds.iter()) {
            if *is_insert {
                partition
                    .insert_prepared(*prep, 8)
                    .map(|r| partition.fill_and_ready(r.id, &prep.key().to_le_bytes()))
                    .expect("unbounded");
            } else if let Some(hit) = partition.lookup_prepared(*prep) {
                partition.read_value(&hit, &mut value_buf);
                partition.decref(hit.id);
            }
        }
        span.finish(n as u32);
        done += n as u64;
    }
    args.ops as f64 / watch.elapsed_secs()
}

fn run_e2e(pipeline: ServerPipeline, args: &Args) -> RunResult {
    let spec = WorkloadSpec {
        working_set_bytes: args.e2e_working_set_mb << 20,
        capacity_bytes: args.e2e_working_set_mb << 20,
        value_bytes: 8,
        insert_ratio: args.insert_pct as f64 / 100.0,
        operations: args.e2e_ops,
        batch: 1_000,
        ..Default::default()
    };
    let opts = DriverOptions {
        pipeline,
        server_batch_size: args.batch,
        ..DriverOptions::new(1, 1)
    };
    run_cphash(&spec, &opts)
}

fn main() {
    let args = parse_args();
    println!(
        "hot-path ablation: {} keys, {} ops, depth {}, {}% inserts, best of {}",
        args.keys, args.ops, args.batch, args.insert_pct, args.repeats
    );
    if !cphash_cacheline::prefetch_supported() {
        println!(
            "note: no prefetch instruction on this target; the prefetch arms measure batching only"
        );
    }

    // Section 1 — the PR 5 pipeline arms, at their historical geometry
    // (one bucket per key, chained layout): the gate that batching +
    // prefetch pays for itself is measured in the same regime it always
    // was.  The partition is dropped before section 2 builds its pair so
    // peak memory stays at two tables.
    let mut best = [0f64; HOT_ARMS.len()];
    {
        let mut partition = Partition::new(
            PartitionConfig::new(args.keys as usize, None).with_layout(BucketLayout::Chain),
        );
        for key in 0..args.keys {
            partition
                .insert_copy(key, &key.to_le_bytes())
                .expect("prefill");
        }
        println!(
            "pipeline partition prefilled: {} elements over {} buckets (chain)\n",
            partition.len(),
            partition.bucket_count()
        );

        // Interleave the arms across repeat rounds so machine noise hits
        // every arm evenly; keep each arm's best (noise only subtracts
        // throughput).
        for _ in 0..args.repeats {
            for (slot, (arm, _)) in HOT_ARMS.into_iter().enumerate() {
                best[slot] = best[slot].max(run_hot(&mut partition, arm, &args));
            }
        }

        println!("hot loop (single thread, one partition):");
        println!("{:<14} {:>14} {:>12}", "arm", "ops/sec", "vs scalar");
        let scalar = best[0];
        for ((_, name), rate) in HOT_ARMS.into_iter().zip(best.iter()) {
            println!("{:<14} {:>14.0} {:>11.2}x", name, rate, rate / scalar);
        }
    }
    let gate = best[2] / best[0];

    // Section 2 — the bucket-layout head-to-head, at `--load-factor` keys
    // per bucket (default 4: a capacity-bound cache runs its buckets
    // populated, and that is where the layouts diverge — the chained walk
    // is a dependent-miss chain, while the tagged line still holds every
    // entry, so one prefetch covers the whole common case).  Three arms on
    // two same-shaped partitions, interleaved:
    //   chain-prefetch — the PR 5 pipeline on the chained layout;
    //   inline         — the same staging on the inline layout;
    //   inline-deep    — inline plus the `prefetch_neighbors` second pass,
    //                    which under this layout re-reads only the bucket
    //                    line the first pass already fetched (none of the
    //                    chained layout's stalling head re-reads) and hints
    //                    the tag-matched element slots.
    let buckets = ((args.keys as f64 / args.load_factor.max(0.1)).ceil() as usize)
        .next_power_of_two()
        .max(64);
    let mut chain_partition =
        Partition::new(PartitionConfig::new(buckets, None).with_layout(BucketLayout::Chain));
    let mut inline_partition =
        Partition::new(PartitionConfig::new(buckets, None).with_layout(BucketLayout::Inline));
    for key in 0..args.keys {
        chain_partition
            .insert_copy(key, &key.to_le_bytes())
            .expect("prefill");
        inline_partition
            .insert_copy(key, &key.to_le_bytes())
            .expect("prefill");
    }
    let load_factor = inline_partition.len() as f64 / inline_partition.bucket_count() as f64;
    println!(
        "\nlayout partitions prefilled: {} elements over {} buckets, load factor {:.2} (chain + inline)",
        inline_partition.len(),
        inline_partition.bucket_count(),
        load_factor,
    );
    let mut layout_best = [0f64; 3];
    for _ in 0..args.repeats {
        layout_best[0] = layout_best[0].max(run_hot(&mut chain_partition, HotArm::Prefetch, &args));
        layout_best[1] =
            layout_best[1].max(run_hot(&mut inline_partition, HotArm::Prefetch, &args));
        layout_best[2] =
            layout_best[2].max(run_hot(&mut inline_partition, HotArm::PrefetchDeep, &args));
    }
    drop(chain_partition);
    const LAYOUT_ARMS: [&str; 3] = ["chain-prefetch", "inline", "inline-deep"];
    println!("bucket layout (prefetch staging, both layouts):");
    println!("{:<14} {:>14} {:>12}", "arm", "ops/sec", "vs chain");
    for (name, rate) in LAYOUT_ARMS.iter().zip(layout_best.iter()) {
        println!(
            "{:<14} {:>14.0} {:>11.2}x",
            name,
            rate,
            rate / layout_best[0]
        );
    }
    let layout_gate = layout_best[1] / layout_best[0];

    // What the cache model predicts for the layout gate: expected exposed
    // (non-overlapped) lines per probe under each layout.  Every lookup in
    // this mix hits (keys are prefilled).
    let model = BucketProbeModel {
        load_factor,
        hit_rate: 1.0,
        inline_slots: cphash_hashcore::INLINE_SLOTS,
        tag_bits: 8,
    };
    let model_chain = model.chain();
    let model_inline = model.inline();
    println!(
        "bucket-probe model: chain exposes {:.2} lines/probe ({:.0} staged read + {:.2} walk - {:.2} prefetched), inline {:.2}",
        model_chain.exposed_lines,
        model_chain.staged_lines,
        model_chain.probe_lines,
        model_chain.prefetched_lines,
        model_inline.exposed_lines,
    );
    println!(
        "bucket-probe model: predicted inline/chain reduction {:.2}x (measured {:.2}x)",
        model.exposed_miss_reduction(),
        layout_gate
    );

    // Tracing overhead: the same prefetch loop with the production stage
    // hooks compiled in, measured with tracing off (must be free) and on
    // (the advertised cost of --trace; reported, not gated).  The
    // hook-free baseline is re-measured interleaved with the hooked arms
    // so frequency/cache drift between report sections cannot masquerade
    // as hook cost.
    // A 2% gate needs tighter best-of estimates than the 10%
    // pipeline-vs-scalar one: floor the repeat count for this section.
    let trace_repeats = args.repeats.max(6);
    let mut best_plain = 0f64;
    let mut best_hooks_off = 0f64;
    let mut best_hooks_on = 0f64;
    // Measured on the inline-layout partition: that is what the shipping
    // server executor runs.
    for _ in 0..trace_repeats {
        best_plain = best_plain.max(run_hot(&mut inline_partition, HotArm::Prefetch, &args));
        trace::set_trace_enabled(false);
        best_hooks_off = best_hooks_off.max(run_hot_hooked(&mut inline_partition, &args));
        trace::set_trace_enabled(true);
        best_hooks_on = best_hooks_on.max(run_hot_hooked(&mut inline_partition, &args));
    }
    trace::set_trace_enabled(false);
    let traced = trace::snapshot(0);
    println!("\ntracing overhead (prefetch hot loop with stage hooks):");
    println!("{:<14} {:>14} {:>14}", "arm", "ops/sec", "vs hook-free");
    println!("{:<14} {:>14.0} {:>13.2}x", "hook-free", best_plain, 1.0);
    for (name, rate) in [("hooks-off", best_hooks_off), ("tracing-on", best_hooks_on)] {
        println!("{:<14} {:>14.0} {:>13.3}x", name, rate, rate / best_plain);
    }
    println!(
        "tracing-on recorded {} stage events (execute p50 {} cycles)",
        traced.total_events(),
        traced.stage(TraceStage::Execute).percentile(50.0)
    );
    trace::reset();
    let trace_gate = best_hooks_off / best_plain;

    let mut e2e_rows: Vec<(&'static str, f64, f64)> = Vec::new();
    if !args.skip_e2e {
        println!(
            "\nend-to-end (1 client thread + 1 server thread, {} MiB working set, {} ops; context only — on hosts with fewer free cores than threads this measures timesharing, not the server loop):",
            args.e2e_working_set_mb, args.e2e_ops
        );
        println!(
            "{:<14} {:>14} {:>9} {:>12} {:>11} {:>12}",
            "pipeline", "ops/sec", "hit-rate", "batches", "occupancy", "prefetches"
        );
        for pipeline in [
            ServerPipeline::Scalar,
            ServerPipeline::Batched,
            ServerPipeline::BatchedPrefetch,
        ] {
            let result = run_e2e(pipeline, &args);
            println!(
                "{:<14} {:>14.0} {:>8.1}% {:>12} {:>11.1} {:>12}",
                pipeline.as_str(),
                result.throughput(),
                result.hit_rate() * 100.0,
                result.batch.batches,
                result.batch.avg_occupancy(),
                result.batch.prefetches,
            );
            e2e_rows.push((pipeline.as_str(), result.throughput(), result.hit_rate()));
        }
    }

    println!(
        "\nhot loop: batched+prefetch = {:.2}x scalar (gate: >= 1.1x)",
        gate
    );
    let mut failed = false;
    if gate >= 1.1 {
        println!("PASS: the staged pipeline pays for itself in the partition hot loop");
    } else {
        println!("FAIL: batched+prefetch only {gate:.2}x scalar (expected >= 1.1x)");
        failed = true;
    }
    println!(
        "bucket layout: inline = {:.2}x chain-prefetch at load factor {:.2} (gate: >= 1.1x)",
        layout_gate, load_factor
    );
    if layout_gate >= 1.1 {
        println!("PASS: one prefetched bucket line beats the chained layout's dependent walk");
    } else {
        println!("FAIL: inline layout only {layout_gate:.2}x chain-prefetch (expected >= 1.1x)");
        failed = true;
    }
    println!(
        "tracing hooks, disabled: {:.3}x hook-free (gate: >= 0.98x)",
        trace_gate
    );
    if trace_gate >= 0.98 {
        println!("PASS: compiled-in-but-off tracing costs <= 2% in the hot loop");
    } else {
        println!(
            "FAIL: disabled trace hooks cost {:.1}% (expected <= 2%)",
            (1.0 - trace_gate) * 100.0
        );
        failed = true;
    }

    if let Some(path) = &args.json {
        let mut out = String::new();
        out.push_str("{\n  \"bench\": \"ablate_prefetch\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"keys\": {}, \"ops\": {}, \"batch\": {}, \"insert_pct\": {}, \"repeats\": {}, \"load_factor\": {:.4}}},\n",
            args.keys, args.ops, args.batch, args.insert_pct, args.repeats, load_factor
        ));
        out.push_str("  \"hot_loop_ops_per_sec\": {");
        for (i, ((_, name), rate)) in HOT_ARMS.into_iter().zip(best.iter()).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {rate:.0}"));
        }
        out.push_str("},\n");
        out.push_str("  \"bucket_layout_ops_per_sec\": {");
        for (i, (name, rate)) in LAYOUT_ARMS.iter().zip(layout_best.iter()).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {rate:.0}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"gates\": {{\"prefetch_vs_scalar\": {gate:.4}, \"inline_vs_chain_prefetch\": {layout_gate:.4}, \"trace_hooks_off_vs_hook_free\": {trace_gate:.4}, \"pass\": {}}},\n",
            !failed
        ));
        out.push_str(&format!(
            "  \"bucket_probe_model\": {{\"load_factor\": {:.4}, \"inline_slots\": {}, \"chain_exposed_lines\": {:.4}, \"inline_exposed_lines\": {:.4}, \"predicted_reduction\": {:.4}}},\n",
            model.load_factor,
            model.inline_slots,
            model_chain.exposed_lines,
            model_inline.exposed_lines,
            model.exposed_miss_reduction()
        ));
        out.push_str("  \"end_to_end\": [");
        for (i, (name, rate, hit)) in e2e_rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"pipeline\": \"{name}\", \"ops_per_sec\": {rate:.0}, \"hit_rate\": {hit:.4}}}"
            ));
        }
        out.push_str("]\n}\n");
        std::fs::write(path, out).expect("write --json output");
        println!("wrote JSON results to {path}");
    }

    if failed && args.strict {
        std::process::exit(1);
    }
}
