//! Figure 11: per-hardware-thread throughput as the number of hardware
//! threads grows (socket granularity in the paper, pair granularity here).

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(scale.default_ops());
    let report = figures::thread_scaling_sweep(&scale, ops, args.quick);
    emit_report(&report, &args);
    println!("paper: LockHash's per-thread throughput degrades as threads span more sockets; CPHash stays near-flat (near-linear total scaling)");
}
