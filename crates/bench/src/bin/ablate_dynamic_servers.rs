//! Ablation (§8.1, future work): throughput and server utilization across
//! static server-thread counts, with the dynamic controller's recommendation
//! printed at each point.

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(1_000_000);
    let report = figures::dynamic_servers_ablation(&scale, ops);
    emit_report(&report, &args);
    println!("paper (§8.1): dynamically choosing the client/server split is future work; the controller here implements the decision rule and this sweep shows the static optimum it converges to");
}
