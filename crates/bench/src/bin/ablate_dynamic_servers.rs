//! Ablation (§8.1, formerly future work): the dynamic server-count
//! controller driving *live* repartitions.
//!
//! Each phase runs a mixed workload, measures server utilization, asks
//! `ServerLoadController` for a recommendation, and applies it to the
//! running table with the `cphash-migrate` coordinator — no restart, no
//! lost keys.

use cphash_bench::{emit_report, live, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(400_000);
    let report = live::dynamic_servers_live(&scale, ops);
    emit_report(&report, &args);
    println!(
        "paper (§8.1): dynamically choosing the client/server split was future work; the \
         controller implements the decision rule and the coordinator now applies it to the \
         live table, chunk by chunk"
    );
}
