//! Ablation: what a live 2→4 repartition costs while traffic keeps flowing.
//!
//! Measures mixed-workload throughput before, during and after an online
//! grow driven by the `cphash-migrate` coordinator, and compares the
//! post-migration steady state against a table that was statically built
//! with the target partition count (the acceptance bar: within ~10%).

use cphash_bench::{emit_report, live, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(400_000);
    let report = live::live_repartition_ablation(&scale, ops);
    emit_report(&report, &args);
    println!(
        "the migration window shows the worst-case dip; once the watermark covers every chunk, \
         routing is a single atomic load again and throughput returns to the static table's level"
    );
}
