//! Figure 10: throughput over a range of INSERT fractions at a fixed
//! working set and capacity.

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(scale.default_ops());
    let report = figures::insert_ratio_sweep(&scale, ops, args.quick);
    emit_report(&report, &args);
    println!("paper: higher INSERT fractions reduce throughput for both tables; CPHash's advantage is not sensitive to the ratio");
}
