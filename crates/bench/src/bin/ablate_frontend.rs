//! Ablation: the event-driven front-end vs the legacy busy-poll, under a
//! connection-scaling workload.
//!
//! Starts CPSERVER twice — once per `--frontend` kind — parks a herd of
//! idle connections on it, drives the same paced request stream over a few
//! active connections, and compares what the front-end *did* to serve it:
//! reactor wake-ups, events per wake-up and idle sleeps
//! (`FrontendStats`), plus client-observed batch p99.
//!
//! The claim under test (ISSUE 3 acceptance): with 1k+ idle connections at
//! a fixed request rate, the epoll front-end wakes at least 10× less often
//! than the busy-poll front-end at equal throughput — wake-ups bounded by
//! activity, not by connection count.
//!
//! ```text
//! cargo run --release -p cphash-bench --bin ablate_frontend -- \
//!     [--idle 1000] [--requests 50000] [--rate 20000] [--strict]
//! ```
//!
//! `--strict` exits nonzero if the ratio falls below 10× while a real
//! epoll backend is available (used by CI as a regression gate).

use cphash_kvserver::reactor::{reactor_available, FrontendKind};
use cphash_kvserver::{CpServer, CpServerConfig};
use cphash_loadgen::{run_connection_scaling, ConnectionScalingOptions, ConnectionScalingResult};

struct Args {
    idle: usize,
    requests: u64,
    rate: f64,
    strict: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        idle: 1000,
        requests: 50_000,
        rate: 20_000.0,
        strict: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--idle" => args.idle = value("--idle").parse().expect("bad --idle"),
            "--requests" => args.requests = value("--requests").parse().expect("bad --requests"),
            "--rate" => args.rate = value("--rate").parse().expect("bad --rate"),
            "--strict" => args.strict = true,
            other => panic!("unknown flag {other:?} (--idle N --requests N --rate RPS --strict)"),
        }
    }
    args
}

struct Outcome {
    kind: FrontendKind,
    result: ConnectionScalingResult,
    wakeups: u64,
    events_per_wakeup: f64,
    idle_sleeps: u64,
}

fn run_one(kind: FrontendKind, args: &Args) -> Outcome {
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        capacity_bytes: Some(16 * 1024 * 1024),
        typical_value_bytes: 8,
        frontend: kind,
        ..Default::default()
    })
    .expect("starting CPSERVER");
    let result = run_connection_scaling(&ConnectionScalingOptions {
        addr: server.addr(),
        idle_connections: args.idle,
        active_connections: 2,
        requests: args.requests,
        pipeline: 64,
        target_rps: Some(args.rate),
    })
    .expect("scaling run");
    let frontend = &server.metrics().frontend;
    let outcome = Outcome {
        kind,
        result,
        wakeups: frontend.wakeups(),
        events_per_wakeup: frontend.events_per_wakeup(),
        idle_sleeps: frontend.idle_sleeps(),
    };
    server.shutdown();
    outcome
}

fn main() {
    let args = parse_args();
    println!(
        "connection-scaling ablation: {} idle connections, {} requests at {:.0} req/s",
        args.idle, args.requests, args.rate
    );
    let epoll_real = reactor_available(FrontendKind::Epoll);
    if !epoll_real {
        println!("note: no epoll on this host; the 'epoll' run degrades to busy-poll");
    }

    let outcomes: Vec<Outcome> = [FrontendKind::Epoll, FrontendKind::Poll]
        .into_iter()
        .map(|kind| run_one(kind, &args))
        .collect();

    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "frontend", "idle-open", "throughput", "wakeups", "ev/wakeup", "idle-sleeps", "p99(us)"
    );
    for o in &outcomes {
        println!(
            "{:<8} {:>10} {:>12.0} {:>12} {:>12.1} {:>12} {:>10}",
            o.kind.as_str(),
            o.result.idle_open,
            o.result.throughput(),
            o.wakeups,
            o.events_per_wakeup,
            o.idle_sleeps,
            o.result.batch_p99_us
        );
    }

    let epoll = &outcomes[0];
    let poll = &outcomes[1];
    let ratio = poll.wakeups as f64 / epoll.wakeups.max(1) as f64;
    println!(
        "\nbusy-poll woke {:.1}x more often than {} at ~equal throughput ({:.0} vs {:.0} req/s)",
        ratio,
        epoll.kind.as_str(),
        poll.result.throughput(),
        epoll.result.throughput()
    );
    if epoll_real {
        if ratio >= 10.0 {
            println!("PASS: event-driven front-end wake-ups are >=10x lower (bounded by activity, not connections)");
        } else {
            println!("FAIL: expected >=10x fewer wake-ups with the epoll front-end");
            if args.strict {
                std::process::exit(1);
            }
        }
    }
}
