//! Ablation: the front-end backends (epoll, busy-poll, io_uring) under a
//! connection-scaling workload and a connection-churn storm.
//!
//! **Scaling arm** (ISSUE 3): park a herd of idle connections, drive the
//! same paced request stream over a few active connections, and compare
//! what the front-end *did* to serve it: reactor wake-ups, events per
//! wake-up and idle sleeps (`FrontendStats`), plus client-observed batch
//! p99.  Claim: with 1k+ idle connections at a fixed rate, the
//! event-driven front-ends wake at least 10× less often than busy-poll —
//! wake-ups bounded by activity, not by connection count.
//!
//! **Churn arm** (ISSUE 10): a storm of short-lived connections (each one
//! insert+lookup round-trip, then dropped) alongside a steady pipelined
//! stream.  Every accept, register, re-arm and deregister costs epoll an
//! `epoll_ctl`; io_uring queues the same mutations into the submission
//! ring and flushes them with the `io_uring_enter` it was going to make
//! anyway.  Claim: uring spends fewer syscalls per request than epoll
//! under churn.
//!
//! **Reply-prefetch arm**: A/B of the worker flush path's value-line
//! hints with 1 KiB values — deep pipelines overflow L1 between the
//! completion drain (which copies each value) and the wire flush, so the
//! hints re-warm whatever cooled.  The effect rides on cache pressure and
//! core topology; the arm reports medians over counterbalanced runs with
//! the measured run-to-run spread as the verdict's noise floor.
//!
//! ```text
//! cargo run --release -p cphash-bench --bin ablate_frontend -- \
//!     [--idle 1000] [--requests 50000] [--rate 20000] [--churn 10000] \
//!     [--json BENCH_ablate_frontend.json] [--strict]
//! ```
//!
//! `--strict` exits nonzero if the scaling-arm wake-up ratio falls below
//! 10× while a real epoll backend is available, or if the churn-arm
//! syscalls-per-request for uring fails to beat epoll while both are real
//! (used by CI as a regression gate).  `--json PATH` additionally writes
//! the full result set as a JSON document.

use bytes::BytesMut;
use cphash_kvproto::{encode_insert, encode_lookup, ResponseDecoder};
use cphash_kvserver::reactor::{reactor_available, FrontendKind};
use cphash_kvserver::{CpServer, CpServerConfig};
use cphash_loadgen::{run_connection_scaling, ConnectionScalingOptions, ConnectionScalingResult};
use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    idle: usize,
    requests: u64,
    rate: f64,
    churn: u64,
    strict: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        idle: 1000,
        requests: 50_000,
        rate: 20_000.0,
        churn: 10_000,
        strict: false,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--idle" => args.idle = value("--idle").parse().expect("bad --idle"),
            "--requests" => args.requests = value("--requests").parse().expect("bad --requests"),
            "--rate" => args.rate = value("--rate").parse().expect("bad --rate"),
            "--churn" => args.churn = value("--churn").parse().expect("bad --churn"),
            "--json" => args.json = Some(value("--json")),
            "--strict" => args.strict = true,
            other => panic!(
                "unknown flag {other:?} (--idle N --requests N --rate RPS --churn N --json PATH --strict)"
            ),
        }
    }
    args
}

fn server_config(kind: FrontendKind) -> CpServerConfig {
    CpServerConfig {
        client_threads: 2,
        partitions: 2,
        capacity_bytes: Some(16 * 1024 * 1024),
        typical_value_bytes: 8,
        frontend: kind,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Scaling arm
// ---------------------------------------------------------------------------

struct ScalingOutcome {
    kind: FrontendKind,
    result: ConnectionScalingResult,
    wakeups: u64,
    events_per_wakeup: f64,
    idle_sleeps: u64,
}

fn run_scaling(kind: FrontendKind, args: &Args) -> ScalingOutcome {
    let mut server = CpServer::start(server_config(kind)).expect("starting CPSERVER");
    let result = run_connection_scaling(&ConnectionScalingOptions {
        addr: server.addr(),
        idle_connections: args.idle,
        active_connections: 2,
        requests: args.requests,
        pipeline: 64,
        target_rps: Some(args.rate),
    })
    .expect("scaling run");
    let frontend = &server.metrics().frontend;
    let outcome = ScalingOutcome {
        kind,
        result,
        wakeups: frontend.wakeups(),
        events_per_wakeup: frontend.events_per_wakeup(),
        idle_sleeps: frontend.idle_sleeps(),
    };
    server.shutdown();
    outcome
}

// ---------------------------------------------------------------------------
// Churn arm
// ---------------------------------------------------------------------------

struct ChurnOutcome {
    kind: FrontendKind,
    connections: u64,
    elapsed_secs: f64,
    accepts_per_sec: f64,
    wakeups: u64,
    syscalls: u64,
    requests: u64,
    syscalls_per_request: f64,
    churn_p99_us: u64,
    steady_ops: u64,
}

/// One short-lived connection: connect, insert, lookup back, verify, drop.
fn churn_roundtrip(addr: SocketAddr, key: u64) {
    let mut stream = TcpStream::connect(addr).expect("churn connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut wire = BytesMut::new();
    encode_insert(&mut wire, key, &key.to_le_bytes());
    encode_lookup(&mut wire, key);
    stream.write_all(&wire).expect("churn write");
    let mut decoder = ResponseDecoder::new();
    let mut buf = [0u8; 4096];
    let value = loop {
        if let Some(resp) = decoder.next_response().expect("churn decode") {
            break resp.value;
        }
        let n = stream.read(&mut buf).expect("churn read");
        assert!(n > 0, "server closed a churn connection mid-roundtrip");
        decoder.feed(&buf[..n]);
    };
    assert_eq!(value.as_deref(), Some(&key.to_le_bytes()[..]));
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * pct / 100.0).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run_churn(kind: FrontendKind, conns: u64) -> ChurnOutcome {
    let mut server = CpServer::start(server_config(kind)).expect("starting CPSERVER");
    let addr = server.addr();

    // Steady pipelined lookup stream for the whole storm, so the churn
    // cost is measured *alongside* real traffic, not in a vacuum.
    let stop = Arc::new(AtomicBool::new(false));
    let steady = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> u64 {
            let mut stream = TcpStream::connect(addr).expect("steady connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut decoder = ResponseDecoder::new();
            let mut buf = [0u8; 64 * 1024];
            let mut ops = 0u64;
            let mut key = 0u64;
            const PIPELINE: u64 = 32;
            // relaxed: stop flag; stale reads just run one extra batch
            while !stop.load(Ordering::Relaxed) {
                let mut wire = BytesMut::new();
                for _ in 0..PIPELINE {
                    encode_lookup(&mut wire, key);
                    key = key.wrapping_add(1);
                }
                stream.write_all(&wire).expect("steady write");
                let mut got = 0;
                while got < PIPELINE {
                    if let Some(_resp) = decoder.next_response().expect("steady decode") {
                        got += 1;
                        continue;
                    }
                    let n = stream.read(&mut buf).expect("steady read");
                    assert!(n > 0, "server closed the steady connection");
                    decoder.feed(&buf[..n]);
                }
                ops += PIPELINE;
            }
            ops
        })
    };
    // Let the steady stream settle before snapshotting the counters.
    std::thread::sleep(Duration::from_millis(50));

    let metrics = server.metrics();
    let wakeups_before = metrics.frontend.wakeups();
    let syscalls_before = metrics.frontend.syscalls();
    let requests_before = metrics.requests();
    let accepted_before = metrics.connections();

    let start = Instant::now();
    const STORMERS: u64 = 4;
    let handles: Vec<_> = (0..STORMERS)
        .map(|t| {
            let n = conns / STORMERS
                + if t == STORMERS - 1 {
                    conns % STORMERS
                } else {
                    0
                };
            std::thread::spawn(move || -> Vec<u64> {
                let mut latencies = Vec::with_capacity(n as usize);
                for i in 0..n {
                    let begun = Instant::now();
                    churn_roundtrip(addr, t * 10_000_000 + i);
                    latencies.push(begun.elapsed().as_micros() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("churn thread"))
        .collect();
    let elapsed_secs = start.elapsed().as_secs_f64();

    let wakeups = metrics.frontend.wakeups() - wakeups_before;
    let syscalls = metrics.frontend.syscalls() - syscalls_before;
    let requests = metrics.requests() - requests_before;
    let accepted = metrics.connections() - accepted_before;

    stop.store(true, Ordering::Relaxed); // relaxed: stop flag; join() below is the barrier
    let steady_ops = steady.join().expect("steady thread");
    server.shutdown();

    latencies.sort_unstable();
    ChurnOutcome {
        kind,
        connections: accepted,
        elapsed_secs,
        accepts_per_sec: accepted as f64 / elapsed_secs.max(1e-9),
        wakeups,
        syscalls,
        requests,
        syscalls_per_request: syscalls as f64 / requests.max(1) as f64,
        churn_p99_us: percentile(&latencies, 99.0),
        steady_ops,
    }
}

// ---------------------------------------------------------------------------
// Reply-prefetch arm
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct PrefetchOutcome {
    enabled: bool,
    throughput: f64,
    batch_p99_us: u64,
    batch_mean_us: f64,
}

fn run_prefetch(enabled: bool) -> PrefetchOutcome {
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        capacity_bytes: Some(64 * 1024 * 1024),
        typical_value_bytes: 1024,
        frontend: FrontendKind::Epoll,
        reply_prefetch: enabled,
        ..Default::default()
    })
    .expect("starting CPSERVER");
    let addr = server.addr();

    const KEYS: u64 = 4096;
    const VALUE_BYTES: usize = 1024;
    const PIPELINE: u64 = 64;
    const BATCHES: u64 = 400;

    let mut stream = TcpStream::connect(addr).expect("prefetch connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut decoder = ResponseDecoder::new();
    let mut buf = [0u8; 256 * 1024];
    let value = vec![0xa5u8; VALUE_BYTES];

    // Populate fire-and-forget (v1 inserts carry no response), then barrier
    // with a full warm-up lookup pass: per-connection ordering defers each
    // lookup behind the in-flight write of its key, so once the pass
    // completes every value is resident and the measurement below starts
    // from a steady state.
    let mut wire = BytesMut::new();
    for key in 0..KEYS {
        encode_insert(&mut wire, key, &value);
        if wire.len() >= 256 * 1024 {
            stream.write_all(&wire).expect("populate write");
            wire.clear();
        }
    }
    stream.write_all(&wire).expect("populate write");
    let mut key = 0u64;
    while key < KEYS {
        let mut wire = BytesMut::new();
        let batch = PIPELINE.min(KEYS - key);
        for _ in 0..batch {
            encode_lookup(&mut wire, key);
            key += 1;
        }
        stream.write_all(&wire).expect("warmup write");
        let mut got = 0;
        while got < batch {
            if let Some(resp) = decoder.next_response().expect("warmup decode") {
                assert_eq!(
                    resp.value.as_deref().map(|v| v.len()),
                    Some(VALUE_BYTES),
                    "populated value went missing during warm-up"
                );
                got += 1;
                continue;
            }
            let n = stream.read(&mut buf).expect("warmup read");
            assert!(n > 0);
            decoder.feed(&buf[..n]);
        }
    }

    // Measure pipelined lookups that each carry a 1 KiB value back.
    let mut batch_latencies = Vec::with_capacity(BATCHES as usize);
    let started = Instant::now();
    for b in 0..BATCHES {
        let mut wire = BytesMut::new();
        for i in 0..PIPELINE {
            encode_lookup(&mut wire, (b * 31 + i * 17) % KEYS);
        }
        let begun = Instant::now();
        stream.write_all(&wire).expect("lookup write");
        let mut got = 0;
        while got < PIPELINE {
            if let Some(resp) = decoder.next_response().expect("lookup decode") {
                assert_eq!(resp.value.as_deref().map(|v| v.len()), Some(VALUE_BYTES));
                got += 1;
                continue;
            }
            let n = stream.read(&mut buf).expect("lookup read");
            assert!(n > 0);
            decoder.feed(&buf[..n]);
        }
        batch_latencies.push(begun.elapsed().as_micros() as u64);
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();

    batch_latencies.sort_unstable();
    let mean = batch_latencies.iter().sum::<u64>() as f64 / batch_latencies.len().max(1) as f64;
    PrefetchOutcome {
        enabled,
        throughput: (BATCHES * PIPELINE) as f64 / elapsed.max(1e-9),
        batch_p99_us: percentile(&batch_latencies, 99.0),
        batch_mean_us: mean,
    }
}

/// Median throughput / latency over one variant's runs, plus the relative
/// spread (max−min over median) as an empirical noise floor.
struct PrefetchSummary {
    enabled: bool,
    throughput: f64,
    batch_p99_us: u64,
    batch_mean_us: f64,
    spread: f64,
    runs: usize,
}

fn summarize_prefetch(runs: &[PrefetchOutcome], enabled: bool) -> PrefetchSummary {
    let mut ours: Vec<&PrefetchOutcome> = runs.iter().filter(|o| o.enabled == enabled).collect();
    assert!(!ours.is_empty(), "variant never ran");
    ours.sort_by(|a, b| a.throughput.total_cmp(&b.throughput));
    let median = ours[ours.len() / 2];
    let lo = ours.first().expect("nonempty").throughput;
    let hi = ours.last().expect("nonempty").throughput;
    PrefetchSummary {
        enabled,
        throughput: median.throughput,
        batch_p99_us: median.batch_p99_us,
        batch_mean_us: median.batch_mean_us,
        spread: (hi - lo) / median.throughput.max(1e-9),
        runs: ours.len(),
    }
}

/// Classify the prefetch A/B on median throughput: "win" / "tie" /
/// "regression", with the dead band widened to the *measured* run-to-run
/// spread — on a noisy (e.g. single-hardware-thread CI) host a delta inside
/// the variants' own jitter proves nothing either way.
fn prefetch_note(on: &PrefetchSummary, off: &PrefetchSummary) -> &'static str {
    let delta = on.throughput / off.throughput.max(1e-9) - 1.0;
    let noise = on.spread.max(off.spread).max(0.02);
    if delta >= noise {
        "win"
    } else if delta <= -noise {
        "regression"
    } else {
        "tie"
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn write_json(
    path: &str,
    args: &Args,
    scaling: &[ScalingOutcome],
    churn: &[ChurnOutcome],
    prefetch: &(PrefetchSummary, PrefetchSummary),
    wakeup_ratio: f64,
    uring_real: bool,
) {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"ablate_frontend\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"idle\": {}, \"requests\": {}, \"rate\": {:.0}, \"churn\": {}, \"uring_available\": {}}},\n",
        args.idle, args.requests, args.rate, args.churn, uring_real
    ));

    out.push_str("  \"scaling\": [\n");
    for (i, o) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"frontend\": \"{}\", \"idle_open\": {}, \"throughput_rps\": {:.0}, \"wakeups\": {}, \"events_per_wakeup\": {:.2}, \"idle_sleeps\": {}, \"batch_p99_us\": {}}}{}\n",
            o.kind.as_str(),
            o.result.idle_open,
            o.result.throughput(),
            o.wakeups,
            o.events_per_wakeup,
            o.idle_sleeps,
            o.result.batch_p99_us,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"wakeup_ratio_poll_over_epoll\": {wakeup_ratio:.1},\n"
    ));

    out.push_str("  \"churn\": [\n");
    for (i, o) in churn.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"frontend\": \"{}\", \"connections\": {}, \"elapsed_secs\": {:.3}, \"accepts_per_sec\": {:.0}, \"wakeups\": {}, \"syscalls\": {}, \"requests\": {}, \"syscalls_per_request\": {:.4}, \"churn_p99_us\": {}, \"steady_ops\": {}}}{}\n",
            o.kind.as_str(),
            o.connections,
            o.elapsed_secs,
            o.accepts_per_sec,
            o.wakeups,
            o.syscalls,
            o.requests,
            o.syscalls_per_request,
            o.churn_p99_us,
            o.steady_ops,
            if i + 1 < churn.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    let (on, off) = prefetch;
    out.push_str(&format!(
        "  \"reply_prefetch\": {{\n    \"on\": {{\"throughput_rps\": {:.0}, \"batch_p99_us\": {}, \"batch_mean_us\": {:.1}, \"spread\": {:.3}}},\n    \"off\": {{\"throughput_rps\": {:.0}, \"batch_p99_us\": {}, \"batch_mean_us\": {:.1}, \"spread\": {:.3}}},\n    \"runs_per_variant\": {},\n    \"note\": \"{}\"\n  }}\n}}\n",
        on.throughput,
        on.batch_p99_us,
        on.batch_mean_us,
        on.spread,
        off.throughput,
        off.batch_p99_us,
        off.batch_mean_us,
        off.spread,
        on.runs.min(off.runs),
        prefetch_note(on, off)
    ));

    std::fs::write(path, out).expect("writing JSON report");
    println!("wrote {path}");
}

fn main() {
    let args = parse_args();
    let epoll_real = reactor_available(FrontendKind::Epoll);
    let uring_real = reactor_available(FrontendKind::Uring);
    if !epoll_real {
        println!("note: no epoll on this host; the 'epoll' run degrades to busy-poll");
    }
    if !uring_real {
        println!("note: no io_uring on this host; skipping the uring arms");
    }

    let mut backends = vec![FrontendKind::Epoll, FrontendKind::Poll];
    if uring_real {
        backends.push(FrontendKind::Uring);
    }

    // --- Scaling arm -------------------------------------------------------
    println!(
        "\nconnection-scaling ablation: {} idle connections, {} requests at {:.0} req/s",
        args.idle, args.requests, args.rate
    );
    let scaling: Vec<ScalingOutcome> = backends
        .iter()
        .map(|&kind| run_scaling(kind, &args))
        .collect();

    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "frontend", "idle-open", "throughput", "wakeups", "ev/wakeup", "idle-sleeps", "p99(us)"
    );
    for o in &scaling {
        println!(
            "{:<8} {:>10} {:>12.0} {:>12} {:>12.1} {:>12} {:>10}",
            o.kind.as_str(),
            o.result.idle_open,
            o.result.throughput(),
            o.wakeups,
            o.events_per_wakeup,
            o.idle_sleeps,
            o.result.batch_p99_us
        );
    }

    let epoll = &scaling[0];
    let poll = &scaling[1];
    let wakeup_ratio = poll.wakeups as f64 / epoll.wakeups.max(1) as f64;
    println!(
        "\nbusy-poll woke {:.1}x more often than {} at ~equal throughput ({:.0} vs {:.0} req/s)",
        wakeup_ratio,
        epoll.kind.as_str(),
        poll.result.throughput(),
        epoll.result.throughput()
    );
    let mut failed = false;
    if epoll_real {
        if wakeup_ratio >= 10.0 {
            println!("PASS: event-driven front-end wake-ups are >=10x lower (bounded by activity, not connections)");
        } else {
            println!("FAIL: expected >=10x fewer wake-ups with the epoll front-end");
            failed = true;
        }
    }

    // --- Churn arm ---------------------------------------------------------
    println!(
        "\nconnection-churn storm: {} short-lived connections alongside a steady pipelined stream",
        args.churn
    );
    let churn: Vec<ChurnOutcome> = backends
        .iter()
        .map(|&kind| run_churn(kind, args.churn))
        .collect();

    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "frontend", "conns", "accepts/s", "wakeups", "syscalls", "syscalls/req", "p99(us)"
    );
    for o in &churn {
        println!(
            "{:<8} {:>10} {:>12.0} {:>12} {:>12} {:>14.4} {:>10}",
            o.kind.as_str(),
            o.connections,
            o.accepts_per_sec,
            o.wakeups,
            o.syscalls,
            o.syscalls_per_request,
            o.churn_p99_us
        );
    }
    if epoll_real && uring_real {
        let epoll_churn = churn
            .iter()
            .find(|o| o.kind == FrontendKind::Epoll)
            .expect("epoll churn arm ran");
        let uring_churn = churn
            .iter()
            .find(|o| o.kind == FrontendKind::Uring)
            .expect("uring churn arm ran");
        println!(
            "\nuring spent {:.4} syscalls/request under churn vs epoll's {:.4} ({:.1}x fewer)",
            uring_churn.syscalls_per_request,
            epoll_churn.syscalls_per_request,
            epoll_churn.syscalls_per_request / uring_churn.syscalls_per_request.max(1e-9)
        );
        if uring_churn.syscalls_per_request < epoll_churn.syscalls_per_request {
            println!("PASS: io_uring beats epoll on syscalls-per-request under churn (batched ring mutations)");
        } else {
            println!("FAIL: expected io_uring to beat epoll on syscalls-per-request under churn");
            failed = true;
        }
    }

    // --- Reply-prefetch arm ------------------------------------------------
    // Three runs per variant, counterbalanced (on-off-off-on-on-off) so
    // neither variant systematically eats the process's warm-up costs;
    // medians plus a measured noise floor keep the verdict honest on hosts
    // where separate server runs jitter by more than the effect size.
    println!("\nreply prefetch A/B: 1 KiB values, pipelined lookups (median of 3)");
    let runs: Vec<PrefetchOutcome> = [true, false, false, true, true, false]
        .into_iter()
        .map(run_prefetch)
        .collect();
    let prefetch_on = summarize_prefetch(&runs, true);
    let prefetch_off = summarize_prefetch(&runs, false);
    for o in [&prefetch_on, &prefetch_off] {
        println!(
            "prefetch {:>3}: {:>10.0} req/s   batch mean {:>8.1} us   p99 {:>6} us   (spread {:>4.1}% over {} runs)",
            if o.enabled { "on" } else { "off" },
            o.throughput,
            o.batch_mean_us,
            o.batch_p99_us,
            o.spread * 100.0,
            o.runs
        );
    }
    println!(
        "reply prefetch verdict: {} ({:+.1}% median throughput delta, noise floor {:.1}%)",
        prefetch_note(&prefetch_on, &prefetch_off),
        (prefetch_on.throughput / prefetch_off.throughput.max(1e-9) - 1.0) * 100.0,
        prefetch_on.spread.max(prefetch_off.spread).max(0.02) * 100.0
    );

    if let Some(path) = &args.json {
        write_json(
            path,
            &args,
            &scaling,
            &churn,
            &(prefetch_on, prefetch_off),
            wakeup_ratio,
            uring_real,
        );
    }
    if failed && args.strict {
        std::process::exit(1);
    }
}
