//! Ablation (§3.4, Figure 3): the single-value channel vs the batched
//! ring-buffer channel.  The paper keeps the single-slot design around as
//! the low-rate baseline: "if the client sends requests to the server at a
//! slow rate, a single buffer outperforms the array implementation. However,
//! if the client has a batch of requests that it needs to complete, batching
//! will be an advantage."

use std::time::Instant;

use cphash_bench::HarnessArgs;
use cphash_channel::{duplex, RingConfig, SingleSlotChannel};
use cphash_perfmon::FigureReport;

/// Round-trip `n` request/response pairs through a single-slot channel
/// (strictly one outstanding exchange).
fn single_slot_round_trips(n: u64) -> f64 {
    let channel = SingleSlotChannel::<u64, u64>::new();
    let server = channel.clone();
    let server_thread = std::thread::spawn(move || {
        let mut served = 0u64;
        while served < n {
            if server.try_serve(|x| x + 1) {
                served += 1;
            } else {
                core::hint::spin_loop();
            }
        }
    });
    let start = Instant::now();
    for i in 0..n {
        assert_eq!(channel.call(i), i + 1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    server_thread.join().unwrap();
    n as f64 / elapsed
}

/// Pump `n` messages through a duplex ring pair with `window` outstanding.
fn ring_round_trips(n: u64, window: usize) -> f64 {
    let (mut client, mut server) = duplex::<u64, u64>(RingConfig::with_capacity(4096));
    let server_thread = std::thread::spawn(move || {
        let mut batch = Vec::with_capacity(256);
        let mut served = 0u64;
        while served < n {
            batch.clear();
            if server.recv_batch(&mut batch, 256) == 0 {
                core::hint::spin_loop();
                continue;
            }
            for req in &batch {
                server.send_blocking(req + 1);
            }
            server.flush();
            served += batch.len() as u64;
        }
    });
    let start = Instant::now();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut responses = Vec::with_capacity(256);
    while received < n {
        while sent < n && (sent - received) < window as u64 && client.try_send(sent).is_ok() {
            sent += 1;
        }
        client.flush();
        responses.clear();
        client.recv_batch(&mut responses, 256);
        received += responses.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    server_thread.join().unwrap();
    n as f64 / elapsed
}

fn main() {
    let args = HarnessArgs::from_env();
    let n = args.ops_or(2_000_000);
    let mut report = FigureReport::new(
        "Ablation: messages/second by channel design and pipeline depth",
        "outstanding_messages",
        "messages/second",
    );

    let single = single_slot_round_trips(n.min(500_000));
    println!("single-slot channel (1 outstanding): {single:>12.0} msg/s");
    report.add_series("single-slot").push(1.0, single);

    let ring_series = report.add_series("ring-buffer");
    for window in [1usize, 8, 64, 512, 2048] {
        let rate = ring_round_trips(n, window);
        println!("ring buffer ({window:>4} outstanding):        {rate:>12.0} msg/s");
        ring_series.push(window as f64, rate);
    }

    println!("\n--- CSV ---\n{}", report.to_csv());
    println!("paper: the single buffer wins only at low request rates; with a backlog, batching and packing make the ring buffer the right choice");
}
