//! Figure 14: per-core throughput of CPSERVER, LOCKSERVER and a
//! memcached-style cluster (one single-lock instance per core, client-side
//! key partitioning) as the number of cores grows.

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(300_000);
    let report = figures::memcached_comparison(&scale, ops, args.quick);
    emit_report(&report, &args);
    println!("paper: CPSERVER and LOCKSERVER both clearly out-perform the per-core memcached deployment; LockServer leads at low core counts, CPServer at high");
}
