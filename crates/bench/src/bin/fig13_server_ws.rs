//! Figure 13: CPSERVER vs LOCKSERVER throughput over a range of working-set
//! sizes, driven over loopback TCP with the paper's binary protocol.

use cphash_bench::{emit_report, figures, paper, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(400_000);
    let report = figures::server_working_set_sweep(&scale, ops, args.quick);
    emit_report(&report, &args);
    println!(
        "paper: CPSERVER is ~{:.0}% faster than LOCKSERVER (hash-table work is only ~30% of each request)",
        (paper::FIG13_SERVER_SPEEDUP - 1.0) * 100.0
    );
}
