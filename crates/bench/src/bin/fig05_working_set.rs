//! Figure 5: throughput of CPHash and LockHash over a range of working-set
//! sizes (LRU eviction, 30 % INSERT).
//!
//! Run with `cargo run --release -p cphash-bench --bin fig05_working_set --
//! [--quick] [--ops N] [--threads N] [--csv PATH]`.

use cphash::EvictionPolicy;
use cphash_bench::{emit_report, figures, paper, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(scale.default_ops());
    let report = figures::working_set_sweep(&scale, EvictionPolicy::Lru, ops, args.quick);
    emit_report(&report, &args);

    // Headline comparison at the 1 MB point (the Figure 6/7 configuration).
    if let (Some(cp), Some(lh)) = (
        report
            .series_named("CPHash")
            .and_then(|s| s.y_at(1_048_576.0)),
        report
            .series_named("LockHash")
            .and_then(|s| s.y_at(1_048_576.0)),
    ) {
        println!(
            "1 MB working set: {}",
            paper::verdict_fig5(cp / lh.max(1.0))
        );
    }
}
