//! Figure 9: throughput over a range of total hash-table capacities for a
//! fixed working set (LRU, 30 % INSERT).

use cphash_bench::{emit_report, figures, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(scale.default_ops());
    let report = figures::capacity_sweep(&scale, ops, args.quick);
    emit_report(&report, &args);
    println!("paper: throughput rises as capacity shrinks (more lookups miss / fit in cache); CPHash stays ahead throughout");
}
