//! Ablation (§6.1): CPHash throughput as a function of the outstanding-
//! request window ("batch size"). The paper reports similar throughput for
//! 512–8,192 outstanding requests, degradation below, and queue overflow
//! above.

use cphash_bench::{emit_report, figures, paper, HarnessArgs, MachineScale};

fn main() {
    let args = HarnessArgs::from_env();
    let scale = MachineScale::detect(args.threads);
    println!("{}\n", scale.describe());
    let ops = args.ops_or(1_000_000);
    let report = figures::batching_sweep(&scale, ops, args.quick);
    emit_report(&report, &args);
    println!(
        "paper: batch sizes between {} and {} give similar throughput; smaller batches leave clients waiting on servers",
        paper::BATCH_SWEET_SPOT.0,
        paper::BATCH_SWEET_SPOT.1
    );
}
