//! The `anykey_mixed` scenario — memcached-style byte-string keys with a
//! configurable get/set/delete mix — run through the unified `KvClient`
//! trait against every backend: the in-process table, CPSERVER over TCP
//! (kvproto v2), and the memcached-style baseline cluster behind
//! client-side partitioning.
//!
//! Because all three drive the *same* deterministic operation stream, the
//! observable outcomes (hits, delete-hits, failures) must agree — the
//! binary asserts that — and the interesting output is the throughput
//! spread between the backends.
//!
//! ```text
//! cargo run --release -p cphash-bench --bin anykey_mixed -- \
//!     [--ops 200000] [--keys 20000] [--value-bytes 32] \
//!     [--set-ratio 0.25] [--delete-ratio 0.05] [--window 256]
//! ```

use cphash::{CpHash, CpHashConfig, PartitionedClient, RemoteClient};
use cphash_kvserver::{CpServer, CpServerConfig, MemcacheCluster, MemcacheConfig};
use cphash_loadgen::{run_anykey_mixed, AnyKeyMixOptions, AnyKeyMixResult};

fn parse_args() -> AnyKeyMixOptions {
    let mut opts = AnyKeyMixOptions {
        operations: 200_000,
        distinct_keys: 20_000,
        ..Default::default()
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--ops" => opts.operations = value("--ops").parse().expect("bad --ops"),
            "--keys" => opts.distinct_keys = value("--keys").parse().expect("bad --keys"),
            "--value-bytes" => {
                opts.value_bytes = value("--value-bytes").parse().expect("bad --value-bytes")
            }
            "--set-ratio" => {
                opts.set_ratio = value("--set-ratio").parse().expect("bad --set-ratio")
            }
            "--delete-ratio" => {
                opts.delete_ratio = value("--delete-ratio").parse().expect("bad --delete-ratio")
            }
            "--window" => opts.window = value("--window").parse().expect("bad --window"),
            other => panic!(
                "unknown flag {other:?} (--ops N --keys N --value-bytes N --set-ratio F --delete-ratio F --window N)"
            ),
        }
    }
    opts
}

fn report(name: &str, r: &AnyKeyMixResult) {
    println!(
        "{name:<22} {:>10.0} ops/s   gets={} (hits {:.1}%)  sets={}  deletes={} (hits {})  failures={}",
        r.throughput(),
        r.gets,
        100.0 * r.get_hits as f64 / r.gets.max(1) as f64,
        r.sets,
        r.deletes,
        r.delete_hits,
        r.failures,
    );
}

fn main() {
    let opts = parse_args();
    opts.validate();
    println!(
        "anykey_mixed: {} ops over {} byte-string keys ({}% set / {}% delete), window {}\n",
        opts.operations,
        opts.distinct_keys,
        100.0 * opts.set_ratio,
        100.0 * opts.delete_ratio,
        opts.window
    );

    // --- in-process -----------------------------------------------------
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
    let in_proc = run_anykey_mixed(&mut clients[0], &opts).expect("in-process run");
    report("in-process", &in_proc);
    drop(clients);
    table.shutdown();

    // --- CPSERVER over TCP (kvproto v2) ---------------------------------
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        ..Default::default()
    })
    .expect("start CPSERVER");
    let mut remote = RemoteClient::connect(server.addr()).expect("connect");
    assert_eq!(remote.protocol_version(), 2);
    let cpserver = run_anykey_mixed(&mut remote, &opts).expect("cpserver run");
    report("cpserver (kvproto v2)", &cpserver);
    drop(remote);
    server.shutdown();

    // --- memcached-style baseline ---------------------------------------
    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 2,
        ..Default::default()
    })
    .expect("start cluster");
    let mut partitioned = PartitionedClient::connect(&cluster.addrs()).expect("connect cluster");
    let memcache = run_anykey_mixed(&mut partitioned, &opts).expect("memcache run");
    report("memcache baseline", &memcache);
    drop(partitioned);
    cluster.shutdown();

    assert_eq!(
        in_proc.observation(),
        cpserver.observation(),
        "backends disagree on observable results"
    );
    assert_eq!(
        in_proc.observation(),
        memcache.observation(),
        "backends disagree on observable results"
    );
    println!("\nall three backends agree on every observable outcome ✓");
}
