//! Command-line arguments shared by every figure binary.

use std::path::PathBuf;

/// Parsed harness arguments.
///
/// Supported flags (every binary accepts the same set):
///
/// * `--quick` — shrink sweeps and operation counts for a fast smoke run.
/// * `--ops N` — override the number of operations per measured point.
/// * `--threads N` — override the number of client threads / pairs.
/// * `--csv PATH` — also write the figure's CSV to `PATH`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Fast smoke-run mode.
    pub quick: bool,
    /// Operation-count override.
    pub ops: Option<u64>,
    /// Client-thread / pair override.
    pub threads: Option<usize>,
    /// Optional CSV output path.
    pub csv_path: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut parsed = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--ops" => {
                    let v = iter.next().ok_or("--ops needs a value")?;
                    parsed.ops = Some(v.parse().map_err(|_| format!("bad --ops value: {v}"))?);
                }
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    parsed.threads =
                        Some(v.parse().map_err(|_| format!("bad --threads value: {v}"))?);
                }
                "--csv" => {
                    let v = iter.next().ok_or("--csv needs a path")?;
                    parsed.csv_path = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick] [--ops N] [--threads N] [--csv PATH]".to_string())
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(parsed)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The operation count to use for one measured point, given a default
    /// and the quick-mode divisor.
    pub fn ops_or(&self, default_ops: u64) -> u64 {
        if let Some(ops) = self.ops {
            return ops;
        }
        if self.quick {
            (default_ops / 10).max(10_000)
        } else {
            default_ops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]).unwrap();
        assert!(!a.quick);
        assert_eq!(a.ops_or(1000), 1000);
        let a = parse(&[
            "--quick",
            "--ops",
            "500",
            "--threads",
            "4",
            "--csv",
            "/tmp/x.csv",
        ])
        .unwrap();
        assert!(a.quick);
        assert_eq!(a.ops, Some(500));
        assert_eq!(a.ops_or(1_000_000), 500);
        assert_eq!(a.threads, Some(4));
        assert_eq!(
            a.csv_path.as_deref(),
            Some(std::path::Path::new("/tmp/x.csv"))
        );
    }

    #[test]
    fn quick_divides_default_ops() {
        let a = parse(&["--quick"]).unwrap();
        assert_eq!(a.ops_or(1_000_000), 100_000);
        assert_eq!(a.ops_or(20_000), 10_000, "never below the floor");
    }

    #[test]
    fn bad_arguments_are_reported() {
        assert!(parse(&["--ops"]).is_err());
        assert!(parse(&["--ops", "abc"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
