//! The per-worker readiness reactor behind every server front-end.
//!
//! The paper's client threads "monitor TCP connections assigned to [them]
//! and gather as many requests as possible" (§4.1).  The original
//! reproduction implemented that monitoring as a round-robin busy-poll over
//! non-blocking sockets, so worker CPU burned in proportion to *connections
//! held* rather than *requests served*.  This module keeps the
//! thread-per-core worker structure but makes the monitoring event-driven:
//!
//! * [`EpollReactor`] (Linux) sleeps in `epoll_wait` when a worker is idle
//!   and hands back exactly the connections with pending bytes (or writable
//!   sockets the worker is back-logged on).  Idle connections cost nothing.
//! * [`PollReactor`] is the portable fallback: it reports every registered
//!   connection as "maybe ready" on each call — the legacy busy-poll
//!   behaviour behind the same [`EventBackend`] trait, so non-Linux builds
//!   and the `--frontend poll` baseline share the worker loops unchanged.
//!
//! Cross-thread wake-ups (the acceptor handing a worker a new connection)
//! travel through a [`Waker`]: an `eventfd` registered on the worker's
//! epoll set, so a sleeping worker adopts new connections immediately
//! instead of on a poll tick.
//!
//! Every [`Reactor`] records [`crate::metrics::FrontendStats`]: wake-ups,
//! events per wake-up and idle sleeps, which is how the connection-scaling
//! benchmark (`ablate_frontend`) quantifies the win.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::FrontendStats;

/// Raw file descriptor type used by the reactor API.  On non-Unix hosts the
/// poll backend never dereferences descriptors, so a plain integer keeps the
/// trait portable.
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Raw file descriptor type used by the reactor API (non-Unix stand-in).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Token reserved for the worker's [`Waker`] registration.
pub const WAKER_TOKEN: usize = usize::MAX;

/// Token reserved for a worker-owned listening socket (the sharded
/// `SO_REUSEPORT` accept path, and the memcache instances' listeners).
pub const LISTENER_TOKEN: usize = usize::MAX - 1;

/// The raw descriptor of a socket-like object, for reactor registration.
/// On non-Unix hosts (where only the poll backend runs and descriptors are
/// never dereferenced) this is a `-1` stand-in.
#[cfg(unix)]
pub fn raw_fd_of<T: std::os::unix::io::AsRawFd>(io: &T) -> RawFd {
    io.as_raw_fd()
}
/// The raw descriptor of a socket-like object (non-Unix stand-in).
#[cfg(not(unix))]
pub fn raw_fd_of<T>(_io: &T) -> RawFd {
    -1
}

/// Which front-end drives a server's worker loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendKind {
    /// Readiness-based: sleep in `epoll_wait`, wake per event (Linux).
    /// On hosts without epoll this silently degrades to [`FrontendKind::Poll`].
    #[default]
    Epoll,
    /// Legacy busy-poll: scan every connection each loop iteration.
    Poll,
    /// io_uring completion rings (Linux 5.11+): batched interest-list
    /// mutations, multishot poll/accept, zero-syscall drains (see
    /// [`crate::uring::IoUringReactor`]).  Falls back to epoll — logging
    /// once — on kernels without io_uring.
    Uring,
}

impl FrontendKind {
    /// Parse a `--frontend` flag value.
    pub fn parse(s: &str) -> Result<FrontendKind, String> {
        match s {
            "epoll" => Ok(FrontendKind::Epoll),
            "poll" => Ok(FrontendKind::Poll),
            "uring" | "io_uring" => Ok(FrontendKind::Uring),
            other => Err(format!(
                "unknown frontend {other:?} (expected epoll|poll|uring)"
            )),
        }
    }

    /// The flag spelling of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            FrontendKind::Epoll => "epoll",
            FrontendKind::Poll => "poll",
            FrontendKind::Uring => "uring",
        }
    }

    /// Default for this process: `CPHASH_FRONTEND` if set, otherwise epoll
    /// (which itself falls back to poll off-Linux).
    ///
    /// An *invalid* `CPHASH_FRONTEND` value panics rather than silently
    /// picking a default: the variable exists so CI matrices and operators
    /// can force a specific front-end, and a typo that quietly ran epoll
    /// would make an epoll-vs-poll comparison measure epoll twice.
    pub fn from_env() -> FrontendKind {
        match std::env::var("CPHASH_FRONTEND") {
            Ok(v) => FrontendKind::parse(v.trim().to_ascii_lowercase().as_str())
                .unwrap_or_else(|e| panic!("CPHASH_FRONTEND: {e}")),
            Err(_) => FrontendKind::default(),
        }
    }
}

impl core::fmt::Display for FrontendKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Is a *real* readiness backend (not the busy-poll fallback) available for
/// `kind` on this host?
pub fn reactor_available(kind: FrontendKind) -> bool {
    match kind {
        FrontendKind::Poll => true,
        FrontendKind::Epoll => {
            #[cfg(target_os = "linux")]
            {
                // SAFETY: epoll_create1 takes no pointers; the fd is checked before use.
                let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
                if fd >= 0 {
                    // SAFETY: the probe fd was just created above and is owned here.
                    unsafe { libc::close(fd) };
                    return true;
                }
                false
            }
            #[cfg(not(target_os = "linux"))]
            {
                false
            }
        }
        FrontendKind::Uring => {
            #[cfg(target_os = "linux")]
            {
                // A full constructor probe (syscall + required feature
                // bits), plus the CPHASH_URING_DISABLE test hook.
                !crate::uring::uring_disabled() && crate::uring::IoUringReactor::new().is_ok()
            }
            #[cfg(not(target_os = "linux"))]
            {
                false
            }
        }
    }
}

/// The readiness interface both backends implement.
///
/// Tokens are caller-chosen `usize` identifiers (connection slab slots, plus
/// [`WAKER_TOKEN`]); `wait` reports ready tokens, not descriptors.
pub trait EventBackend {
    /// Start watching `fd` under `token`.  `writable` additionally requests
    /// write-readiness (for connections with back-logged output).
    fn register(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()>;
    /// Change the interest set of an already registered descriptor.
    fn rearm(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()>;
    /// Stop watching `fd`.
    fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()>;
    /// Append ready tokens to `ready` and return how many were added.
    /// `timeout` of `None` polls without blocking; `Some(d)` may sleep up to
    /// `d` waiting for the first event.
    fn wait(&mut self, ready: &mut Vec<usize>, timeout: Option<Duration>) -> io::Result<usize>;

    /// Start watching a *listening* socket under `token`.  Backends with
    /// in-kernel accept (io_uring multishot) arm it here; everyone else
    /// treats the listener as an ordinary readable descriptor and the
    /// caller accepts via `accept(2)` when the token reports ready.
    fn register_listener(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        self.register(fd, token, false)
    }

    /// Collect connections the backend accepted in-kernel for `token`.
    /// Returns `true` when this backend owns accepting for the token (the
    /// caller must **not** call `accept(2)`, even if `out` came back
    /// empty); `false` means the caller accepts the ordinary way.
    fn take_accepted(&mut self, _token: usize, _out: &mut Vec<RawFd>) -> bool {
        false
    }

    /// Drain the backend's syscall counter: how many syscalls it issued
    /// since the last drain.  The busy-poll backend never syscalls (0).
    fn take_syscalls(&mut self) -> u64 {
        0
    }
}

/// Linux readiness backend: one `epoll` instance per worker.
#[cfg(target_os = "linux")]
pub struct EpollReactor {
    epfd: RawFd,
    buf: Vec<libc::epoll_event>,
    /// Syscalls issued since the last [`EventBackend::take_syscalls`] drain.
    syscalls: u64,
}

#[cfg(target_os = "linux")]
impl EpollReactor {
    /// Create the epoll instance.
    pub fn new() -> io::Result<EpollReactor> {
        // SAFETY: epoll_create1 takes no pointers; the fd is checked before use.
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollReactor {
            epfd,
            buf: vec![libc::epoll_event { events: 0, u64: 0 }; 256],
            syscalls: 1,
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: libc::EPOLLIN | if writable { libc::EPOLLOUT } else { 0 },
            u64: token as u64,
        };
        self.syscalls += 1;
        // SAFETY: epfd is a live epoll fd and `ev` outlives the call.
        let rc = unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl EventBackend for EpollReactor {
    fn register(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, writable)
    }

    fn rearm(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, writable)
    }

    fn deregister(&mut self, fd: RawFd, _token: usize) -> io::Result<()> {
        self.syscalls += 1;
        let rc =
            // SAFETY: EPOLL_CTL_DEL ignores the event argument; NULL is accepted.
            unsafe { libc::epoll_ctl(self.epfd, libc::EPOLL_CTL_DEL, fd, core::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, ready: &mut Vec<usize>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => 0,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = loop {
            self.syscalls += 1;
            // SAFETY: `buf` is live for the call and the length matches its capacity.
            let rc = unsafe {
                libc::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &self.buf[..n] {
            // Copy out of the (packed) kernel record before using it.
            let token = ev.u64;
            ready.push(token as usize);
        }
        Ok(n)
    }

    fn take_syscalls(&mut self) -> u64 {
        core::mem::take(&mut self.syscalls)
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollReactor {
    fn drop(&mut self) {
        // SAFETY: epfd is owned by this reactor and Drop runs once.
        unsafe { libc::close(self.epfd) };
    }
}

/// Portable busy-poll backend: every registered token is reported as ready
/// on each call, reproducing the legacy scan-all-connections loop (including
/// its idle back-off) behind the [`EventBackend`] trait.
#[derive(Default)]
pub struct PollReactor {
    /// `(fd, token)` registrations in insertion order.
    registered: Vec<(RawFd, usize)>,
    /// Consecutive blocking waits, for the legacy 256-iteration back-off.
    idle_streak: u32,
}

impl PollReactor {
    /// Create an empty poll backend.
    pub fn new() -> PollReactor {
        PollReactor::default()
    }
}

impl EventBackend for PollReactor {
    fn register(&mut self, fd: RawFd, token: usize, _writable: bool) -> io::Result<()> {
        self.registered.push((fd, token));
        Ok(())
    }

    fn rearm(&mut self, _fd: RawFd, _token: usize, _writable: bool) -> io::Result<()> {
        // Busy-poll always retries reads and writes; interest sets are moot.
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        self.registered.retain(|&(f, t)| !(f == fd && t == token));
        Ok(())
    }

    fn wait(&mut self, ready: &mut Vec<usize>, timeout: Option<Duration>) -> io::Result<usize> {
        match timeout {
            None => self.idle_streak = 0,
            Some(d) => {
                // The caller is idle: reproduce the legacy back-off (spin a
                // while, then nap briefly) so an idle worker does not peg a
                // core, while staying far more eager than a real sleep.
                self.idle_streak = self.idle_streak.saturating_add(1);
                if self.idle_streak > 256 {
                    std::thread::sleep(d.min(Duration::from_micros(50)));
                }
            }
        }
        for &(_, token) in &self.registered {
            ready.push(token);
        }
        Ok(self.registered.len())
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollReactor),
    #[cfg(target_os = "linux")]
    Uring(crate::uring::IoUringReactor),
    Poll(PollReactor),
}

/// A worker's reactor: the chosen backend plus shared front-end statistics.
///
/// Requesting [`FrontendKind::Uring`] on a kernel without io_uring logs
/// once and degrades to epoll; requesting [`FrontendKind::Epoll`] on a
/// host without epoll support transparently degrades to the poll backend.
/// [`Reactor::kind`] reports what actually runs.
pub struct Reactor {
    backend: Backend,
    stats: Arc<FrontendStats>,
}

impl Reactor {
    /// Build a reactor of the requested kind, falling back (uring → epoll
    /// → busy-poll) when the host cannot provide the requested mechanism.
    pub fn new(kind: FrontendKind, stats: Arc<FrontendStats>) -> Reactor {
        let backend = Self::build_backend(kind);
        let mut reactor = Reactor { backend, stats };
        // Fold setup-time syscalls into the stats from the start.
        reactor.drain_syscalls();
        reactor
    }

    #[cfg(target_os = "linux")]
    fn build_backend(kind: FrontendKind) -> Backend {
        match kind {
            FrontendKind::Uring => match if crate::uring::uring_disabled() {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "disabled by CPHASH_URING_DISABLE",
                ))
            } else {
                crate::uring::IoUringReactor::new()
            } {
                Ok(u) => Backend::Uring(u),
                Err(e) => {
                    // One log line per process, not one per worker: every
                    // worker of every server hits this on an old kernel.
                    static FALLBACK_LOGGED: std::sync::Once = std::sync::Once::new();
                    FALLBACK_LOGGED.call_once(|| {
                        eprintln!(
                            "cphash: io_uring front-end unavailable ({e}); falling back to epoll"
                        );
                    });
                    Self::build_backend(FrontendKind::Epoll)
                }
            },
            FrontendKind::Epoll => match EpollReactor::new() {
                Ok(e) => Backend::Epoll(e),
                Err(_) => Backend::Poll(PollReactor::new()),
            },
            FrontendKind::Poll => Backend::Poll(PollReactor::new()),
        }
    }

    #[cfg(not(target_os = "linux"))]
    fn build_backend(_kind: FrontendKind) -> Backend {
        Backend::Poll(PollReactor::new())
    }

    /// The kind actually running (after any fallback).
    pub fn kind(&self) -> FrontendKind {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => FrontendKind::Epoll,
            #[cfg(target_os = "linux")]
            Backend::Uring(_) => FrontendKind::Uring,
            Backend::Poll(_) => FrontendKind::Poll,
        }
    }

    fn backend_mut(&mut self) -> &mut dyn EventBackend {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e,
            #[cfg(target_os = "linux")]
            Backend::Uring(u) => u,
            Backend::Poll(p) => p,
        }
    }

    /// Move the backend's syscall delta into the shared stats.
    fn drain_syscalls(&mut self) {
        let n = self.backend_mut().take_syscalls();
        if n > 0 {
            self.stats.note_syscalls(n);
        }
    }

    /// Start watching `fd` under `token` (read interest; `writable` adds
    /// write interest).
    pub fn register(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        let r = self.backend_mut().register(fd, token, writable);
        self.drain_syscalls();
        r
    }

    /// Start watching a listening socket under `token` (see
    /// [`EventBackend::register_listener`]).
    pub fn register_listener(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        let r = self.backend_mut().register_listener(fd, token);
        self.drain_syscalls();
        r
    }

    /// Collect in-kernel-accepted connections for `token` (see
    /// [`EventBackend::take_accepted`]).
    pub fn take_accepted(&mut self, token: usize, out: &mut Vec<RawFd>) -> bool {
        self.backend_mut().take_accepted(token, out)
    }

    /// Change the interest set of a registered descriptor.
    pub fn rearm(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        let r = self.backend_mut().rearm(fd, token, writable);
        self.drain_syscalls();
        r
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        let r = self.backend_mut().deregister(fd, token);
        self.drain_syscalls();
        r
    }

    /// Wait for readiness, appending ready tokens to `ready` and updating
    /// the front-end statistics (a wake-up is a wait that delivered events;
    /// an idle sleep is a blocking wait that timed out empty).
    pub fn wait(&mut self, ready: &mut Vec<usize>, timeout: Option<Duration>) -> io::Result<usize> {
        let blocking = timeout.is_some();
        let n = self.backend_mut().wait(ready, timeout)?;
        self.drain_syscalls();
        if n > 0 {
            self.stats.note_wakeup(n as u64);
        } else if blocking {
            self.stats.note_idle_sleep();
        }
        Ok(n)
    }
}

/// A cross-thread wake-up handle for one worker's reactor.
///
/// With the epoll backend this wraps an `eventfd` the worker registers under
/// [`WAKER_TOKEN`]; `wake` makes a sleeping `epoll_wait` return immediately.
/// With the poll backend (which never sleeps for long) it is a no-op.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

struct WakerInner {
    fd: RawFd,
}

impl Waker {
    /// Create a waker for a worker running the given front-end.
    pub fn new(kind: FrontendKind) -> Waker {
        let fd = match kind {
            #[cfg(target_os = "linux")]
            // SAFETY: eventfd takes no pointers; -1 on failure is kept as "no fd".
            FrontendKind::Epoll | FrontendKind::Uring => unsafe {
                libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK)
            },
            _ => -1,
        };
        Waker {
            inner: Arc::new(WakerInner { fd }),
        }
    }

    /// The descriptor the worker should register under [`WAKER_TOKEN`], if
    /// this waker is backed by one.
    pub fn fd(&self) -> Option<RawFd> {
        (self.inner.fd >= 0).then_some(self.inner.fd)
    }

    /// Wake the owning worker (best-effort; a full eventfd counter already
    /// means a wake-up is pending).
    pub fn wake(&self) {
        #[cfg(target_os = "linux")]
        if self.inner.fd >= 0 {
            let one: u64 = 1;
            // SAFETY: fd was checked >= 0; the buffer is a live 8-byte u64.
            unsafe { libc::write(self.inner.fd, (&one as *const u64).cast(), 8) };
        }
    }

    /// Consume pending wake-ups so the (level-triggered) readiness clears.
    pub fn drain(&self) {
        #[cfg(target_os = "linux")]
        if self.inner.fd >= 0 {
            let mut counter: u64 = 0;
            // SAFETY: fd was checked >= 0; the buffer is a live mutable 8-byte u64.
            unsafe { libc::read(self.inner.fd, (&mut counter as *mut u64).cast(), 8) };
        }
    }
}

impl Drop for WakerInner {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if self.fd >= 0 {
            // SAFETY: fd is owned by this waker, checked >= 0, and Drop runs once.
            unsafe { libc::close(self.fd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn stats() -> Arc<FrontendStats> {
        Arc::new(FrontendStats::default())
    }

    #[test]
    fn frontend_kind_parses_and_displays() {
        assert_eq!(FrontendKind::parse("epoll").unwrap(), FrontendKind::Epoll);
        assert_eq!(FrontendKind::parse("poll").unwrap(), FrontendKind::Poll);
        assert_eq!(FrontendKind::parse("uring").unwrap(), FrontendKind::Uring);
        assert_eq!(
            FrontendKind::parse("io_uring").unwrap(),
            FrontendKind::Uring
        );
        assert!(FrontendKind::parse("kqueue").is_err());
        assert_eq!(FrontendKind::Epoll.to_string(), "epoll");
        assert_eq!(FrontendKind::Poll.to_string(), "poll");
        assert_eq!(FrontendKind::Uring.to_string(), "uring");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn uring_request_falls_back_to_epoll_when_disabled() {
        // The disable hook makes ring setup fail exactly like a kernel
        // without io_uring; the reactor must come up on epoll.
        if std::env::var_os("CPHASH_URING_DISABLE").is_some() {
            return; // leave a suite-wide override alone
        }
        std::env::set_var("CPHASH_URING_DISABLE", "1");
        assert!(!reactor_available(FrontendKind::Uring));
        let r = Reactor::new(FrontendKind::Uring, stats());
        assert_eq!(r.kind(), FrontendKind::Epoll);
        std::env::remove_var("CPHASH_URING_DISABLE");
    }

    #[test]
    fn poll_backend_reports_every_registration() {
        let mut r = Reactor::new(FrontendKind::Poll, stats());
        assert_eq!(r.kind(), FrontendKind::Poll);
        r.register(10, 0, false).unwrap();
        r.register(11, 1, false).unwrap();
        let mut ready = Vec::new();
        assert_eq!(r.wait(&mut ready, None).unwrap(), 2);
        assert_eq!(ready, vec![0, 1]);
        r.deregister(10, 0).unwrap();
        ready.clear();
        assert_eq!(r.wait(&mut ready, None).unwrap(), 1);
        assert_eq!(ready, vec![1]);
    }

    #[test]
    fn waker_is_inert_for_the_poll_backend() {
        let w = Waker::new(FrontendKind::Poll);
        assert!(w.fd().is_none());
        w.wake(); // must not panic
        w.drain();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reactor_sees_socket_data_and_waker() {
        assert!(reactor_available(FrontendKind::Epoll));
        let s = stats();
        let mut r = Reactor::new(FrontendKind::Epoll, Arc::clone(&s));
        assert_eq!(r.kind(), FrontendKind::Epoll);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let fd = {
            use std::os::unix::io::AsRawFd;
            server_side.as_raw_fd()
        };
        r.register(fd, 7, false).unwrap();

        let waker = Waker::new(FrontendKind::Epoll);
        r.register(waker.fd().unwrap(), WAKER_TOKEN, false).unwrap();

        // Nothing ready: a zero-timeout wait yields no tokens, and a short
        // blocking wait counts as an idle sleep.
        let mut ready = Vec::new();
        assert_eq!(r.wait(&mut ready, None).unwrap(), 0);
        assert_eq!(
            r.wait(&mut ready, Some(Duration::from_millis(1))).unwrap(),
            0
        );
        assert!(s.idle_sleeps.load(core::sync::atomic::Ordering::Relaxed) >= 1);

        // Socket data wakes the reactor with the right token.
        client.write_all(b"ping").unwrap();
        ready.clear();
        let n = r.wait(&mut ready, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ready, vec![7]);
        assert!(s.wakeups.load(core::sync::atomic::Ordering::Relaxed) >= 1);

        // The waker wakes it too, and draining clears the readiness.
        waker.wake();
        ready.clear();
        r.wait(&mut ready, Some(Duration::from_secs(2))).unwrap();
        assert!(ready.contains(&WAKER_TOKEN));
        waker.drain();
        ready.clear();
        // Socket data was never consumed, so token 7 stays level-ready, but
        // the waker token must be gone.
        r.wait(&mut ready, None).unwrap();
        assert!(!ready.contains(&WAKER_TOKEN));

        r.deregister(fd, 7).unwrap();
        ready.clear();
        r.wait(&mut ready, None).unwrap();
        assert!(!ready.contains(&7));
    }

    #[test]
    fn degraded_epoll_request_still_works() {
        // Off Linux this exercises the fallback; on Linux it simply builds
        // the real thing. Either way the API holds.
        let mut r = Reactor::new(FrontendKind::Epoll, stats());
        let mut ready = Vec::new();
        assert_eq!(r.wait(&mut ready, None).unwrap(), 0);
    }
}
