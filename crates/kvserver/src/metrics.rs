//! Shared request metrics for the key/value servers.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cphash_perfmon::{BatchStats, SharedLatencyWindow};
use parking_lot::Mutex;

/// Front-end reactor counters: how often workers wake and how much each
/// wake-up accomplishes.
///
/// The interesting property is what bounds `wakeups`: with the epoll
/// front-end it is bounded by *activity* (batches of bytes arriving), with
/// the busy-poll front-end by *loop iterations* — which is why the
/// connection-scaling benchmark compares exactly this counter at equal
/// throughput.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// `wait` calls that delivered at least one readiness event.
    pub wakeups: AtomicU64,
    /// Total readiness events delivered.
    pub events: AtomicU64,
    /// Blocking `wait` calls that timed out with nothing to do.
    pub idle_sleeps: AtomicU64,
}

impl FrontendStats {
    /// Wake-ups observed so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Readiness events observed so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Idle sleeps observed so far.
    pub fn idle_sleeps(&self) -> u64 {
        self.idle_sleeps.load(Ordering::Relaxed)
    }

    /// Mean events delivered per wake-up (0 when there were none).
    pub fn events_per_wakeup(&self) -> f64 {
        let wakeups = self.wakeups();
        if wakeups == 0 {
            0.0
        } else {
            self.events() as f64 / wakeups as f64
        }
    }

    /// Record a wait that delivered `events` readiness events.
    pub fn note_wakeup(&self, events: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(events, Ordering::Relaxed);
    }

    /// Record a blocking wait that timed out empty.
    pub fn note_idle_sleep(&self) {
        self.idle_sleeps.fetch_add(1, Ordering::Relaxed);
    }
}

/// Request counters, updated by worker threads and read by benchmarks.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Total requests decoded from TCP connections.
    pub requests: AtomicU64,
    /// LOOKUP requests.
    pub lookups: AtomicU64,
    /// LOOKUPs that found a value.
    pub hits: AtomicU64,
    /// INSERT requests.
    pub inserts: AtomicU64,
    /// DELETE requests (kvproto v2).
    pub deletes: AtomicU64,
    /// Bytes read from sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Admin commands (resize) received.
    pub admin_commands: AtomicU64,
    /// Wire-level `Retry` replies emitted to shed overload onto v2
    /// clients' transparent-resubmission path.
    pub retries_emitted: AtomicU64,
    /// Reactor counters, shared by every worker's front-end.
    pub frontend: Arc<FrontendStats>,
    /// Windowed request latency (enqueue → in-order reply), the signal
    /// source for the migration pacer's latency-feedback mode.
    pub latency: Arc<SharedLatencyWindow>,
    /// The table's per-server batch-pipeline counters, attached at server
    /// start so callers can read hot-loop batching/prefetch statistics
    /// through the same metrics handle as everything else.
    batch_sources: Mutex<Vec<Arc<cphash::ServerStats>>>,
}

impl ServerMetrics {
    /// New zeroed metrics block.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Lookup hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            0.0
        } else {
            self.hits.load(Ordering::Relaxed) as f64 / lookups as f64
        }
    }

    pub(crate) fn note_lookup(&self, hit: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_insert(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_delete(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_io(&self, read: usize, written: usize) {
        if read > 0 {
            self.bytes_in.fetch_add(read as u64, Ordering::Relaxed);
        }
        if written > 0 {
            self.bytes_out.fetch_add(written as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_admin(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.admin_commands.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_retry_emitted(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.retries_emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Wire-level `Retry` replies emitted so far.
    pub fn retries_emitted(&self) -> u64 {
        self.retries_emitted.load(Ordering::Relaxed)
    }

    /// Attach the hash-table servers whose batch-pipeline counters
    /// [`ServerMetrics::batch_stats`] should aggregate.
    pub(crate) fn attach_batch_sources(&self, sources: &[Arc<cphash::ServerStats>]) {
        self.batch_sources.lock().extend(sources.iter().cloned());
    }

    /// Merged batch-pipeline statistics (staged rounds, occupancy,
    /// prefetches) across the table's server threads.
    pub fn batch_stats(&self) -> BatchStats {
        let mut total = BatchStats::default();
        for source in self.batch_sources.lock().iter() {
            total.merge(&source.batch_stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let m = ServerMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.note_lookup(true);
        m.note_lookup(false);
        m.note_insert();
        m.note_io(100, 50);
        m.note_connection();
        assert_eq!(m.requests(), 3);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.bytes_in.load(Ordering::Relaxed), 100);
        assert_eq!(m.bytes_out.load(Ordering::Relaxed), 50);
        assert_eq!(m.connections.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn frontend_stats_ratios() {
        let f = FrontendStats::default();
        assert_eq!(f.events_per_wakeup(), 0.0);
        f.note_wakeup(4);
        f.note_wakeup(2);
        f.note_idle_sleep();
        assert_eq!(f.wakeups(), 2);
        assert_eq!(f.events(), 6);
        assert_eq!(f.idle_sleeps(), 1);
        assert!((f.events_per_wakeup() - 3.0).abs() < 1e-12);
    }
}
