//! Shared request metrics for the key/value servers.
//!
//! All three servers (CPSERVER, LOCKSERVER, the memcache cluster) report
//! through one [`ServerMetrics`] block, which registers every counter on a
//! [`MetricsRegistry`] at construction.  The registry is what the `Stats`
//! admin op and the `--stats-addr` HTTP endpoint render; the unified
//! [`StatsSnapshot`] is the typed view the in-process benchmarks read.
//! Sources that already keep their own lock-free counters (`FrontendStats`,
//! the table's `ServerStats`, the latency window, the trace rings) are
//! registered as sampled collectors, so scraping them costs the hot path
//! nothing.

use cphash_sync::atomic::plain::{AtomicU64, Ordering};
use std::sync::Arc;

use cphash_perfmon::trace;
use cphash_perfmon::{BatchStats, Counter, MetricsRegistry, MetricsSnapshot, SharedLatencyWindow};
use parking_lot::Mutex;

/// Front-end reactor counters: how often workers wake and how much each
/// wake-up accomplishes.
///
/// The interesting property is what bounds `wakeups`: with the epoll
/// front-end it is bounded by *activity* (batches of bytes arriving), with
/// the busy-poll front-end by *loop iterations* — which is why the
/// connection-scaling benchmark compares exactly this counter at equal
/// throughput.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// `wait` calls that delivered at least one readiness event.
    pub wakeups: AtomicU64,
    /// Total readiness events delivered.
    pub events: AtomicU64,
    /// Blocking `wait` calls that timed out with nothing to do.
    pub idle_sleeps: AtomicU64,
    /// Syscalls the backend issued (mutations + waits).  The io_uring
    /// backend batches interest-list mutations into its waits, so this is
    /// the counter the churn-storm ablation compares across front-ends.
    pub syscalls: AtomicU64,
}

impl FrontendStats {
    /// Wake-ups observed so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Readiness events observed so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Idle sleeps observed so far.
    pub fn idle_sleeps(&self) -> u64 {
        self.idle_sleeps.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Mean events delivered per wake-up (0 when there were none).
    pub fn events_per_wakeup(&self) -> f64 {
        let wakeups = self.wakeups();
        if wakeups == 0 {
            0.0
        } else {
            self.events() as f64 / wakeups as f64
        }
    }

    /// Record a wait that delivered `events` readiness events.
    pub fn note_wakeup(&self, events: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        self.events.fetch_add(events, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
    }

    /// Record a blocking wait that timed out empty.
    pub fn note_idle_sleep(&self) {
        self.idle_sleeps.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
    }

    /// Syscalls issued by the reactor backend so far.
    pub fn syscalls(&self) -> u64 {
        self.syscalls.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Record `n` syscalls issued by the reactor backend.
    pub fn note_syscalls(&self, n: u64) {
        self.syscalls.fetch_add(n, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
    }
}

/// Live re-partitioning progress, updated by the admin worker after each
/// repartition (and by the pacer while one runs).
#[derive(Debug, Default)]
pub struct MigrationProgress {
    /// Repartition commands completed.
    pub repartitions: AtomicU64,
    /// Migration chunks handed off across all repartitions.
    pub chunks_moved: AtomicU64,
    /// Keys moved inside those chunks.
    pub keys_moved: AtomicU64,
    /// Times the pacer made the migration loop wait for the table to
    /// recover.
    pub paced_waits: AtomicU64,
    /// Most recent pacer rate in chunks/second (`f64` bits; 0 = unpaced or
    /// idle).
    rate_bits: AtomicU64,
}

impl MigrationProgress {
    /// Record one completed repartition.
    pub fn note_repartition(&self, chunks: u64, keys: u64, paced_waits: u64) {
        self.repartitions.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        self.chunks_moved.fetch_add(chunks, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        self.keys_moved.fetch_add(keys, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        self.paced_waits.fetch_add(paced_waits, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
    }

    /// Publish the pacer's current chunks/second rate.
    pub fn set_pacer_rate(&self, chunks_per_sec: f64) {
        self.rate_bits
            .store(chunks_per_sec.to_bits(), Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
    }

    /// The most recently published pacer rate in chunks/second.
    pub fn pacer_rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed)) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Chunks handed off so far.
    pub fn chunks_moved(&self) -> u64 {
        self.chunks_moved.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Keys moved so far.
    pub fn keys_moved(&self) -> u64 {
        self.keys_moved.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Pacer-imposed waits so far.
    pub fn paced_waits(&self) -> u64 {
        self.paced_waits.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }
}

/// The unified typed stats snapshot every server exposes — one struct for
/// CPSERVER, LOCKSERVER and the memcache cluster, so tooling never has to
/// know which server it is scraping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Total requests decoded from TCP connections.
    pub requests: u64,
    /// LOOKUP requests.
    pub lookups: u64,
    /// LOOKUPs that found a value.
    pub hits: u64,
    /// INSERT requests.
    pub inserts: u64,
    /// DELETE requests (kvproto v2).
    pub deletes: u64,
    /// Bytes read from sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Admin commands (resize) received.
    pub admin_commands: u64,
    /// Wire-level `Retry` replies emitted.
    pub retries_emitted: u64,
    /// Reactor waits that delivered events.
    pub frontend_wakeups: u64,
    /// Readiness events delivered.
    pub frontend_events: u64,
    /// Reactor waits that timed out empty.
    pub frontend_idle_sleeps: u64,
    /// Syscalls issued by the reactor backends (mutations + waits).
    pub frontend_syscalls: u64,
    /// Merged batch-pipeline counters across the table's server threads.
    pub batch: BatchStats,
    /// Summed inbound queue-depth sample across server threads.
    pub queue_depth: u64,
    /// Migration chunks handed off.
    pub migration_chunks: u64,
    /// Keys moved during live re-partitioning.
    pub migration_keys: u64,
    /// Pacer-imposed waits during migration.
    pub migration_paced_waits: u64,
    /// Most recent pacer rate in chunks/second.
    pub migration_pacer_rate: f64,
    /// Probes resolved from a bucket line's tagged inline slots (zero under
    /// the chained layout).
    pub bucket_inline_hits: u64,
    /// Elements walked on bucket overflow chains past the inline slots.
    pub bucket_overflow_probes: u64,
    /// Inline tag matches whose full key comparison then failed.
    pub bucket_tag_false_positives: u64,
}

/// Request counters, updated by worker threads and read by benchmarks.
///
/// Counters live on the [`MetricsRegistry`] (per-thread sharded atomics);
/// the raw shared sources (`frontend`, `latency`, the table's batch
/// counters, migration progress) are registered as sampled collectors.
pub struct ServerMetrics {
    registry: MetricsRegistry,
    requests: Counter,
    lookups: Counter,
    hits: Counter,
    inserts: Counter,
    deletes: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    connections: Counter,
    admin_commands: Counter,
    retries_emitted: Counter,
    /// Reactor counters, shared by every worker's front-end.
    pub frontend: Arc<FrontendStats>,
    /// Windowed request latency (enqueue → in-order reply), the signal
    /// source for the migration pacer's latency-feedback mode.  Stats
    /// scrapes read it with `peek` so they never steal the pacer's samples.
    pub latency: Arc<SharedLatencyWindow>,
    /// Live re-partitioning progress.
    pub migration: Arc<MigrationProgress>,
    /// The table's per-server batch-pipeline counters, attached at server
    /// start so callers can read hot-loop batching/prefetch statistics
    /// through the same metrics handle as everything else.
    batch_sources: Arc<Mutex<Vec<Arc<cphash::ServerStats>>>>,
    /// Samplers for the table's merged partition statistics (bucket-layout
    /// counters), attached at server start.
    partition_sources: Arc<Mutex<Vec<PartitionStatsFn>>>,
}

/// A non-destructive sampler of a table's merged partition statistics.
type PartitionStatsFn = Box<dyn Fn() -> cphash::PartitionStats + Send + Sync>;

/// Merge every attached table's partition statistics.
fn merged_partitions(sources: &Mutex<Vec<PartitionStatsFn>>) -> cphash::PartitionStats {
    let mut total = cphash::PartitionStats::default();
    for source in sources.lock().iter() {
        total.merge(&source());
    }
    total
}

/// Merge every attached server's batch counters.
fn merged_batch(sources: &Mutex<Vec<Arc<cphash::ServerStats>>>) -> BatchStats {
    let mut total = BatchStats::default();
    for source in sources.lock().iter() {
        total.merge(&source.batch_stats());
    }
    total
}

/// Sum every attached server's live queue-depth sample.
fn summed_queue_depth(sources: &Mutex<Vec<Arc<cphash::ServerStats>>>) -> u64 {
    sources.lock().iter().map(|s| s.queue_depth()).sum()
}

impl ServerMetrics {
    /// New zeroed metrics block with every metric registered.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let frontend = Arc::new(FrontendStats::default());
        let latency = Arc::new(SharedLatencyWindow::new());
        let migration = Arc::new(MigrationProgress::default());
        let batch_sources: Arc<Mutex<Vec<Arc<cphash::ServerStats>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let partition_sources: Arc<Mutex<Vec<PartitionStatsFn>>> = Arc::new(Mutex::new(Vec::new()));

        let requests = registry.counter(
            "cphash_requests_total",
            "Requests decoded from TCP connections",
        );
        let lookups = registry.counter("cphash_lookups_total", "LOOKUP requests");
        let hits = registry.counter("cphash_lookup_hits_total", "LOOKUPs that found a value");
        let inserts = registry.counter("cphash_inserts_total", "INSERT requests");
        let deletes = registry.counter("cphash_deletes_total", "DELETE requests (kvproto v2)");
        let bytes_in = registry.counter("cphash_bytes_in_total", "Bytes read from sockets");
        let bytes_out = registry.counter("cphash_bytes_out_total", "Bytes written to sockets");
        let connections = registry.counter("cphash_connections_total", "Connections accepted");
        let admin_commands =
            registry.counter("cphash_admin_commands_total", "Admin (resize) commands");
        let retries_emitted = registry.counter(
            "cphash_retries_emitted_total",
            "Wire-level Retry replies emitted to shed overload",
        );

        let f = Arc::clone(&frontend);
        registry.counter_fn(
            "cphash_frontend_wakeups_total",
            "Reactor waits that delivered at least one readiness event",
            &[],
            move || f.wakeups(),
        );
        let f = Arc::clone(&frontend);
        registry.counter_fn(
            "cphash_frontend_events_total",
            "Readiness events delivered by the reactor",
            &[],
            move || f.events(),
        );
        let f = Arc::clone(&frontend);
        registry.counter_fn(
            "cphash_frontend_idle_sleeps_total",
            "Reactor waits that timed out with nothing to do",
            &[],
            move || f.idle_sleeps(),
        );
        let f = Arc::clone(&frontend);
        registry.counter_fn(
            "cphash_frontend_syscalls_total",
            "Syscalls issued by the reactor backends (mutations + waits)",
            &[],
            move || f.syscalls(),
        );

        let s = Arc::clone(&batch_sources);
        registry.counter_fn(
            "cphash_batch_rounds_total",
            "Batched execution rounds in the server hot loop",
            &[],
            move || merged_batch(&s).batches,
        );
        let s = Arc::clone(&batch_sources);
        registry.counter_fn(
            "cphash_batch_ops_total",
            "Operations executed inside batched rounds",
            &[],
            move || merged_batch(&s).ops,
        );
        let s = Arc::clone(&batch_sources);
        registry.counter_fn(
            "cphash_batch_prefetches_total",
            "Software prefetches issued during staging passes",
            &[],
            move || merged_batch(&s).prefetches,
        );
        let s = Arc::clone(&batch_sources);
        registry.gauge_fn(
            "cphash_batch_occupancy",
            "Mean operations per batched round",
            &[],
            move || merged_batch(&s).avg_occupancy(),
        );
        let s = Arc::clone(&batch_sources);
        registry.gauge_fn(
            "cphash_queue_depth",
            "Request words drained in the most recent loop iteration, summed over server threads",
            &[],
            move || summed_queue_depth(&s) as f64,
        );

        let p = Arc::clone(&partition_sources);
        registry.counter_fn(
            "cphash_bucket_inline_hits_total",
            "Probes resolved from a bucket line's tagged inline slots (inline layout)",
            &[],
            move || merged_partitions(&p).inline_hits,
        );
        let p = Arc::clone(&partition_sources);
        registry.counter_fn(
            "cphash_bucket_overflow_probes_total",
            "Elements walked on bucket overflow chains past the inline slots",
            &[],
            move || merged_partitions(&p).overflow_probes,
        );
        let p = Arc::clone(&partition_sources);
        registry.counter_fn(
            "cphash_bucket_tag_false_positives_total",
            "Inline tag matches whose full key comparison then failed",
            &[],
            move || merged_partitions(&p).tag_false_positives,
        );

        let m = Arc::clone(&migration);
        registry.counter_fn(
            "cphash_migration_chunks_total",
            "Migration chunks handed off during live re-partitioning",
            &[],
            move || m.chunks_moved(),
        );
        let m = Arc::clone(&migration);
        registry.counter_fn(
            "cphash_migration_keys_total",
            "Keys moved during live re-partitioning",
            &[],
            move || m.keys_moved(),
        );
        let m = Arc::clone(&migration);
        registry.counter_fn(
            "cphash_migration_paced_waits_total",
            "Pacer-imposed waits during live re-partitioning",
            &[],
            move || m.paced_waits(),
        );
        let m = Arc::clone(&migration);
        registry.gauge_fn(
            "cphash_migration_pacer_rate",
            "Most recent migration pacer rate in chunks per second",
            &[],
            move || m.pacer_rate(),
        );

        let l = Arc::clone(&latency);
        registry.histogram_fn(
            "cphash_request_latency_ns",
            "Request latency window (enqueue to in-order reply), nanoseconds",
            &[],
            move || l.peek(),
        );

        // One family, one sample per hot-path stage; registered
        // consecutively so the renderer emits a single HELP/TYPE header.
        for stage in trace::ALL_STAGES {
            registry.histogram_fn(
                "cphash_stage_cycles",
                "Cycle-stamped hot-path stage latency (requires tracing enabled)",
                &[("stage", stage.name())],
                move || trace::stage_histogram(stage),
            );
        }

        ServerMetrics {
            registry,
            requests,
            lookups,
            hits,
            inserts,
            deletes,
            bytes_in,
            bytes_out,
            connections,
            admin_commands,
            retries_emitted,
            frontend,
            latency,
            migration,
            batch_sources,
            partition_sources,
        }
    }

    /// The registry behind this block — the source for typed
    /// [`MetricsSnapshot`]s and Prometheus rendering.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A typed, non-destructive snapshot of every registered metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Render every registered metric in Prometheus text exposition format
    /// — the payload of both the `Stats` wire op and the HTTP endpoint.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The unified typed snapshot shared by all three servers.
    pub fn snapshot(&self) -> StatsSnapshot {
        let partitions = self.partition_stats();
        StatsSnapshot {
            requests: self.requests.value(),
            lookups: self.lookups.value(),
            hits: self.hits.value(),
            inserts: self.inserts.value(),
            deletes: self.deletes.value(),
            bytes_in: self.bytes_in.value(),
            bytes_out: self.bytes_out.value(),
            connections: self.connections.value(),
            admin_commands: self.admin_commands.value(),
            retries_emitted: self.retries_emitted.value(),
            frontend_wakeups: self.frontend.wakeups(),
            frontend_events: self.frontend.events(),
            frontend_idle_sleeps: self.frontend.idle_sleeps(),
            frontend_syscalls: self.frontend.syscalls(),
            batch: self.batch_stats(),
            queue_depth: summed_queue_depth(&self.batch_sources),
            migration_chunks: self.migration.chunks_moved(),
            migration_keys: self.migration.keys_moved(),
            migration_paced_waits: self.migration.paced_waits(),
            migration_pacer_rate: self.migration.pacer_rate(),
            bucket_inline_hits: partitions.inline_hits,
            bucket_overflow_probes: partitions.overflow_probes,
            bucket_tag_false_positives: partitions.tag_false_positives,
        }
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.requests.value()
    }

    /// LOOKUP requests observed.
    pub fn lookups(&self) -> u64 {
        self.lookups.value()
    }

    /// INSERT requests observed.
    pub fn inserts(&self) -> u64 {
        self.inserts.value()
    }

    /// DELETE requests observed.
    pub fn deletes(&self) -> u64 {
        self.deletes.value()
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.value()
    }

    /// Bytes read from sockets so far.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.value()
    }

    /// Bytes written to sockets so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.value()
    }

    /// Lookup hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups.value();
        if lookups == 0 {
            0.0
        } else {
            self.hits.value() as f64 / lookups as f64
        }
    }

    pub(crate) fn note_lookup(&self, hit: bool) {
        self.requests.inc();
        self.lookups.inc();
        if hit {
            self.hits.inc();
        }
    }

    pub(crate) fn note_insert(&self) {
        self.requests.inc();
        self.inserts.inc();
    }

    pub(crate) fn note_delete(&self) {
        self.requests.inc();
        self.deletes.inc();
    }

    pub(crate) fn note_stats(&self) {
        self.requests.inc();
        self.admin_commands.inc();
    }

    pub(crate) fn note_io(&self, read: usize, written: usize) {
        if read > 0 {
            self.bytes_in.add(read as u64);
        }
        if written > 0 {
            self.bytes_out.add(written as u64);
        }
    }

    pub(crate) fn note_connection(&self) {
        self.connections.inc();
    }

    pub(crate) fn note_admin(&self) {
        self.requests.inc();
        self.admin_commands.inc();
    }

    pub(crate) fn note_retry_emitted(&self) {
        self.requests.inc();
        self.retries_emitted.inc();
    }

    /// Wire-level `Retry` replies emitted so far.
    pub fn retries_emitted(&self) -> u64 {
        self.retries_emitted.value()
    }

    /// Attach the hash-table servers whose batch-pipeline counters
    /// [`ServerMetrics::batch_stats`] should aggregate.
    pub(crate) fn attach_batch_sources(&self, sources: &[Arc<cphash::ServerStats>]) {
        self.batch_sources.lock().extend(sources.iter().cloned());
    }

    /// Merged batch-pipeline statistics (staged rounds, occupancy,
    /// prefetches) across the table's server threads.
    pub fn batch_stats(&self) -> BatchStats {
        merged_batch(&self.batch_sources)
    }

    /// Attach a sampler of a table's merged partition statistics, the
    /// source behind the `cphash_bucket_*` counter families.
    pub(crate) fn attach_partition_source(
        &self,
        source: impl Fn() -> cphash::PartitionStats + Send + Sync + 'static,
    ) {
        self.partition_sources.lock().push(Box::new(source));
    }

    /// Merged partition statistics (bucket-layout counters) across every
    /// attached table.
    pub fn partition_stats(&self) -> cphash::PartitionStats {
        merged_partitions(&self.partition_sources)
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl core::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The sampler closures are opaque; summarize through the snapshot.
        f.debug_struct("ServerMetrics")
            .field("snapshot", &self.snapshot())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_perfmon::MetricValue;

    #[test]
    fn counters_and_hit_rate() {
        let m = ServerMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.note_lookup(true);
        m.note_lookup(false);
        m.note_insert();
        m.note_io(100, 50);
        m.note_connection();
        assert_eq!(m.requests(), 3);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.bytes_in(), 100);
        assert_eq!(m.bytes_out(), 50);
        assert_eq!(m.connections(), 1);
    }

    #[test]
    fn frontend_stats_ratios() {
        let f = FrontendStats::default();
        assert_eq!(f.events_per_wakeup(), 0.0);
        f.note_wakeup(4);
        f.note_wakeup(2);
        f.note_idle_sleep();
        assert_eq!(f.wakeups(), 2);
        assert_eq!(f.events(), 6);
        assert_eq!(f.idle_sleeps(), 1);
        assert!((f.events_per_wakeup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn migration_progress_accumulates() {
        let p = MigrationProgress::default();
        p.note_repartition(4, 400, 2);
        p.note_repartition(1, 50, 0);
        p.set_pacer_rate(12.5);
        assert_eq!(p.chunks_moved(), 5);
        assert_eq!(p.keys_moved(), 450);
        assert_eq!(p.paced_waits(), 2);
        assert_eq!(p.pacer_rate(), 12.5);
        assert_eq!(p.repartitions.load(Ordering::Relaxed), 2);
    }

    /// The parity contract behind the unified stats surface: every field of
    /// [`StatsSnapshot`] must be readable, with the same value, from the
    /// registry snapshot that the wire/HTTP surfaces render.
    #[test]
    fn snapshot_and_registry_agree_on_every_field() {
        let m = ServerMetrics::new();
        m.note_lookup(true);
        m.note_lookup(false);
        m.note_insert();
        m.note_delete();
        m.note_admin();
        m.note_retry_emitted();
        m.note_io(321, 123);
        m.note_connection();
        m.frontend.note_wakeup(3);
        m.frontend.note_idle_sleep();
        m.frontend.note_syscalls(9);
        m.migration.note_repartition(7, 700, 1);
        m.migration.set_pacer_rate(3.25);
        m.attach_partition_source(|| cphash::PartitionStats {
            inline_hits: 41,
            overflow_probes: 5,
            tag_false_positives: 2,
            ..Default::default()
        });

        let unified = m.snapshot();
        let registry = m.metrics_snapshot();
        let counter = |name: &str| match registry.get(name).expect(name).value {
            MetricValue::Counter(v) => v,
            ref other => panic!("{name} is not a counter: {other:?}"),
        };
        let gauge = |name: &str| match registry.get(name).expect(name).value {
            MetricValue::Gauge(v) => v,
            ref other => panic!("{name} is not a gauge: {other:?}"),
        };

        assert_eq!(unified.requests, counter("cphash_requests_total"));
        assert_eq!(unified.lookups, counter("cphash_lookups_total"));
        assert_eq!(unified.hits, counter("cphash_lookup_hits_total"));
        assert_eq!(unified.inserts, counter("cphash_inserts_total"));
        assert_eq!(unified.deletes, counter("cphash_deletes_total"));
        assert_eq!(unified.bytes_in, counter("cphash_bytes_in_total"));
        assert_eq!(unified.bytes_out, counter("cphash_bytes_out_total"));
        assert_eq!(unified.connections, counter("cphash_connections_total"));
        assert_eq!(
            unified.admin_commands,
            counter("cphash_admin_commands_total")
        );
        assert_eq!(
            unified.retries_emitted,
            counter("cphash_retries_emitted_total")
        );
        assert_eq!(
            unified.frontend_wakeups,
            counter("cphash_frontend_wakeups_total")
        );
        assert_eq!(
            unified.frontend_events,
            counter("cphash_frontend_events_total")
        );
        assert_eq!(
            unified.frontend_idle_sleeps,
            counter("cphash_frontend_idle_sleeps_total")
        );
        assert_eq!(
            unified.frontend_syscalls,
            counter("cphash_frontend_syscalls_total")
        );
        assert_eq!(unified.frontend_syscalls, 9);
        assert_eq!(unified.batch.batches, counter("cphash_batch_rounds_total"));
        assert_eq!(unified.batch.ops, counter("cphash_batch_ops_total"));
        assert_eq!(
            unified.batch.prefetches,
            counter("cphash_batch_prefetches_total")
        );
        assert_eq!(unified.queue_depth as f64, gauge("cphash_queue_depth"));
        assert_eq!(
            unified.migration_chunks,
            counter("cphash_migration_chunks_total")
        );
        assert_eq!(
            unified.migration_keys,
            counter("cphash_migration_keys_total")
        );
        assert_eq!(
            unified.migration_paced_waits,
            counter("cphash_migration_paced_waits_total")
        );
        assert_eq!(
            unified.migration_pacer_rate,
            gauge("cphash_migration_pacer_rate")
        );
        assert_eq!(
            unified.bucket_inline_hits,
            counter("cphash_bucket_inline_hits_total")
        );
        assert_eq!(unified.bucket_inline_hits, 41);
        assert_eq!(
            unified.bucket_overflow_probes,
            counter("cphash_bucket_overflow_probes_total")
        );
        assert_eq!(
            unified.bucket_tag_false_positives,
            counter("cphash_bucket_tag_false_positives_total")
        );

        // The rendered text carries the same families and round-trips
        // through the scrape-side parser.
        let text = m.render_prometheus();
        let parsed = cphash_perfmon::parse_prometheus_text(&text).expect("rendered text parses");
        assert!(parsed.iter().any(|s| s.name == "cphash_requests_total"));
        assert!(parsed
            .iter()
            .any(|s| s.name == "cphash_request_latency_ns_count"));
        for stage in trace::ALL_STAGES {
            assert!(
                text.contains(&format!("stage=\"{}\"", stage.name())),
                "missing stage {}",
                stage.name()
            );
        }
    }
}
