//! Shared request metrics for the key/value servers.

use core::sync::atomic::{AtomicU64, Ordering};

/// Request counters, updated by worker threads and read by benchmarks.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Total requests decoded from TCP connections.
    pub requests: AtomicU64,
    /// LOOKUP requests.
    pub lookups: AtomicU64,
    /// LOOKUPs that found a value.
    pub hits: AtomicU64,
    /// INSERT requests.
    pub inserts: AtomicU64,
    /// Bytes read from sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Admin commands (resize) received.
    pub admin_commands: AtomicU64,
}

impl ServerMetrics {
    /// New zeroed metrics block.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Lookup hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            0.0
        } else {
            self.hits.load(Ordering::Relaxed) as f64 / lookups as f64
        }
    }

    pub(crate) fn note_lookup(&self, hit: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_insert(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_io(&self, read: usize, written: usize) {
        if read > 0 {
            self.bytes_in.fetch_add(read as u64, Ordering::Relaxed);
        }
        if written > 0 {
            self.bytes_out.fetch_add(written as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_admin(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.admin_commands.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let m = ServerMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.note_lookup(true);
        m.note_lookup(false);
        m.note_insert();
        m.note_io(100, 50);
        m.note_connection();
        assert_eq!(m.requests(), 3);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.bytes_in.load(Ordering::Relaxed), 100);
        assert_eq!(m.bytes_out.load(Ordering::Relaxed), 50);
        assert_eq!(m.connections.load(Ordering::Relaxed), 1);
    }
}
