//! LOCKSERVER: the LockHash-backed key/value cache server (paper §4.2).

use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cphash_kvproto::{envelope, ErrCode, OpKind, Reply, Status};
use cphash_lockhash::{EvictionPolicy, LockHash, LockHashConfig, LockKind};

use crate::acceptor::{
    drain_accepts, shard_listeners, spawn_acceptor, worker_channels, AcceptPath, WorkerInbox,
};
use crate::connection::Connection;
use crate::metrics::ServerMetrics;
use crate::reactor::{raw_fd_of, FrontendKind, Reactor, LISTENER_TOKEN, WAKER_TOKEN};

/// Configuration for [`LockServer`].
#[derive(Debug, Clone)]
pub struct LockServerConfig {
    /// Address to bind ("127.0.0.1:0" picks a free port).
    pub bind: SocketAddr,
    /// Worker threads processing TCP connections (the paper uses one per
    /// hardware thread).
    pub worker_threads: usize,
    /// LockHash partitions (4,096 in the paper).
    pub partitions: usize,
    /// Total hash-table byte budget.
    pub capacity_bytes: Option<usize>,
    /// Typical value size, used to size the bucket arrays.
    pub typical_value_bytes: usize,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Lock algorithm.
    pub lock_kind: LockKind,
    /// Front-end driving the worker loops (readiness-based or busy-poll).
    pub frontend: FrontendKind,
    /// Accept path: per-worker `SO_REUSEPORT` listeners (the default) or
    /// the single least-loaded acceptor thread (also the fallback where
    /// reuseport sharding is unavailable).
    pub accept: AcceptPath,
}

impl Default for LockServerConfig {
    fn default() -> Self {
        LockServerConfig {
            bind: "127.0.0.1:0".parse().expect("literal address"),
            worker_threads: 2,
            partitions: 256,
            capacity_bytes: None,
            typical_value_bytes: 64,
            eviction: EvictionPolicy::Lru,
            lock_kind: LockKind::Spin,
            frontend: FrontendKind::from_env(),
            accept: AcceptPath::from_env(),
        }
    }
}

/// A running LOCKSERVER.
pub struct LockServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    table: Arc<LockHash>,
    metrics: Arc<ServerMetrics>,
}

impl LockServer {
    /// Start the server.
    pub fn start(config: LockServerConfig) -> std::io::Result<LockServer> {
        let mut table_config = LockHashConfig::new(config.partitions)
            .with_eviction(config.eviction)
            .with_lock_kind(config.lock_kind);
        if let Some(capacity) = config.capacity_bytes {
            table_config = table_config.with_capacity(capacity, config.typical_value_bytes.max(1));
        }
        let table = Arc::new(LockHash::new(table_config));

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        {
            let table = Arc::clone(&table);
            metrics.attach_partition_source(move || table.stats());
        }
        let (slots, inboxes) = worker_channels(config.worker_threads, config.frontend);
        // Accept path: sharded SO_REUSEPORT listeners by default, the
        // single least-loaded acceptor thread on request or as fallback
        // (see cpserver).
        let sharded = match config.accept {
            AcceptPath::Sharded => shard_listeners(config.bind, config.worker_threads).ok(),
            AcceptPath::Single => None,
        };
        let mut threads = Vec::new();
        let (addr, listeners) = match sharded {
            Some((addr, listeners)) => {
                drop(slots); // workers accept directly; the hand-off lanes stay unused
                (addr, listeners.into_iter().map(Some).collect::<Vec<_>>())
            }
            None => {
                let listener = TcpListener::bind(config.bind)?;
                let (addr, acceptor) = spawn_acceptor(listener, slots, Arc::clone(&stop))?;
                threads.push(acceptor);
                (addr, (0..config.worker_threads).map(|_| None).collect())
            }
        };
        for (index, (inbox, listener)) in inboxes.into_iter().zip(listeners).enumerate() {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let table = Arc::clone(&table);
            let frontend = config.frontend;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("lockserver-worker-{index}"))
                    .spawn(move || lock_worker(table, inbox, listener, stop, metrics, frontend))
                    .expect("spawning a worker thread"),
            );
        }

        Ok(LockServer {
            addr,
            stop,
            threads,
            table,
            metrics,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Aggregate hash-table statistics.
    pub fn table_stats(&self) -> cphash_lockhash::PartitionStats {
        self.table.stats()
    }

    /// Stop every thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LockServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One LOCKSERVER worker thread: waits for readiness on its connections and
/// executes their requests directly against the lock-based table ("first
/// acquiring the lock for the appropriate partition, then performing the
/// query, updating the LRU list and, finally, releasing the lock", §4.2).
///
/// Responses are synchronous, so the worker can always sleep in the reactor
/// between events; back-logged output is watched via write interest.
fn lock_worker(
    table: Arc<LockHash>,
    inbox: WorkerInbox,
    listener: Option<TcpListener>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    frontend: FrontendKind,
) {
    let mut reactor = Reactor::new(frontend, Arc::clone(&metrics.frontend));
    if let Some(fd) = inbox.waker.fd() {
        let _ = reactor.register(fd, WAKER_TOKEN, false);
    }
    // Sharded accept path: this worker owns one of the SO_REUSEPORT
    // listeners (see cpserver).
    if let Some(l) = listener.as_ref() {
        let _ = reactor.register_listener(raw_fd_of(l), LISTENER_TOKEN);
    }
    let mut accepted: Vec<std::net::TcpStream> = Vec::new();
    let mut connections: Vec<Option<Connection>> = Vec::new();
    let mut requests = Vec::with_capacity(256);
    let mut value_buf = Vec::with_capacity(256);
    let mut ready: Vec<usize> = Vec::with_capacity(256);
    // Whether the previous iteration served anything: while it did, poll
    // the reactor without blocking so the busy-poll backend's idle back-off
    // resets under load (the legacy loop's `did_work` behaviour).
    let mut did_work = false;

    // relaxed: stop flag; shutdown needs no ordering
    while !stop.load(Ordering::Relaxed) {
        ready.clear();
        let timeout = (!did_work).then(|| Duration::from_millis(25));
        let _ = reactor.wait(&mut ready, timeout);
        did_work = false;

        // Drain the waker *before* polling the channel so a hand-off racing
        // this iteration cannot have its wake-up consumed (see cpserver).
        if ready.contains(&WAKER_TOKEN) {
            inbox.waker.drain();
        }
        while let Ok(stream) = inbox.receiver.try_recv() {
            let adopted = Connection::new(stream).is_ok_and(|conn| {
                crate::connection::adopt(&mut connections, &mut reactor, &mut ready, conn, |c| c)
            });
            if adopted {
                metrics.note_connection();
                did_work = true;
            } else {
                inbox.active.fetch_sub(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
            }
        }

        // Sharded accept path: adopt connections straight off this
        // worker's own listener; adoption pushes the new tokens into
        // `ready` so buffered bytes are served this same iteration.
        if let Some(l) = listener.as_ref() {
            if ready.contains(&LISTENER_TOKEN) {
                drain_accepts(l, &mut reactor, LISTENER_TOKEN, &mut accepted);
                for stream in accepted.drain(..) {
                    // Keep the active gauge balanced with the retire path.
                    inbox.active.fetch_add(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                    let adopted = Connection::new(stream).is_ok_and(|conn| {
                        crate::connection::adopt(
                            &mut connections,
                            &mut reactor,
                            &mut ready,
                            conn,
                            |c| c,
                        )
                    });
                    if adopted {
                        metrics.note_connection();
                        did_work = true;
                    } else {
                        inbox.active.fetch_sub(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                    }
                }
            }
        }

        for &idx in ready.iter() {
            if idx == WAKER_TOKEN || idx == LISTENER_TOKEN {
                continue; // drained above, before the inbox poll
            }
            let Some(conn) = connections.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            requests.clear();
            let read = conn.poll_requests(&mut requests);
            metrics.note_io(read, 0);
            did_work |= !requests.is_empty();
            for request in requests.drain(..) {
                let wants_response = request.wants_response;
                let cphash_kvproto::OpFrame { kind, key, value } = request.frame;
                match kind {
                    OpKind::Lookup => {
                        let hit = table.lookup(key.hash(), &mut value_buf);
                        // Byte keys store §8.2 envelopes: verify the stored
                        // key and read collisions as misses.  Hit values
                        // encode straight from the lookup buffer.
                        let verified = if hit {
                            envelope::verify_stored(&key, &value_buf)
                        } else {
                            None
                        };
                        metrics.note_lookup(verified.is_some());
                        match verified {
                            Some(v) => {
                                conn.queue_reply_parts(Status::Ok, ErrCode::None, v);
                            }
                            None => conn.queue_reply(&Reply::miss()),
                        }
                    }
                    OpKind::Insert => {
                        let (hash, stored) = envelope::stored_form(&key, &value);
                        // The envelope may push a near-limit value past
                        // MAX_VALUE_BYTES; storing it would later produce
                        // replies no client decoder accepts.
                        let ok = stored.len() <= cphash_kvproto::MAX_VALUE_BYTES
                            && table.insert(hash, &stored);
                        metrics.note_insert();
                        if wants_response {
                            conn.queue_reply(&if ok {
                                Reply::ok()
                            } else {
                                Reply::err(ErrCode::Capacity, b"ERR table out of capacity".to_vec())
                            });
                        }
                    }
                    OpKind::Delete => {
                        let found = table.delete(key.hash());
                        metrics.note_delete();
                        if wants_response {
                            conn.queue_reply(&if found { Reply::ok() } else { Reply::miss() });
                        }
                    }
                    OpKind::Resize => {
                        // LOCKSERVER's partition count is fixed; report the
                        // unsupported admin command instead of hanging the
                        // client's ordered response stream.
                        conn.queue_reply(&Reply::err(
                            ErrCode::Unsupported,
                            b"ERR resize unsupported on LOCKSERVER".to_vec(),
                        ));
                    }
                    OpKind::Stats => {
                        // v2-only admin op: the reply value is the full
                        // metrics snapshot in Prometheus text format.
                        metrics.note_stats();
                        let text = metrics.render_prometheus();
                        conn.queue_reply_parts(Status::Ok, ErrCode::None, text.as_bytes());
                    }
                }
            }
            let (written, verdict) = crate::connection::settle(conn, &mut reactor, idx);
            metrics.note_io(0, written);
            if verdict == crate::connection::Settle::Retired {
                connections[idx] = None;
                inbox.active.fetch_sub(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{encode_insert, encode_lookup, ResponseDecoder};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn lookup(stream: &mut TcpStream, decoder: &mut ResponseDecoder, key: u64) -> Option<Vec<u8>> {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, key);
        stream.write_all(&wire).unwrap();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(resp) = decoder.next_response().unwrap() {
                return resp.value;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0);
            decoder.feed(&buf[..n]);
        }
    }

    #[test]
    fn serves_the_same_protocol_as_cpserver() {
        let mut server = LockServer::start(LockServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        assert_eq!(lookup(&mut stream, &mut decoder, 7), None);
        let mut wire = BytesMut::new();
        encode_insert(&mut wire, 7, b"locked value");
        stream.write_all(&wire).unwrap();
        assert_eq!(
            lookup(&mut stream, &mut decoder, 7).as_deref(),
            Some(&b"locked value"[..])
        );
        assert!(server.table_stats().inserts >= 1);
        assert!(server.metrics().requests() >= 3);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_with_disjoint_keys() {
        let mut server = LockServer::start(LockServerConfig {
            worker_threads: 2,
            partitions: 64,
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut decoder = ResponseDecoder::new();
                    for i in 0..100u64 {
                        let key = t * 500 + i;
                        let mut wire = BytesMut::new();
                        encode_insert(&mut wire, key, &key.to_le_bytes());
                        stream.write_all(&wire).unwrap();
                    }
                    for i in 0..100u64 {
                        let key = t * 500 + i;
                        assert_eq!(
                            lookup(&mut stream, &mut decoder, key).as_deref(),
                            Some(&key.to_le_bytes()[..])
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(server.metrics().hit_rate() > 0.99);
        server.shutdown();
    }
}
