//! Connection acceptance: sharded `SO_REUSEPORT` listeners or a single
//! least-connections acceptor thread.
//!
//! "The CPSERVER also has an additional thread that accepts new connections.
//! When a connection is made, it is assigned to a client thread with the
//! smallest number of current active connections." (§4.1)
//!
//! That single acceptor serializes every accept: under a connection-churn
//! storm one thread (and one listen queue) throttles the whole server.  The
//! default accept path is therefore **sharded** ([`AcceptPath::Sharded`]):
//! every worker binds its own `SO_REUSEPORT` listener on the same address
//! and the kernel load-balances incoming connections across them — no
//! hand-off thread, no cross-thread wake-up, and with the io_uring
//! front-end the accept itself happens in-kernel (multishot accept).  The
//! paper's least-connections balancing remains available as
//! [`AcceptPath::Single`] (`--accept single` / `CPHASH_ACCEPT=single`),
//! and is the automatic fallback where `SO_REUSEPORT` sharding cannot be
//! built (non-Linux hosts, non-IPv4 binds).
//!
//! The single-acceptor hand-off is event-aware: each worker slot carries a
//! [`Waker`], so a worker sleeping in its reactor's `epoll_wait` is woken
//! the moment a connection is assigned to it instead of discovering it on a
//! poll tick.

use cphash_sync::atomic::plain::{AtomicBool, AtomicUsize, Ordering};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::reactor::{FrontendKind, Reactor, Waker};

/// How a server's listening socket feeds its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AcceptPath {
    /// Per-worker `SO_REUSEPORT` listeners; the kernel load-balances
    /// accepts across workers.  Falls back to [`AcceptPath::Single`] where
    /// the sharded listener set cannot be built.
    #[default]
    Sharded,
    /// One acceptor thread assigning each connection to the least-loaded
    /// worker (the paper's §4.1 design).
    Single,
}

impl AcceptPath {
    /// Parse an `--accept` flag value.
    pub fn parse(s: &str) -> Result<AcceptPath, String> {
        match s {
            "sharded" | "reuseport" => Ok(AcceptPath::Sharded),
            "single" | "acceptor" => Ok(AcceptPath::Single),
            other => Err(format!(
                "unknown accept path {other:?} (expected sharded|single)"
            )),
        }
    }

    /// The flag spelling of this path.
    pub fn as_str(&self) -> &'static str {
        match self {
            AcceptPath::Sharded => "sharded",
            AcceptPath::Single => "single",
        }
    }

    /// Default for this process: `CPHASH_ACCEPT` if set, otherwise sharded.
    /// An invalid value panics, for the same reason `CPHASH_FRONTEND` does:
    /// the variable exists to force a specific path in CI matrices, and a
    /// typo that silently picked the default would compare a path against
    /// itself.
    pub fn from_env() -> AcceptPath {
        match std::env::var("CPHASH_ACCEPT") {
            Ok(v) => AcceptPath::parse(v.trim().to_ascii_lowercase().as_str())
                .unwrap_or_else(|e| panic!("CPHASH_ACCEPT: {e}")),
            Err(_) => AcceptPath::default(),
        }
    }
}

impl core::fmt::Display for AcceptPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Build one non-blocking `SO_REUSEPORT` listener per shard, all bound to
/// `bind` (port 0 picks a port on the first listener; the rest join it).
/// Returns the resolved address plus the listener set, or an error where
/// reuseport sharding is unavailable (non-Linux, non-IPv4 bind) — callers
/// fall back to [`spawn_acceptor`].
pub fn shard_listeners(
    bind: SocketAddr,
    shards: usize,
) -> io::Result<(SocketAddr, Vec<TcpListener>)> {
    assert!(shards > 0, "need at least one shard");
    #[cfg(target_os = "linux")]
    {
        let SocketAddr::V4(v4) = bind else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "reuseport sharding requires an IPv4 bind address",
            ));
        };
        let first = reuseport_listener(*v4.ip(), v4.port())?;
        let addr = first.local_addr()?;
        let SocketAddr::V4(resolved) = addr else {
            unreachable!("IPv4 socket reports an IPv4 local address");
        };
        let mut listeners = Vec::with_capacity(shards);
        listeners.push(first);
        for _ in 1..shards {
            listeners.push(reuseport_listener(*resolved.ip(), resolved.port())?);
        }
        for listener in &listeners {
            listener.set_nonblocking(true)?;
        }
        Ok((addr, listeners))
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = bind;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "reuseport sharding is Linux-only",
        ))
    }
}

/// One `SO_REUSEPORT` (+`SO_REUSEADDR`) listener, built below std because
/// the option must be set *before* `bind`.
#[cfg(target_os = "linux")]
fn reuseport_listener(ip: std::net::Ipv4Addr, port: u16) -> io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    // SAFETY: raw socket-setup calls on a freshly created, owned fd; the
    // sockaddr_in is a valid 16-byte POD and every failure path closes the
    // fd before returning.
    unsafe {
        let fd = libc::socket(libc::AF_INET, libc::SOCK_STREAM | libc::SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let close_on = |fd: i32, err: io::Error| {
            libc::close(fd);
            Err(err)
        };
        let one: libc::c_int = 1;
        for opt in [libc::SO_REUSEADDR, libc::SO_REUSEPORT] {
            let rc = libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                opt,
                (&one as *const libc::c_int).cast(),
                core::mem::size_of::<libc::c_int>() as libc::socklen_t,
            );
            if rc != 0 {
                return close_on(fd, io::Error::last_os_error());
            }
        }
        let addr = libc::sockaddr_in {
            sin_family: libc::AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: u32::from(ip).to_be(),
            sin_zero: [0; 8],
        };
        if libc::bind(
            fd,
            (&addr as *const libc::sockaddr_in).cast(),
            core::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        ) != 0
        {
            return close_on(fd, io::Error::last_os_error());
        }
        if libc::listen(fd, 1024) != 0 {
            return close_on(fd, io::Error::last_os_error());
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Collect every connection currently acceptable on a worker-owned
/// listener: from the reactor's in-kernel accept queue when the backend
/// owns accepting (io_uring multishot accept), otherwise via non-blocking
/// `accept(2)` until `WouldBlock`.
pub fn drain_accepts(
    listener: &TcpListener,
    reactor: &mut Reactor,
    token: usize,
    out: &mut Vec<TcpStream>,
) {
    #[cfg(unix)]
    {
        let mut fds: Vec<crate::reactor::RawFd> = Vec::new();
        if reactor.take_accepted(token, &mut fds) {
            for fd in fds {
                // SAFETY: the backend accepted this fd in-kernel and hands
                // ownership over exactly once, here.
                out.push(unsafe {
                    use std::os::fd::FromRawFd;
                    TcpStream::from_raw_fd(fd)
                });
            }
            return;
        }
    }
    #[cfg(not(unix))]
    let _ = reactor;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => out.push(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => {
                // Persistent accept errors (EMFILE under a connection
                // storm) keep the listener level-ready; back off briefly
                // so the worker does not hot-spin accept→fail.
                std::thread::sleep(Duration::from_millis(1));
                break;
            }
        }
    }
}

/// The acceptor's handle to one worker: where to send new connections and
/// how loaded that worker currently is.
pub struct WorkerSlot {
    /// Channel delivering accepted streams to the worker.
    pub sender: Sender<TcpStream>,
    /// Number of connections the worker currently services; the worker
    /// decrements it when a connection closes.
    pub active: Arc<AtomicUsize>,
    /// Wakes the worker's reactor after a hand-off.
    pub waker: Waker,
}

/// Receiving side handed to each worker thread.
pub struct WorkerInbox {
    /// New connections assigned to this worker.
    pub receiver: Receiver<TcpStream>,
    /// Shared active-connection counter (decrement on close).
    pub active: Arc<AtomicUsize>,
    /// The worker's waker; register its fd under
    /// [`crate::reactor::WAKER_TOKEN`] and drain it on wake-up.
    pub waker: Waker,
}

/// Create `workers` connected slot/inbox pairs whose wakers match the
/// chosen front-end.
pub fn worker_channels(
    workers: usize,
    frontend: FrontendKind,
) -> (Vec<WorkerSlot>, Vec<WorkerInbox>) {
    let mut slots = Vec::with_capacity(workers);
    let mut inboxes = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (sender, receiver) = std::sync::mpsc::channel();
        let active = Arc::new(AtomicUsize::new(0));
        let waker = Waker::new(frontend);
        slots.push(WorkerSlot {
            sender,
            active: Arc::clone(&active),
            waker: waker.clone(),
        });
        inboxes.push(WorkerInbox {
            receiver,
            active,
            waker,
        });
    }
    (slots, inboxes)
}

/// Pick the least-loaded worker.
pub fn least_loaded(slots: &[WorkerSlot]) -> usize {
    slots
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.active.load(Ordering::Relaxed)) // relaxed: load-balance gauge; staleness is benign
        .map(|(i, _)| i)
        .expect("at least one worker")
}

/// Spawn the acceptor thread.  Returns the bound address and the thread's
/// join handle; the thread exits when `stop` is raised.
pub fn spawn_acceptor(
    listener: TcpListener,
    slots: Vec<WorkerSlot>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("kv-acceptor".to_string())
        .spawn(move || {
            // relaxed: stop flag; shutdown needs no ordering
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let target = least_loaded(&slots);
                        slots[target].active.fetch_add(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                                                                              // If the worker is gone the server is shutting down;
                                                                              // dropping the stream closes the connection.
                        if slots[target].sender.send(stream).is_ok() {
                            slots[target].waker.wake();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        })
        .expect("spawning the acceptor thread");
    Ok((addr, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn least_loaded_picks_the_emptiest_worker() {
        let (slots, _inboxes) = worker_channels(3, FrontendKind::Poll);
        slots[0].active.store(5, Ordering::Relaxed);
        slots[1].active.store(2, Ordering::Relaxed);
        slots[2].active.store(9, Ordering::Relaxed);
        assert_eq!(least_loaded(&slots), 1);
    }

    #[test]
    fn acceptor_balances_connections_across_workers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (slots, inboxes) = worker_channels(2, FrontendKind::from_env());
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) = spawn_acceptor(listener, slots, Arc::clone(&stop)).unwrap();

        // Open four connections; with least-connections balancing and no
        // closes, each worker ends up with two.
        let _conns: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let mut received = [0usize; 2];
        while received.iter().sum::<usize>() < 4 && std::time::Instant::now() < deadline {
            for (i, inbox) in inboxes.iter().enumerate() {
                while inbox.receiver.try_recv().is_ok() {
                    received[i] += 1;
                }
            }
        }
        assert_eq!(received.iter().sum::<usize>(), 4);
        assert_eq!(received[0], 2);
        assert_eq!(received[1], 2);

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn hand_off_signals_the_worker_waker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (slots, inboxes) = worker_channels(1, FrontendKind::Epoll);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) = spawn_acceptor(listener, slots, Arc::clone(&stop)).unwrap();

        let _conn = TcpStream::connect(addr).unwrap();
        let inbox = &inboxes[0];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let mut got = false;
        while !got && std::time::Instant::now() < deadline {
            got = inbox.receiver.try_recv().is_ok();
        }
        assert!(got, "the stream reached the worker inbox");
        // On Linux/epoll the waker is an eventfd and must now be readable;
        // registering it on a reactor and waiting proves the signal arrived.
        if let Some(fd) = inbox.waker.fd() {
            use crate::reactor::{Reactor, WAKER_TOKEN};
            let mut reactor = Reactor::new(
                FrontendKind::Epoll,
                Arc::new(crate::metrics::FrontendStats::default()),
            );
            reactor.register(fd, WAKER_TOKEN, false).unwrap();
            let mut ready = Vec::new();
            reactor
                .wait(&mut ready, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(ready.contains(&WAKER_TOKEN));
            inbox.waker.drain();
        }

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
