//! Connection acceptance and least-connections load balancing.
//!
//! "The CPSERVER also has an additional thread that accepts new connections.
//! When a connection is made, it is assigned to a client thread with the
//! smallest number of current active connections." (§4.1)
//!
//! The hand-off is event-aware: each worker slot carries a
//! [`Waker`], so a worker sleeping in its reactor's `epoll_wait` is woken
//! the moment a connection is assigned to it instead of discovering it on a
//! poll tick.

use cphash_sync::atomic::plain::{AtomicBool, AtomicUsize, Ordering};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::reactor::{FrontendKind, Waker};

/// The acceptor's handle to one worker: where to send new connections and
/// how loaded that worker currently is.
pub struct WorkerSlot {
    /// Channel delivering accepted streams to the worker.
    pub sender: Sender<TcpStream>,
    /// Number of connections the worker currently services; the worker
    /// decrements it when a connection closes.
    pub active: Arc<AtomicUsize>,
    /// Wakes the worker's reactor after a hand-off.
    pub waker: Waker,
}

/// Receiving side handed to each worker thread.
pub struct WorkerInbox {
    /// New connections assigned to this worker.
    pub receiver: Receiver<TcpStream>,
    /// Shared active-connection counter (decrement on close).
    pub active: Arc<AtomicUsize>,
    /// The worker's waker; register its fd under
    /// [`crate::reactor::WAKER_TOKEN`] and drain it on wake-up.
    pub waker: Waker,
}

/// Create `workers` connected slot/inbox pairs whose wakers match the
/// chosen front-end.
pub fn worker_channels(
    workers: usize,
    frontend: FrontendKind,
) -> (Vec<WorkerSlot>, Vec<WorkerInbox>) {
    let mut slots = Vec::with_capacity(workers);
    let mut inboxes = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (sender, receiver) = std::sync::mpsc::channel();
        let active = Arc::new(AtomicUsize::new(0));
        let waker = Waker::new(frontend);
        slots.push(WorkerSlot {
            sender,
            active: Arc::clone(&active),
            waker: waker.clone(),
        });
        inboxes.push(WorkerInbox {
            receiver,
            active,
            waker,
        });
    }
    (slots, inboxes)
}

/// Pick the least-loaded worker.
pub fn least_loaded(slots: &[WorkerSlot]) -> usize {
    slots
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.active.load(Ordering::Relaxed)) // relaxed: load-balance gauge; staleness is benign
        .map(|(i, _)| i)
        .expect("at least one worker")
}

/// Spawn the acceptor thread.  Returns the bound address and the thread's
/// join handle; the thread exits when `stop` is raised.
pub fn spawn_acceptor(
    listener: TcpListener,
    slots: Vec<WorkerSlot>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("kv-acceptor".to_string())
        .spawn(move || {
            // relaxed: stop flag; shutdown needs no ordering
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let target = least_loaded(&slots);
                        slots[target].active.fetch_add(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                                                                              // If the worker is gone the server is shutting down;
                                                                              // dropping the stream closes the connection.
                        if slots[target].sender.send(stream).is_ok() {
                            slots[target].waker.wake();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        })
        .expect("spawning the acceptor thread");
    Ok((addr, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn least_loaded_picks_the_emptiest_worker() {
        let (slots, _inboxes) = worker_channels(3, FrontendKind::Poll);
        slots[0].active.store(5, Ordering::Relaxed);
        slots[1].active.store(2, Ordering::Relaxed);
        slots[2].active.store(9, Ordering::Relaxed);
        assert_eq!(least_loaded(&slots), 1);
    }

    #[test]
    fn acceptor_balances_connections_across_workers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (slots, inboxes) = worker_channels(2, FrontendKind::from_env());
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) = spawn_acceptor(listener, slots, Arc::clone(&stop)).unwrap();

        // Open four connections; with least-connections balancing and no
        // closes, each worker ends up with two.
        let _conns: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let mut received = [0usize; 2];
        while received.iter().sum::<usize>() < 4 && std::time::Instant::now() < deadline {
            for (i, inbox) in inboxes.iter().enumerate() {
                while inbox.receiver.try_recv().is_ok() {
                    received[i] += 1;
                }
            }
        }
        assert_eq!(received.iter().sum::<usize>(), 4);
        assert_eq!(received[0], 2);
        assert_eq!(received[1], 2);

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn hand_off_signals_the_worker_waker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (slots, inboxes) = worker_channels(1, FrontendKind::Epoll);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) = spawn_acceptor(listener, slots, Arc::clone(&stop)).unwrap();

        let _conn = TcpStream::connect(addr).unwrap();
        let inbox = &inboxes[0];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let mut got = false;
        while !got && std::time::Instant::now() < deadline {
            got = inbox.receiver.try_recv().is_ok();
        }
        assert!(got, "the stream reached the worker inbox");
        // On Linux/epoll the waker is an eventfd and must now be readable;
        // registering it on a reactor and waiting proves the signal arrived.
        if let Some(fd) = inbox.waker.fd() {
            use crate::reactor::{Reactor, WAKER_TOKEN};
            let mut reactor = Reactor::new(
                FrontendKind::Epoll,
                Arc::new(crate::metrics::FrontendStats::default()),
            );
            reactor.register(fd, WAKER_TOKEN, false).unwrap();
            let mut ready = Vec::new();
            reactor
                .wait(&mut ready, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(ready.contains(&WAKER_TOKEN));
            inbox.waker.drain();
        }

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
