//! Connection acceptance and least-connections load balancing.
//!
//! "The CPSERVER also has an additional thread that accepts new connections.
//! When a connection is made, it is assigned to a client thread with the
//! smallest number of current active connections." (§4.1)

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The acceptor's handle to one worker: where to send new connections and
/// how loaded that worker currently is.
pub struct WorkerSlot {
    /// Channel delivering accepted streams to the worker.
    pub sender: Sender<TcpStream>,
    /// Number of connections the worker currently services; the worker
    /// decrements it when a connection closes.
    pub active: Arc<AtomicUsize>,
}

/// Receiving side handed to each worker thread.
pub struct WorkerInbox {
    /// New connections assigned to this worker.
    pub receiver: Receiver<TcpStream>,
    /// Shared active-connection counter (decrement on close).
    pub active: Arc<AtomicUsize>,
}

/// Create `workers` connected slot/inbox pairs.
pub fn worker_channels(workers: usize) -> (Vec<WorkerSlot>, Vec<WorkerInbox>) {
    let mut slots = Vec::with_capacity(workers);
    let mut inboxes = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (sender, receiver) = std::sync::mpsc::channel();
        let active = Arc::new(AtomicUsize::new(0));
        slots.push(WorkerSlot {
            sender,
            active: Arc::clone(&active),
        });
        inboxes.push(WorkerInbox { receiver, active });
    }
    (slots, inboxes)
}

/// Pick the least-loaded worker.
pub fn least_loaded(slots: &[WorkerSlot]) -> usize {
    slots
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.active.load(Ordering::Relaxed))
        .map(|(i, _)| i)
        .expect("at least one worker")
}

/// Spawn the acceptor thread.  Returns the bound address and the thread's
/// join handle; the thread exits when `stop` is raised.
pub fn spawn_acceptor(
    listener: TcpListener,
    slots: Vec<WorkerSlot>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("kv-acceptor".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let target = least_loaded(&slots);
                        slots[target].active.fetch_add(1, Ordering::Relaxed);
                        // If the worker is gone the server is shutting down;
                        // dropping the stream closes the connection.
                        let _ = slots[target].sender.send(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        })
        .expect("spawning the acceptor thread");
    Ok((addr, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn least_loaded_picks_the_emptiest_worker() {
        let (slots, _inboxes) = worker_channels(3);
        slots[0].active.store(5, Ordering::Relaxed);
        slots[1].active.store(2, Ordering::Relaxed);
        slots[2].active.store(9, Ordering::Relaxed);
        assert_eq!(least_loaded(&slots), 1);
    }

    #[test]
    fn acceptor_balances_connections_across_workers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (slots, inboxes) = worker_channels(2);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) = spawn_acceptor(listener, slots, Arc::clone(&stop)).unwrap();

        // Open four connections; with least-connections balancing and no
        // closes, each worker ends up with two.
        let _conns: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let mut received = [0usize; 2];
        while received.iter().sum::<usize>() < 4 && std::time::Instant::now() < deadline {
            for (i, inbox) in inboxes.iter().enumerate() {
                while inbox.receiver.try_recv().is_ok() {
                    received[i] += 1;
                }
            }
        }
        assert_eq!(received.iter().sum::<usize>(), 4);
        assert_eq!(received[0], 2);
        assert_eq!(received[1], 2);

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
