//! Per-connection state shared by all three servers.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use bytes::BytesMut;
use cphash_kvproto::{
    encode_hello, encode_response, Reply, ServerDecoder, ServerEvent, ServerOp, Status, VERSION_1,
    VERSION_2,
};

use crate::reactor::{RawFd, Reactor};

/// A non-blocking TCP connection with streaming request decoding and a
/// buffered response path.
///
/// Worker threads own a set of these registered on a
/// [`crate::reactor::Reactor`]; the reactor reports which are ready and the
/// worker drains each fully, which is how the paper's client threads
/// "monitor TCP connections assigned to [them] and gather as many requests
/// as possible".
///
/// The connection owns protocol-version negotiation: the first byte a
/// client sends either starts a v2 handshake (answered here with a
/// HELLO-ACK carrying `min(requested, max_protocol)`) or locks the
/// connection to v1 framing, and [`Connection::queue_reply`] encodes every
/// reply in whichever framing was negotiated.
pub struct Connection {
    stream: TcpStream,
    decoder: ServerDecoder,
    outgoing: BytesMut,
    closed: bool,
    read_buf: Vec<u8>,
    /// Negotiated protocol version (v1 until a handshake says otherwise).
    version: u8,
    /// Highest protocol version the server is willing to speak.
    max_protocol: u8,
    /// Whether the owning reactor currently has write interest registered
    /// for this connection (output was back-logged at the last flush).
    want_write: bool,
}

impl Connection {
    /// Wrap an accepted stream (switched to non-blocking mode), speaking
    /// up to kvproto v2.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        Self::with_max_protocol(stream, VERSION_2)
    }

    /// Wrap an accepted stream, capping the negotiated protocol version
    /// (`max_protocol` 1 makes the server behave like a pre-versioning
    /// build for compatibility testing).
    pub fn with_max_protocol(stream: TcpStream, max_protocol: u8) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            decoder: ServerDecoder::new(),
            outgoing: BytesMut::with_capacity(16 * 1024),
            closed: false,
            read_buf: vec![0u8; 64 * 1024],
            version: VERSION_1,
            max_protocol: max_protocol.clamp(VERSION_1, VERSION_2),
            want_write: false,
        })
    }

    /// The protocol version this connection speaks (v1 until a v2
    /// handshake completes).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The raw descriptor, for reactor registration.
    pub fn raw_fd(&self) -> RawFd {
        crate::reactor::raw_fd_of(&self.stream)
    }

    /// Does the reactor currently watch this connection for writability?
    pub fn wants_write(&self) -> bool {
        self.want_write
    }

    /// Record the write-interest state the owning reactor last registered.
    pub fn set_wants_write(&mut self, want: bool) {
        self.want_write = want;
    }

    /// Has the peer closed the connection (or a protocol error occurred)?
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Read whatever bytes are available and decode complete requests into
    /// `out`, answering handshakes along the way. Returns the number of
    /// bytes read.
    pub fn poll_requests(&mut self, out: &mut Vec<ServerOp>) -> usize {
        if self.closed {
            return 0;
        }
        let mut total = 0usize;
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    total += n;
                    self.decoder.feed(&self.read_buf[..n]);
                    // Keep reading until the socket would block so a batch
                    // arrives in as few syscalls as possible.
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        loop {
            match self.decoder.next_event() {
                Ok(Some(ServerEvent::Hello { requested })) => {
                    // Negotiate down to what both sides speak and ack.  If
                    // the common ground is v1, the client's following
                    // frames are legacy-framed; tell the decoder.
                    self.version = requested.min(self.max_protocol);
                    if self.version <= VERSION_1 {
                        self.decoder.set_wire_version(VERSION_1);
                    }
                    encode_hello(&mut self.outgoing, self.version);
                }
                Ok(Some(ServerEvent::Op(op))) => out.push(op),
                Ok(None) => break,
                Err(_) => {
                    // Protocol violation: drop the connection.
                    self.closed = true;
                    break;
                }
            }
        }
        total
    }

    /// Queue a typed reply, encoded in the connection's negotiated framing.
    ///
    /// v1 connections get the legacy size-prefixed value frame: `Ok` and
    /// `Err` carry their bytes (admin status strings travelled as response
    /// values before status codes existed), `Miss` is the empty frame, and
    /// `Retry` — which v1 cannot express — degrades to a miss (correct for
    /// a cache: the client treats it as absent and re-fetches).
    pub fn queue_reply(&mut self, reply: &Reply) {
        self.queue_reply_parts(reply.status, reply.code, &reply.value);
    }

    /// [`Connection::queue_reply`] from parts — the hot path for lookup
    /// hits: value bytes go straight into the output buffer without an
    /// intermediate owned `Reply`.
    pub fn queue_reply_parts(
        &mut self,
        status: Status,
        code: cphash_kvproto::ErrCode,
        value: &[u8],
    ) {
        if self.version >= VERSION_2 {
            cphash_kvproto::encode_reply_parts(&mut self.outgoing, status, code, value);
            return;
        }
        match status {
            Status::Ok | Status::Err => encode_response(&mut self.outgoing, Some(value)),
            Status::Miss | Status::Retry => encode_response(&mut self.outgoing, None),
        }
    }

    /// Attempt to flush queued response bytes. Returns bytes written.
    pub fn flush(&mut self) -> usize {
        if self.closed || self.outgoing.is_empty() {
            return 0;
        }
        let mut written = 0usize;
        while !self.outgoing.is_empty() {
            match self.stream.write(&self.outgoing) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    written += n;
                    let _ = self.outgoing.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        written
    }

    /// Bytes currently waiting to be written.
    pub fn pending_output(&self) -> usize {
        self.outgoing.len()
    }
}

/// Insert into the first free slot of a connection slab (slot indices stay
/// stable, so they double as reactor tokens) and return the slot.
pub(crate) fn slab_insert<T>(slab: &mut Vec<Option<T>>, item: T) -> usize {
    match slab.iter_mut().position(|entry| entry.is_none()) {
        Some(slot) => {
            slab[slot] = Some(item);
            slot
        }
        None => {
            slab.push(Some(item));
            slab.len() - 1
        }
    }
}

/// Adopt a new connection into a worker: insert it into the slab's first
/// free slot, register it with the reactor under that slot, and push the
/// slot onto `ready` so any bytes that arrived before registration are
/// served this pass.  On registration failure the slot is rolled back and
/// `false` returned (the caller owns any accept-side accounting).
///
/// `conn_of` projects the slab element to its [`Connection`] (identity for
/// plain slabs; the `ConnState` wrapper for CPSERVER).
pub(crate) fn adopt<T>(
    slab: &mut Vec<Option<T>>,
    reactor: &mut Reactor,
    ready: &mut Vec<usize>,
    item: T,
    conn_of: impl Fn(&T) -> &Connection,
) -> bool {
    let slot = slab_insert(slab, item);
    let fd = conn_of(slab[slot].as_ref().expect("just inserted")).raw_fd();
    if reactor.register(fd, slot, false).is_ok() {
        ready.push(slot);
        true
    } else {
        slab[slot] = None;
        false
    }
}

/// What [`settle`] decided about a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Settle {
    /// Peer gone: the fd was deregistered; the caller must clear the slot
    /// (and do any per-server bookkeeping tied to it).
    Retired,
    /// Still open; the reactor's write interest matches the output backlog.
    Open,
}

/// The shared tail of every worker loop: flush queued output, then either
/// retire a closed connection from the reactor or keep the reactor's write
/// interest in sync with any back-logged output.  Returns the bytes written
/// and the verdict.
pub(crate) fn settle(
    conn: &mut Connection,
    reactor: &mut Reactor,
    token: usize,
) -> (usize, Settle) {
    let written = conn.flush();
    if conn.is_closed() {
        // Once the peer is gone no remaining output can be delivered
        // (`flush` refuses closed connections), so reclaim immediately —
        // churn cannot leak fds or slots.
        let _ = reactor.deregister(conn.raw_fd(), token);
        (written, Settle::Retired)
    } else {
        let backlogged = conn.pending_output() > 0;
        if backlogged != conn.wants_write() {
            let _ = reactor.rearm(conn.raw_fd(), token, backlogged);
            conn.set_wants_write(backlogged);
        }
        (written, Settle::Open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{encode_insert, encode_lookup, OpKind};
    use std::net::TcpListener;

    #[test]
    fn slab_insert_reuses_freed_slots() {
        let mut slab: Vec<Option<u32>> = Vec::new();
        assert_eq!(slab_insert(&mut slab, 10), 0);
        assert_eq!(slab_insert(&mut slab, 11), 1);
        slab[0] = None;
        assert_eq!(slab_insert(&mut slab, 12), 0);
        assert_eq!(slab_insert(&mut slab, 13), 2);
        assert_eq!(slab, vec![Some(12), Some(11), Some(13)]);
    }

    #[test]
    fn decodes_requests_and_writes_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Connection::new(server_side).unwrap();

        // Client sends two requests in one write.
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, 10);
        encode_insert(&mut wire, 20, b"abc");
        client.write_all(&wire).unwrap();

        let mut requests = Vec::new();
        // Non-blocking read may need a moment for the bytes to arrive.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while requests.len() < 2 && std::time::Instant::now() < deadline {
            conn.poll_requests(&mut requests);
        }
        assert_eq!(requests.len(), 2);
        assert_eq!(conn.version(), VERSION_1);
        assert_eq!(requests[0].frame.kind, OpKind::Lookup);
        assert!(requests[0].wants_response);
        assert_eq!(requests[1].frame.kind, OpKind::Insert);
        assert!(!requests[1].wants_response, "v1 inserts are silent");
        assert!(!conn.is_closed());

        // Server responds to the lookup (legacy framing: plain value).
        conn.queue_reply(&Reply::ok_value(b"value".to_vec()));
        assert!(conn.pending_output() > 0);
        while conn.pending_output() > 0 {
            conn.flush();
        }
        let mut buf = [0u8; 16];
        client.read_exact(&mut buf[..9]).unwrap();
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 5);
        assert_eq!(&buf[4..9], b"value");
    }

    #[test]
    fn v2_handshake_is_acked_and_ops_reply_typed() {
        use cphash_kvproto::{OpFrame, ReplyDecoder, Status};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Connection::new(server_side).unwrap();

        let mut wire = BytesMut::new();
        cphash_kvproto::encode_hello(&mut wire, VERSION_2);
        cphash_kvproto::encode_op(&mut wire, &OpFrame::delete_bytes(b"k".to_vec()));
        client.write_all(&wire).unwrap();

        let mut requests = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while requests.is_empty() && std::time::Instant::now() < deadline {
            conn.poll_requests(&mut requests);
        }
        assert_eq!(conn.version(), VERSION_2);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].frame.kind, OpKind::Delete);
        assert!(requests[0].wants_response);

        conn.queue_reply(&Reply::miss());
        while conn.pending_output() > 0 {
            conn.flush();
        }
        // Client sees the HELLO-ACK, then the typed reply.
        let mut ack = [0u8; cphash_kvproto::HELLO_BYTES];
        client.read_exact(&mut ack).unwrap();
        assert_eq!(cphash_kvproto::parse_hello(&ack).unwrap(), VERSION_2);
        let mut decoder = ReplyDecoder::new();
        let mut buf = [0u8; 64];
        let reply = loop {
            if let Some(r) = decoder.next_reply().unwrap() {
                break r;
            }
            let n = client.read(&mut buf).unwrap();
            assert!(n > 0);
            decoder.feed(&buf[..n]);
        };
        assert_eq!(reply.status, Status::Miss);
    }

    #[test]
    fn max_protocol_one_negotiates_a_v2_client_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Connection::with_max_protocol(server_side, VERSION_1).unwrap();

        let mut wire = BytesMut::new();
        cphash_kvproto::encode_hello(&mut wire, VERSION_2);
        // After a graceful downgrade the client speaks v1 frames.
        encode_lookup(&mut wire, 3);
        client.write_all(&wire).unwrap();

        let mut requests = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while requests.is_empty() && std::time::Instant::now() < deadline {
            conn.poll_requests(&mut requests);
        }
        assert_eq!(conn.version(), VERSION_1);
        assert_eq!(requests[0].frame.kind, OpKind::Lookup);
        while conn.pending_output() > 0 {
            conn.flush();
        }
        let mut ack = [0u8; cphash_kvproto::HELLO_BYTES];
        client.read_exact(&mut ack).unwrap();
        assert_eq!(cphash_kvproto::parse_hello(&ack).unwrap(), VERSION_1);
    }

    #[test]
    fn peer_close_is_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Connection::new(server_side).unwrap();
        drop(client);
        let mut requests = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while !conn.is_closed() && std::time::Instant::now() < deadline {
            conn.poll_requests(&mut requests);
        }
        assert!(conn.is_closed());
        assert!(requests.is_empty());
    }
}
