//! Per-connection state shared by all three servers.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use bytes::BytesMut;
use cphash_kvproto::{Request, RequestDecoder};

/// A non-blocking TCP connection with streaming request decoding and a
/// buffered response path.
///
/// Worker threads own a set of these and poll them round-robin, which is
/// how the paper's client threads "monitor TCP connections assigned to
/// [them] and gather as many requests as possible".
pub struct Connection {
    stream: TcpStream,
    decoder: RequestDecoder,
    outgoing: BytesMut,
    closed: bool,
    read_buf: Vec<u8>,
}

impl Connection {
    /// Wrap an accepted stream (switched to non-blocking mode).
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            decoder: RequestDecoder::new(),
            outgoing: BytesMut::with_capacity(16 * 1024),
            closed: false,
            read_buf: vec![0u8; 64 * 1024],
        })
    }

    /// Has the peer closed the connection (or a protocol error occurred)?
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Read whatever bytes are available and decode complete requests into
    /// `out`. Returns the number of bytes read.
    pub fn poll_requests(&mut self, out: &mut Vec<Request>) -> usize {
        if self.closed {
            return 0;
        }
        let mut total = 0usize;
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    total += n;
                    self.decoder.feed(&self.read_buf[..n]);
                    // Keep reading until the socket would block so a batch
                    // arrives in as few syscalls as possible.
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.decoder.drain(out).is_err() {
            // Protocol violation: drop the connection.
            self.closed = true;
        }
        total
    }

    /// Queue response bytes to be written.
    pub fn queue_response(&mut self) -> &mut BytesMut {
        &mut self.outgoing
    }

    /// Attempt to flush queued response bytes. Returns bytes written.
    pub fn flush(&mut self) -> usize {
        if self.closed || self.outgoing.is_empty() {
            return 0;
        }
        let mut written = 0usize;
        while !self.outgoing.is_empty() {
            match self.stream.write(&self.outgoing) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    written += n;
                    let _ = self.outgoing.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        written
    }

    /// Bytes currently waiting to be written.
    pub fn pending_output(&self) -> usize {
        self.outgoing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{encode_insert, encode_lookup, encode_response, RequestKind};
    use std::net::TcpListener;

    #[test]
    fn decodes_requests_and_writes_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Connection::new(server_side).unwrap();

        // Client sends two requests in one write.
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, 10);
        encode_insert(&mut wire, 20, b"abc");
        client.write_all(&wire).unwrap();

        let mut requests = Vec::new();
        // Non-blocking read may need a moment for the bytes to arrive.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while requests.len() < 2 && std::time::Instant::now() < deadline {
            conn.poll_requests(&mut requests);
        }
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[0].kind, RequestKind::Lookup);
        assert_eq!(requests[1].kind, RequestKind::Insert);
        assert!(!conn.is_closed());

        // Server responds to the lookup.
        encode_response(conn.queue_response(), Some(b"value"));
        assert!(conn.pending_output() > 0);
        while conn.pending_output() > 0 {
            conn.flush();
        }
        let mut buf = [0u8; 16];
        client.read_exact(&mut buf[..9]).unwrap();
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 5);
        assert_eq!(&buf[4..9], b"value");
    }

    #[test]
    fn peer_close_is_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Connection::new(server_side).unwrap();
        drop(client);
        let mut requests = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while !conn.is_closed() && std::time::Instant::now() < deadline {
            conn.poll_requests(&mut requests);
        }
        assert!(conn.is_closed());
        assert!(requests.is_empty());
    }
}
