//! CPSERVER: the CPHash-backed key/value cache server (paper §4.1).

use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cphash::{
    ClientHandle, CompletionKind, CpHash, CpHashConfig, EvictionPolicy, MigrationPacing,
    ServerPipeline,
};
use cphash_affinity::HwThreadId;
use cphash_kvproto::{
    envelope, resize_chunks_per_sec, resize_partitions, ErrCode, OpKind, Status, WireKey,
};
use cphash_migrate::{MigrationPacer, RepartitionCoordinator};
use cphash_perfmon::SharedLatencyWindow;

use crate::acceptor::{
    drain_accepts, shard_listeners, spawn_acceptor, worker_channels, AcceptPath, WorkerInbox,
};
use crate::connection::Connection;
use crate::metrics::{MigrationProgress, ServerMetrics};
use crate::reactor::{raw_fd_of, FrontendKind, Reactor, LISTENER_TOKEN, WAKER_TOKEN};
use crate::stats_http::spawn_stats_listener;

/// An admin resize request in flight from a client thread to the admin
/// thread that owns the repartition coordinator.
struct AdminRequest {
    new_partitions: usize,
    /// Per-request pacing override from the wire (`None` = the server's
    /// configured default pacing).
    chunks_per_sec: Option<u32>,
    reply: mpsc::Sender<String>,
}

/// The admin thread: serializes resize requests onto the coordinator,
/// pacing each through the server's default pacer (which keeps its feedback
/// state across resizes) or a per-request rate override from the wire.
fn admin_worker(
    mut coordinator: RepartitionCoordinator,
    mut default_pacer: MigrationPacer,
    requests: mpsc::Receiver<AdminRequest>,
    stop: Arc<AtomicBool>,
    progress: Arc<MigrationProgress>,
) {
    // relaxed: stop flag; shutdown needs no ordering
    while !stop.load(Ordering::Relaxed) {
        match requests.recv_timeout(Duration::from_millis(20)) {
            Ok(request) => {
                let (result, rate) = match request.chunks_per_sec {
                    Some(rate) => {
                        let mut override_pacer =
                            MigrationPacer::from_config(MigrationPacing::Rate {
                                chunks_per_sec: rate as f64,
                            });
                        let result = coordinator
                            .resize_to_paced(request.new_partitions, &mut override_pacer);
                        (result, override_pacer.current_rate())
                    }
                    None => {
                        let result =
                            coordinator.resize_to_paced(request.new_partitions, &mut default_pacer);
                        (result, default_pacer.current_rate())
                    }
                };
                let status = match result {
                    Ok(report) => {
                        // Publish live-repartitioning progress on the
                        // metrics plane before answering the client.
                        progress.note_repartition(
                            report.chunks as u64,
                            report.keys_moved as u64,
                            report.paced_waits,
                        );
                        progress.set_pacer_rate(rate);
                        format!(
                            "partitions={} moved={} chunks={} paced_waits={}",
                            report.to_partitions,
                            report.keys_moved,
                            report.chunks,
                            report.paced_waits
                        )
                    }
                    Err(e) => format!("ERR {e}"),
                };
                // The requesting worker may have dropped the receiver when
                // its connection closed; that is fine.
                let _ = request.reply.send(status);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Configuration for [`CpServer`].
#[derive(Debug, Clone)]
pub struct CpServerConfig {
    /// Address to bind ("127.0.0.1:0" picks a free port).
    pub bind: SocketAddr,
    /// Client threads gathering requests from TCP connections.
    pub client_threads: usize,
    /// CPHash partitions / server threads.
    pub partitions: usize,
    /// Total hash-table byte budget.
    pub capacity_bytes: Option<usize>,
    /// Typical value size, used to size the bucket arrays.
    pub typical_value_bytes: usize,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Hardware threads to pin CPHash server threads to.
    pub server_pins: Vec<HwThreadId>,
    /// Outstanding-request window per client thread.
    pub batch: usize,
    /// Upper bound for the runtime `resize` admin command. Resize is only
    /// enabled when this exceeds `partitions`; otherwise (0 or equal) the
    /// table is static and RESIZE frames are refused.
    pub max_partitions: usize,
    /// Default pacing for live resizes (RESIZE frames may override it per
    /// request with an explicit chunks-per-second budget).
    pub migration_pacing: MigrationPacing,
    /// Front-end driving the client-thread loops: readiness-based (`epoll`,
    /// the default, falling back to busy-poll off Linux) or the legacy
    /// busy-poll (`poll`).
    pub frontend: FrontendKind,
    /// Accept path: per-worker `SO_REUSEPORT` listeners (the default) or
    /// the paper's single least-loaded acceptor thread.  Sharded silently
    /// falls back to the acceptor thread where reuseport sharding is
    /// unavailable (non-Linux, non-IPv4 bind).
    pub accept: AcceptPath,
    /// Highest kvproto version to negotiate (2 = typed ops; 1 makes the
    /// server behave like a pre-versioning build, for compatibility tests).
    pub max_protocol: u8,
    /// How the hash-table server threads process drained operations
    /// (staged batch + prefetch pipeline by default).
    pub pipeline: ServerPipeline,
    /// Pipeline depth for the hash-table servers (operations staged per
    /// batch).
    pub batch_size: usize,
    /// Overload shedding: when a worker has at least this many hash-table
    /// operations in flight, v2 *lookups* get wire-level `Retry` replies
    /// instead of being absorbed server-side — exercising the client's
    /// transparent-resubmission path.  Writes are never shed (resubmission
    /// would reorder them behind later same-key operations).  `None` (the
    /// default) never sheds; values below 1 are treated as 1.
    pub overload_retry: Option<usize>,
    /// Address for the Prometheus stats HTTP endpoint (`None` disables it;
    /// port 0 picks a free port, reported by [`CpServer::stats_addr`]).
    /// The default reads `CPHASH_STATS_ADDR`, so tests and CI can turn the
    /// endpoint on without touching every construction site.
    pub stats_addr: Option<SocketAddr>,
    /// Prefetch reply value bytes between completion drain and the wire
    /// copy (values are written by server threads on other cores, so the
    /// copy's first touch is otherwise a cache miss per line).  Defaults
    /// to on; `CPHASH_REPLY_PREFETCH=0` disables it for A/B runs.
    pub reply_prefetch: bool,
}

impl Default for CpServerConfig {
    fn default() -> Self {
        CpServerConfig {
            bind: "127.0.0.1:0".parse().expect("literal address"),
            client_threads: 2,
            partitions: 2,
            capacity_bytes: None,
            typical_value_bytes: 64,
            eviction: EvictionPolicy::Lru,
            server_pins: Vec::new(),
            batch: 1024,
            max_partitions: 0,
            migration_pacing: MigrationPacing::Unpaced,
            frontend: FrontendKind::from_env(),
            accept: AcceptPath::from_env(),
            max_protocol: cphash_kvproto::VERSION_2,
            pipeline: ServerPipeline::from_env(),
            batch_size: cphash::config::batch_size_from_env(),
            overload_retry: None,
            stats_addr: stats_addr_from_env(),
            reply_prefetch: reply_prefetch_from_env(),
        }
    }
}

/// The `CPHASH_REPLY_PREFETCH` environment default for
/// [`CpServerConfig::reply_prefetch`] (`0` disables, anything else — or
/// unset — enables).
fn reply_prefetch_from_env() -> bool {
    std::env::var("CPHASH_REPLY_PREFETCH").map_or(true, |v| v != "0")
}

/// The `CPHASH_STATS_ADDR` environment default for
/// [`CpServerConfig::stats_addr`].
fn stats_addr_from_env() -> Option<SocketAddr> {
    std::env::var("CPHASH_STATS_ADDR").ok()?.parse().ok()
}

/// A running CPSERVER.
pub struct CpServer {
    addr: SocketAddr,
    stats_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    table: Option<CpHash>,
    metrics: Arc<ServerMetrics>,
}

impl CpServer {
    /// Start the server: binds the listener, spawns the acceptor, the client
    /// threads and the CPHash server threads.
    pub fn start(config: CpServerConfig) -> std::io::Result<CpServer> {
        let mut table_config = CpHashConfig::new(config.partitions, config.client_threads);
        if let Some(capacity) = config.capacity_bytes {
            table_config = table_config.with_capacity(capacity, config.typical_value_bytes.max(1));
        }
        table_config.eviction = config.eviction;
        table_config.server_pins = config.server_pins.clone();
        table_config.max_partitions = config.max_partitions;
        table_config.migration_pacing = config.migration_pacing;
        table_config.pipeline = config.pipeline;
        table_config.batch_size = config.batch_size;
        let (table, handles) = CpHash::new(table_config);

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        metrics.attach_batch_sources(table.server_stats());
        metrics.attach_partition_source(table.partition_stats_sampler());
        let (slots, inboxes) = worker_channels(config.client_threads, config.frontend);
        // Accept path: per-worker SO_REUSEPORT listeners by default (the
        // kernel load-balances accepts across workers), else the paper's
        // single least-loaded acceptor thread — also the fallback where
        // sharding cannot be built.
        let sharded = match config.accept {
            AcceptPath::Sharded => shard_listeners(config.bind, config.client_threads).ok(),
            AcceptPath::Single => None,
        };
        let mut threads = Vec::new();
        let (addr, listeners) = match sharded {
            Some((addr, listeners)) => {
                // Workers accept on their own listeners; nothing flows
                // through the hand-off channels, so drop the senders (each
                // worker's try_recv then just reports empty/disconnected).
                drop(slots);
                (addr, listeners.into_iter().map(Some).collect::<Vec<_>>())
            }
            None => {
                let listener = TcpListener::bind(config.bind)?;
                let (addr, acceptor) = spawn_acceptor(listener, slots, Arc::clone(&stop))?;
                threads.push(acceptor);
                (addr, (0..config.client_threads).map(|_| None).collect())
            }
        };

        // The admin thread owns the table's repartition coordinator and
        // serializes `resize` requests from every client thread. A static
        // table (max_partitions == 0) gets no admin thread at all, so even
        // shrink requests are refused rather than re-shaping a topology the
        // operator declared fixed.
        let resize_enabled = config.max_partitions > config.partitions;
        let (admin_tx, admin_rx) = mpsc::channel::<AdminRequest>();
        let mut stats_addr = None;
        if let Some(requested) = config.stats_addr {
            let (bound, handle) =
                spawn_stats_listener(requested, Arc::clone(&metrics), Arc::clone(&stop))?;
            stats_addr = Some(bound);
            threads.push(handle);
        }
        if resize_enabled {
            let coordinator =
                RepartitionCoordinator::new(table.take_control().expect("fresh table has control"));
            // The default pacer samples the table's own queue-depth gauges
            // (depth feedback) or the workers' shared request-latency
            // window (latency feedback), so both modes work out of the box.
            let pacer = match config.migration_pacing {
                MigrationPacing::FeedbackLatency { .. } => {
                    MigrationPacer::from_config(config.migration_pacing)
                        .with_latency_window(Arc::clone(&metrics.latency))
                }
                pacing => MigrationPacer::for_table(&table, pacing),
            };
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&metrics.migration);
            threads.push(
                std::thread::Builder::new()
                    .name("cpserver-admin".into())
                    .spawn(move || admin_worker(coordinator, pacer, admin_rx, stop, progress))
                    .expect("spawning the admin thread"),
            );
        } else {
            drop(admin_rx);
        }

        for (index, ((handle, inbox), listener)) in
            handles.into_iter().zip(inboxes).zip(listeners).enumerate()
        {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let batch = config.batch;
            let admin = resize_enabled.then(|| admin_tx.clone());
            let frontend = config.frontend;
            let max_protocol = config.max_protocol;
            let overload_retry = config.overload_retry.map(|t| t.max(1));
            // Workers only pay for latency stamping when something will
            // actually sample the window.
            // (and only when a resize can actually run — without an admin
            // thread no pacer ever takes the window).
            let record_latency = resize_enabled
                && matches!(
                    config.migration_pacing,
                    MigrationPacing::FeedbackLatency { .. }
                );
            let reply_prefetch = config.reply_prefetch;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cpserver-client-{index}"))
                    .spawn(move || {
                        client_worker(
                            handle,
                            inbox,
                            listener,
                            stop,
                            metrics,
                            batch,
                            admin,
                            frontend,
                            max_protocol,
                            overload_retry,
                            record_latency,
                            reply_prefetch,
                        )
                    })
                    .expect("spawning a client thread"),
            );
        }

        Ok(CpServer {
            addr,
            stats_addr,
            stop,
            threads,
            table: Some(table),
            metrics,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the Prometheus stats endpoint, when enabled.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats_addr
    }

    /// Request metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Aggregate hash-table statistics.
    pub fn table_stats(&self) -> cphash::PartitionStats {
        self.table
            .as_ref()
            .map(|t| t.partition_stats())
            .unwrap_or_default()
    }

    /// Stop every thread and shut the table down.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(mut table) = self.table.take() {
            table.shutdown();
        }
    }
}

impl Drop for CpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Book-keeping for writes (inserts *and* deletes) whose completion is
/// still in flight, per hash key.
#[derive(Default)]
struct InflightWrites {
    /// Outstanding writes for this key.
    count: usize,
    /// Lookups for this key waiting for the writes to finish, identified
    /// by (connection slot, per-connection sequence number, byte key to
    /// verify against the §8.2 envelope — `None` for plain hash keys).
    deferred: Vec<(usize, u64, Option<Vec<u8>>)>,
}

/// A reply waiting in a connection's ordered queue.  Like
/// [`cphash_kvproto::Reply`] but holding the value as [`cphash::ValueBytes`]
/// so lookup hits move the table's copy straight through to the output
/// buffer without an intermediate allocation.
struct OutReply {
    status: Status,
    code: ErrCode,
    value: cphash::ValueBytes,
}

impl OutReply {
    fn ok() -> Self {
        Self::ok_value(cphash::ValueBytes::from_slice(&[]))
    }

    fn ok_value(value: cphash::ValueBytes) -> Self {
        OutReply {
            status: Status::Ok,
            code: ErrCode::None,
            value,
        }
    }

    fn ok_bytes(value: &[u8]) -> Self {
        Self::ok_value(cphash::ValueBytes::from_slice(value))
    }

    fn miss() -> Self {
        OutReply {
            status: Status::Miss,
            code: ErrCode::None,
            value: cphash::ValueBytes::from_slice(&[]),
        }
    }

    /// Wire-level overload shed: the (v2) client resubmits transparently.
    fn retry() -> Self {
        OutReply {
            status: Status::Retry,
            code: ErrCode::None,
            value: cphash::ValueBytes::from_slice(&[]),
        }
    }

    fn err(code: ErrCode, message: &[u8]) -> Self {
        OutReply {
            status: Status::Err,
            code,
            value: cphash::ValueBytes::from_slice(message),
        }
    }
}

/// State of one response-bearing request, kept in arrival order so the
/// connection's responses go out in request order (correlation on this
/// wire is by ordering, v1 and v2 alike).
enum ReplyState {
    /// Deferred behind an in-flight write of the same key; not submitted.
    WaitingWrite,
    /// Submitted to the hash table (or admin thread); result not yet known.
    Submitted,
    /// Result known; written out once it reaches the queue head.
    Done(OutReply),
}

/// One queued response slot on a connection.
struct PendingReply {
    seq: u64,
    state: ReplyState,
    /// When the request was decoded, for the client-observed latency
    /// window (the migration pacer's latency-feedback signal); only
    /// stamped when latency-feedback pacing is configured.
    at: Option<Instant>,
}

/// One connection plus its ordered queue of unanswered requests.
struct ConnState {
    conn: Connection,
    next_seq: u64,
    replies: std::collections::VecDeque<PendingReply>,
    /// Whether to clock-stamp requests for the latency window.
    stamp_latency: bool,
    /// Whether to prefetch reply value bytes ahead of the wire copy.
    prefetch: bool,
}

impl ConnState {
    fn new(conn: Connection, stamp_latency: bool, prefetch: bool) -> Self {
        ConnState {
            conn,
            next_seq: 0,
            replies: std::collections::VecDeque::new(),
            stamp_latency,
            prefetch,
        }
    }

    fn enqueue(&mut self, state: ReplyState) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.replies.push_back(PendingReply {
            seq,
            state,
            at: self.stamp_latency.then(Instant::now),
        });
        seq
    }

    /// Mark a deferred lookup as submitted (its blocking write finished and
    /// the lookup has now been sent to the hash table).
    fn resolve_waiting(&mut self, seq: u64) {
        if let Some(entry) = self.replies.iter_mut().find(|p| p.seq == seq) {
            if matches!(entry.state, ReplyState::WaitingWrite) {
                entry.state = ReplyState::Submitted;
            }
        }
    }

    fn resolve(&mut self, seq: u64, reply: OutReply) {
        if let Some(entry) = self.replies.iter_mut().find(|p| p.seq == seq) {
            entry.state = ReplyState::Done(reply);
        }
    }

    /// Write out every response whose predecessors have all been written,
    /// recording each request's decode→reply latency into the shared
    /// window when one is attached (latency-feedback pacing only — the
    /// window is a cross-worker mutex, so it is not touched when nothing
    /// would ever sample it).  Returns how many responses were queued.
    fn flush_ready_responses(&mut self, latency: Option<&SharedLatencyWindow>) -> usize {
        // First pass: hint every cache line of the Done-prefix values that
        // the loop below will copy onto the wire.  The worker itself copied
        // these values out of shared table memory when it drained the
        // completions (`pump_lane`), but under deep pipelines a batch of
        // 1 KiB values overflows L1 and the oldest lines may have cooled by
        // flush time; hints on still-resident lines are a cycle each, so
        // the pass is near-free when nothing cooled (the cross-core miss
        // itself is hidden earlier, by `pump_lane`'s batched prefetch over
        // the response pointers).
        if self.prefetch {
            for entry in self.replies.iter() {
                let ReplyState::Done(reply) = &entry.state else {
                    break; // the flush loop stops at the first non-Done too
                };
                prefetch_value_lines(reply.value.as_slice());
            }
        }
        let mut wrote = 0usize;
        while matches!(
            self.replies.front(),
            Some(PendingReply {
                state: ReplyState::Done(_),
                ..
            })
        ) {
            let entry = self.replies.pop_front().expect("front checked");
            let ReplyState::Done(reply) = entry.state else {
                unreachable!()
            };
            if let (Some(window), Some(at)) = (latency, entry.at) {
                window.record_ns(at.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            self.conn
                .queue_reply_parts(reply.status, reply.code, reply.value.as_slice());
            wrote += 1;
        }
        wrote
    }
}

/// Where a completed lookup's reply goes, plus the byte key to verify
/// against the stored envelope (byte-keyed lookups only).
struct LookupTarget {
    conn: usize,
    seq: u64,
    bytekey: Option<Vec<u8>>,
}

/// Where a completed write's reply goes (v2 connections answer every
/// request; v1 inserts keep their fire-and-forget silence).
struct WriteTarget {
    /// The 60-bit hash key, for per-key in-flight accounting.
    key: u64,
    /// Reply slot, or `None` for silent v1 inserts (and retired
    /// connections).
    reply: Option<(usize, u64)>,
}

/// Hint every cache line a reply value occupies, so the wire copy that
/// follows overlaps its misses instead of paying them one line at a time.
#[inline]
fn prefetch_value_lines(bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    let start = bytes.as_ptr() as usize;
    let end = start + bytes.len();
    let mut line = start & !(cphash_cacheline::CACHE_LINE_SIZE - 1);
    while line < end {
        cphash_cacheline::prefetch_read(line as *const u8);
        line += cphash_cacheline::CACHE_LINE_SIZE;
    }
}

/// Turn an admin status string into a typed reply (the coordinator reports
/// errors as `ERR ...` strings).
fn admin_reply(status: String) -> OutReply {
    if status.starts_with("ERR") {
        OutReply::err(ErrCode::Admin, status.as_bytes())
    } else {
        OutReply::ok_bytes(status.as_bytes())
    }
}

/// One CPSERVER client thread: waits for readiness on its connections,
/// drains every ready connection fully, ships the gathered requests to the
/// CPHash servers, and writes responses back.
///
/// The loop only sleeps (in the reactor) when it is *quiescent*: no
/// hash-table operations in flight, no ordered responses waiting and no
/// admin commands pending.  Everything that can unblock it from outside is
/// a readiness event — socket bytes, socket writability for back-logged
/// output, or the acceptor's waker — so idle connections cost nothing.
#[allow(clippy::too_many_arguments)] // one call site, spawned per worker
fn client_worker(
    mut handle: ClientHandle,
    inbox: WorkerInbox,
    listener: Option<TcpListener>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    batch: usize,
    admin: Option<mpsc::Sender<AdminRequest>>,
    frontend: FrontendKind,
    max_protocol: u8,
    overload_retry: Option<usize>,
    record_latency: bool,
    reply_prefetch: bool,
) {
    let mut reactor = Reactor::new(frontend, Arc::clone(&metrics.frontend));
    if let Some(fd) = inbox.waker.fd() {
        let _ = reactor.register(fd, WAKER_TOKEN, false);
    }
    // Sharded accept path: this worker owns one of the SO_REUSEPORT
    // listeners (with io_uring the backend accepts in-kernel via
    // multishot accept and hands finished fds over `take_accepted`).
    if let Some(l) = listener.as_ref() {
        let _ = reactor.register_listener(raw_fd_of(l), LISTENER_TOKEN);
    }
    let mut accepted: Vec<TcpStream> = Vec::new();
    // Connection slab: indices stay stable (they double as reactor tokens)
    // so in-flight tokens can refer to their connection even as others
    // close.
    let mut connections: Vec<Option<ConnState>> = Vec::new();
    // Lookup token -> reply slot (+ byte key for envelope verification).
    let mut lookup_tokens: HashMap<u64, LookupTarget> = HashMap::new();
    // Write token -> key + reply slot, plus per-key in-flight accounting,
    // to provide read-your-writes ordering on a connection: the CPHash
    // insert is a two-phase protocol (allocate, then copy + Ready), so a
    // lookup for a key whose write is still in flight is deferred until
    // the write completes rather than racing it to the server thread.
    let mut write_tokens: HashMap<u64, WriteTarget> = HashMap::new();
    let mut inflight_writes: HashMap<u64, InflightWrites> = HashMap::new();
    // Resize admin commands awaiting the coordinator's answer, resolved
    // against the connection's ordered response queue like lookups.
    let mut pending_admin: Vec<(usize, u64, mpsc::Receiver<String>)> = Vec::new();
    let mut requests = Vec::with_capacity(256);
    let mut completions = Vec::with_capacity(256);
    let mut ready: Vec<usize> = Vec::with_capacity(256);
    // Connection slots whose response path must run this iteration.
    let mut touched: Vec<usize> = Vec::new();
    // Ordered responses not yet queued for writing (lookups awaiting their
    // completion, or blocked behind one that is).  While nonzero the worker
    // must keep polling the completion rings instead of sleeping.
    let mut waiting_responses: usize = 0;

    // relaxed: stop flag; shutdown needs no ordering
    while !stop.load(Ordering::Relaxed) {
        // Sleep only when nothing can complete without a readiness event.
        // While a resize is the *only* thing in flight (its reply arrives on
        // an mpsc channel, not an fd), nap briefly instead of hot-spinning:
        // a paced migration can take minutes.
        let quiescent =
            handle.outstanding() == 0 && pending_admin.is_empty() && waiting_responses == 0;
        let timeout = if quiescent {
            Some(Duration::from_millis(25))
        } else if handle.outstanding() == 0 && !pending_admin.is_empty() {
            Some(Duration::from_millis(1))
        } else {
            None
        };
        ready.clear();
        let _ = reactor.wait(&mut ready, timeout);
        touched.clear();

        // Adopt newly assigned connections (the waker made a sleeping
        // reactor return; the channel itself is checked every iteration).
        // The waker must be drained *before* the channel is polled: drained
        // after, a hand-off landing between the two steps would have its
        // wake-up consumed and sit unadopted through the next sleep.
        if ready.contains(&WAKER_TOKEN) {
            inbox.waker.drain();
        }
        while let Ok(stream) = inbox.receiver.try_recv() {
            let adopted = Connection::with_max_protocol(stream, max_protocol).is_ok_and(|conn| {
                crate::connection::adopt(
                    &mut connections,
                    &mut reactor,
                    &mut ready,
                    ConnState::new(conn, record_latency, reply_prefetch),
                    |state| &state.conn,
                )
            });
            if adopted {
                metrics.note_connection();
            } else {
                inbox.active.fetch_sub(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
            }
        }

        // Sharded accept path: adopt connections straight off this
        // worker's own listener.  Adoption pushes the new tokens into
        // `ready` mid-iteration, so a connection that already has bytes
        // buffered is served by the dispatch loop just below.
        if let Some(l) = listener.as_ref() {
            if ready.contains(&LISTENER_TOKEN) {
                drain_accepts(l, &mut reactor, LISTENER_TOKEN, &mut accepted);
                for stream in accepted.drain(..) {
                    // Keep the active gauge balanced with the retire path
                    // even though nothing load-balances on it here.
                    inbox.active.fetch_add(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                    let adopted =
                        Connection::with_max_protocol(stream, max_protocol).is_ok_and(|conn| {
                            crate::connection::adopt(
                                &mut connections,
                                &mut reactor,
                                &mut ready,
                                ConnState::new(conn, record_latency, reply_prefetch),
                                |state| &state.conn,
                            )
                        });
                    if adopted {
                        metrics.note_connection();
                    } else {
                        inbox.active.fetch_sub(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                    }
                }
            }
        }

        // Drain every ready connection fully and forward its requests to
        // the hash-table servers without waiting for answers.
        for &idx in ready.iter() {
            if idx == WAKER_TOKEN || idx == LISTENER_TOKEN {
                continue; // drained above, before the inbox poll
            }
            let Some(state) = connections.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            touched.push(idx);
            if handle.outstanding() >= batch {
                // Window full: leave the bytes in the socket.  The
                // level-triggered reactor reports the connection again once
                // completions free the window (and the worker will not
                // sleep while operations are outstanding).
                continue;
            }
            requests.clear();
            let read = state.conn.poll_requests(&mut requests);
            metrics.note_io(read, 0);
            for request in requests.drain(..) {
                let wants_response = request.wants_response;
                let cphash_kvproto::OpFrame { kind, key, value } = request.frame;
                // Overload shedding: past the configured in-flight
                // threshold, answer v2 *lookups* with a wire-level `Retry`
                // instead of absorbing them — the client's
                // transparent-resubmission path (`RemoteClient`) re-sends
                // them when the server has room again.  Writes are never
                // shed: a resubmitted write would re-enter the pipeline
                // *behind* later same-key operations, breaking the
                // per-connection read-your-writes ordering the
                // `inflight_writes` deferral machinery guarantees.  A shed
                // lookup keeps that guarantee — resubmitted late it lands
                // after the write it followed (or gets deferred behind it
                // on arrival, like any other lookup).  A lookup pipelined
                // *ahead of* a later same-key write may observe that write
                // after resubmission; reads racing writes the client chose
                // to pipeline behind them carry no ordering promise
                // anywhere in this system (the in-process client's
                // migration-retry resubmission has the same property).
                // v1 connections cannot express `Retry` and are absorbed
                // as before.
                if kind == OpKind::Lookup
                    && wants_response
                    && state.conn.version() >= cphash_kvproto::VERSION_2
                    && overload_retry.is_some_and(|threshold| handle.outstanding() >= threshold)
                {
                    metrics.note_retry_emitted();
                    waiting_responses += 1;
                    let seq = state.enqueue(ReplyState::Submitted);
                    state.resolve(seq, OutReply::retry());
                    continue;
                }
                match kind {
                    OpKind::Lookup => {
                        waiting_responses += 1;
                        let (hash, bytekey) = match key {
                            WireKey::Hash(k) => (k, None),
                            WireKey::Bytes(b) => (envelope::hash_key(&b), Some(b)),
                        };
                        if let Some(pending) = inflight_writes.get_mut(&hash) {
                            let seq = state.enqueue(ReplyState::WaitingWrite);
                            pending.deferred.push((idx, seq, bytekey));
                        } else {
                            let seq = state.enqueue(ReplyState::Submitted);
                            let token = handle.submit_lookup(hash);
                            lookup_tokens.insert(
                                token,
                                LookupTarget {
                                    conn: idx,
                                    seq,
                                    bytekey,
                                },
                            );
                        }
                    }
                    OpKind::Insert => {
                        // Byte keys are stored as §8.2 envelopes under
                        // their hash so the server can verify collisions
                        // at lookup time.
                        let (hash, stored) = envelope::stored_form(&key, &value);
                        metrics.note_insert();
                        // The envelope may push a near-limit value past
                        // MAX_VALUE_BYTES; storing it would later produce
                        // replies no client decoder accepts.  Refuse
                        // up-front (byte keys are v2-only, so there is
                        // always a reply slot to carry the error).
                        if stored.len() > cphash_kvproto::MAX_VALUE_BYTES {
                            if wants_response {
                                waiting_responses += 1;
                                let seq = state.enqueue(ReplyState::Submitted);
                                state.resolve(
                                    seq,
                                    OutReply::err(
                                        ErrCode::Capacity,
                                        b"ERR enveloped value exceeds the protocol limit",
                                    ),
                                );
                            }
                            continue;
                        }
                        let reply = if wants_response {
                            waiting_responses += 1;
                            Some((idx, state.enqueue(ReplyState::Submitted)))
                        } else {
                            None
                        };
                        let token = handle.submit_insert(hash, &stored);
                        write_tokens.insert(token, WriteTarget { key: hash, reply });
                        inflight_writes.entry(hash).or_default().count += 1;
                    }
                    OpKind::Delete => {
                        let hash = key.hash();
                        let reply = if wants_response {
                            waiting_responses += 1;
                            Some((idx, state.enqueue(ReplyState::Submitted)))
                        } else {
                            None
                        };
                        let token = handle.submit_delete(hash);
                        write_tokens.insert(token, WriteTarget { key: hash, reply });
                        inflight_writes.entry(hash).or_default().count += 1;
                        metrics.note_delete();
                    }
                    OpKind::Stats => {
                        // v2-only admin op: resolve immediately through the
                        // ordered reply FIFO with the full metrics snapshot
                        // in Prometheus text format as the reply value.
                        metrics.note_stats();
                        waiting_responses += 1;
                        let seq = state.enqueue(ReplyState::Submitted);
                        let text = metrics.render_prometheus();
                        state.resolve(
                            seq,
                            OutReply::ok_value(cphash::ValueBytes::from_slice(text.as_bytes())),
                        );
                    }
                    OpKind::Resize => {
                        metrics.note_admin();
                        waiting_responses += 1;
                        let seq = state.enqueue(ReplyState::Submitted);
                        // A byte-keyed resize is nonsense; refuse it here
                        // rather than bouncing it off the admin thread.
                        let WireKey::Hash(packed) = key else {
                            state.resolve(
                                seq,
                                OutReply::err(
                                    ErrCode::Unsupported,
                                    b"ERR resize takes a packed hash key",
                                ),
                            );
                            continue;
                        };
                        let Some(admin) = admin.as_ref() else {
                            state.resolve(
                                seq,
                                OutReply::err(
                                    ErrCode::Unsupported,
                                    b"ERR resize disabled (start with --max-partitions)",
                                ),
                            );
                            continue;
                        };
                        let (reply_tx, reply_rx) = mpsc::channel();
                        let sent = admin
                            .send(AdminRequest {
                                new_partitions: resize_partitions(packed),
                                chunks_per_sec: resize_chunks_per_sec(packed),
                                reply: reply_tx,
                            })
                            .is_ok();
                        if sent {
                            pending_admin.push((idx, seq, reply_rx));
                        } else {
                            state.resolve(
                                seq,
                                OutReply::err(ErrCode::Admin, b"ERR admin unavailable"),
                            );
                        }
                    }
                }
            }
        }

        // Resolve finished resize commands against their connections.
        let touched_ref = &mut touched;
        pending_admin.retain(|(conn_idx, seq, reply_rx)| match reply_rx.try_recv() {
            Ok(status) => {
                if let Some(state) = connections.get_mut(*conn_idx).and_then(|c| c.as_mut()) {
                    state.resolve(*seq, admin_reply(status));
                    touched_ref.push(*conn_idx);
                }
                false
            }
            Err(mpsc::TryRecvError::Empty) => true,
            Err(mpsc::TryRecvError::Disconnected) => {
                if let Some(state) = connections.get_mut(*conn_idx).and_then(|c| c.as_mut()) {
                    state.resolve(
                        *seq,
                        OutReply::err(ErrCode::Admin, b"ERR admin unavailable"),
                    );
                    touched_ref.push(*conn_idx);
                }
                false
            }
        });

        // Collect hash-table completions and resolve them against the
        // per-connection ordered reply queues.
        completions.clear();
        handle.poll(&mut completions);
        for completion in completions.drain(..) {
            match completion.kind {
                CompletionKind::LookupHit(value) => {
                    let target = lookup_tokens.remove(&completion.token);
                    // Byte-keyed lookups carry the §8.2 envelope: check the
                    // stored key and read collisions as misses.  Count the
                    // lookup even when its connection already retired (its
                    // token is gone and bytekey unknowable: count the raw
                    // table hit, as the pre-v2 server did).
                    let reply = match target.as_ref().and_then(|t| t.bytekey.as_deref()) {
                        None => OutReply::ok_value(value),
                        Some(wanted) => match envelope::unwrap_matching(value.as_slice(), wanted) {
                            Some(v) => OutReply::ok_bytes(v),
                            None => OutReply::miss(),
                        },
                    };
                    metrics.note_lookup(reply.status == Status::Ok);
                    if let Some(target) = target {
                        if let Some(state) = connections[target.conn].as_mut() {
                            state.resolve(target.seq, reply);
                            touched.push(target.conn);
                        }
                    }
                }
                CompletionKind::LookupMiss => {
                    metrics.note_lookup(false);
                    if let Some(target) = lookup_tokens.remove(&completion.token) {
                        if let Some(state) = connections[target.conn].as_mut() {
                            state.resolve(target.seq, OutReply::miss());
                            touched.push(target.conn);
                        }
                    }
                }
                CompletionKind::Inserted
                | CompletionKind::InsertFailed
                | CompletionKind::Deleted(_)
                | CompletionKind::Failed(_) => {
                    let Some(target) = write_tokens.remove(&completion.token) else {
                        continue;
                    };
                    // v2 connections get a typed answer for every write;
                    // v1 inserts stay silent (reply slot never created).
                    if let Some((conn_idx, seq)) = target.reply {
                        if let Some(state) = connections.get_mut(conn_idx).and_then(|c| c.as_mut())
                        {
                            let reply = match &completion.kind {
                                CompletionKind::Inserted => OutReply::ok(),
                                CompletionKind::InsertFailed => {
                                    OutReply::err(ErrCode::Capacity, b"ERR table out of capacity")
                                }
                                CompletionKind::Deleted(true) => OutReply::ok(),
                                CompletionKind::Deleted(false) => OutReply::miss(),
                                _ => OutReply::err(ErrCode::Internal, b"ERR internal"),
                            };
                            state.resolve(seq, reply);
                            touched.push(conn_idx);
                        }
                    }
                    // A finished write releases lookups for the same key
                    // that were deferred to preserve read-your-writes
                    // ordering.
                    let finished = match inflight_writes.get_mut(&target.key) {
                        Some(pending) => {
                            pending.count -= 1;
                            pending.count == 0
                        }
                        None => false,
                    };
                    if finished {
                        if let Some(pending) = inflight_writes.remove(&target.key) {
                            for (conn_idx, seq, bytekey) in pending.deferred {
                                if connections
                                    .get(conn_idx)
                                    .map(|c| c.is_some())
                                    .unwrap_or(false)
                                {
                                    let token = handle.submit_lookup(target.key);
                                    lookup_tokens.insert(
                                        token,
                                        LookupTarget {
                                            conn: conn_idx,
                                            seq,
                                            bytekey,
                                        },
                                    );
                                    if let Some(state) = connections[conn_idx].as_mut() {
                                        state.resolve_waiting(seq);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // Write out in-order responses on every connection something
        // happened to this iteration, keep the reactor's write interest in
        // sync with back-logged output, and retire closed connections.
        touched.sort_unstable();
        touched.dedup();
        for &idx in touched.iter() {
            let Some(state) = connections[idx].as_mut() else {
                continue;
            };
            waiting_responses -=
                state.flush_ready_responses(record_latency.then_some(&*metrics.latency));
            let (written, verdict) = crate::connection::settle(&mut state.conn, &mut reactor, idx);
            metrics.note_io(0, written);
            if verdict == crate::connection::Settle::Retired {
                waiting_responses -= state.replies.len();
                connections[idx] = None;
                inbox.active.fetch_sub(1, Ordering::Relaxed); // relaxed: load-balance gauge; staleness is benign
                lookup_tokens.retain(|_, t| t.conn != idx);
                // In-flight writes keep their per-key accounting (the
                // table operation still completes) but lose their reply
                // slot: the slot (and its per-connection sequence numbers)
                // can be reused, and a late completion must not resolve
                // against a successor connection's request of the same seq.
                for target in write_tokens.values_mut() {
                    if target.reply.is_some_and(|(c, _)| c == idx) {
                        target.reply = None;
                    }
                }
                for pending in inflight_writes.values_mut() {
                    pending.deferred.retain(|(c, _, _)| *c != idx);
                }
                // Admin replies must die with the connection for the same
                // reason.
                pending_admin.retain(|(c, _, _)| *c != idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{encode_insert, encode_lookup, ResponseDecoder};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn lookup_roundtrip(
        stream: &mut TcpStream,
        decoder: &mut ResponseDecoder,
        key: u64,
    ) -> Option<Vec<u8>> {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, key);
        stream.write_all(&wire).unwrap();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(resp) = decoder.next_response().unwrap() {
                return resp.value;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed the connection");
            decoder.feed(&buf[..n]);
        }
    }

    #[test]
    fn serves_inserts_and_lookups_over_tcp() {
        let mut server = CpServer::start(CpServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();

        // Miss first.
        assert_eq!(lookup_roundtrip(&mut stream, &mut decoder, 99), None);
        // Insert then hit.
        let mut wire = BytesMut::new();
        encode_insert(&mut wire, 99, b"cached value");
        stream.write_all(&wire).unwrap();
        // Inserts have no response; a subsequent lookup must observe the
        // value (it travels the same connection, so ordering holds).
        let got = lookup_roundtrip(&mut stream, &mut decoder, 99);
        assert_eq!(got.as_deref(), Some(&b"cached value"[..]));

        assert!(server.metrics().requests() >= 3);
        assert!(server.table_stats().inserts >= 1 || server.metrics().requests() >= 3);
        server.shutdown();
    }

    #[test]
    fn many_connections_and_interleaved_clients() {
        let mut server = CpServer::start(CpServerConfig {
            client_threads: 2,
            partitions: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.set_nodelay(true).unwrap();
                    let mut decoder = ResponseDecoder::new();
                    for i in 0..200u64 {
                        let key = t * 1_000 + i;
                        let mut wire = BytesMut::new();
                        encode_insert(&mut wire, key, &key.to_le_bytes());
                        stream.write_all(&wire).unwrap();
                    }
                    for i in 0..200u64 {
                        let key = t * 1_000 + i;
                        let got = lookup_roundtrip(&mut stream, &mut decoder, key);
                        assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(server.metrics().hit_rate() > 0.99);
        server.shutdown();
    }

    #[test]
    fn overloaded_server_sheds_with_wire_level_retry() {
        use cphash::{CompletionKind, KeyRef, KvClient, KvOp, RemoteClient};
        // Threshold 1: any pipelined read depth beyond a single in-flight
        // op is answered with a wire-level Retry, which RemoteClient
        // resubmits transparently — so every operation still completes
        // correctly.  Writes are never shed.
        let mut server = CpServer::start(CpServerConfig {
            overload_retry: Some(1),
            ..Default::default()
        })
        .unwrap();
        let mut client = RemoteClient::connect(server.addr()).unwrap();
        assert_eq!(client.protocol_version(), 2);
        const N: u64 = 400;
        for key in 0..N {
            client.submit(KvOp::Insert(KeyRef::Hash(key), &key.to_le_bytes()));
        }
        let mut completions = Vec::new();
        client.drain_completions(&mut completions).unwrap();
        assert_eq!(completions.len(), N as usize);
        // A deep pipeline of lookups crosses the shed threshold; every one
        // must still complete as the correct hit.
        for key in 0..N {
            client.submit(KvOp::Get(KeyRef::Hash(key)));
        }
        completions.clear();
        client.drain_completions(&mut completions).unwrap();
        assert_eq!(completions.len(), N as usize);
        for completion in &completions {
            assert!(
                matches!(completion.kind, CompletionKind::LookupHit(_)),
                "shed lookup completed as {:?}",
                completion.kind
            );
        }
        assert!(
            server.metrics().retries_emitted() > 0,
            "a deeply pipelined reader must have been shed at least once"
        );
        assert!(
            client.retries() > 0,
            "the client must have resubmitted shed operations"
        );
        server.shutdown();
    }

    #[test]
    fn shedding_preserves_read_your_writes_ordering() {
        use cphash::{CompletionKind, KeyRef, KvClient, KvOp, RemoteClient};
        // Interleaved dependent pairs under a shed-happy server: a lookup
        // pipelined right behind its own key's insert must never observe a
        // miss (writes are not shed, and a shed lookup resubmits *after*
        // the write, where the inflight-write deferral still covers it).
        let mut server = CpServer::start(CpServerConfig {
            overload_retry: Some(1),
            ..Default::default()
        })
        .unwrap();
        let mut client = RemoteClient::connect(server.addr()).unwrap();
        assert_eq!(client.protocol_version(), 2);
        let mut get_tokens = Vec::new();
        for key in 0..200u64 {
            client.submit(KvOp::Insert(KeyRef::Hash(key), &(key ^ 0xAB).to_le_bytes()));
            get_tokens.push((key, client.submit(KvOp::Get(KeyRef::Hash(key)))));
        }
        let mut completions = Vec::new();
        client.drain_completions(&mut completions).unwrap();
        for (key, token) in get_tokens {
            let completion = completions
                .iter()
                .find(|c| c.token == token)
                .expect("completion for the read");
            match &completion.kind {
                CompletionKind::LookupHit(v) => {
                    assert_eq!(v.as_slice(), (key ^ 0xAB).to_le_bytes(), "key {key}")
                }
                other => panic!("read-after-write of key {key} completed as {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn v1_clients_are_never_shed() {
        // v1 cannot express Retry; with shedding configured the server must
        // keep absorbing v1 traffic as before.
        let mut server = CpServer::start(CpServerConfig {
            overload_retry: Some(1),
            ..Default::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        // Pipeline a burst of v1 inserts (silent) and lookups.
        let mut wire = BytesMut::new();
        for key in 0..100u64 {
            encode_insert(&mut wire, key, &key.to_le_bytes());
        }
        stream.write_all(&wire).unwrap();
        for key in 0..100u64 {
            let got = lookup_roundtrip(&mut stream, &mut decoder, key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
        }
        assert_eq!(server.metrics().retries_emitted(), 0);
        server.shutdown();
    }

    #[test]
    fn batch_pipeline_counters_are_visible_through_metrics() {
        let mut server = CpServer::start(CpServerConfig {
            pipeline: cphash::ServerPipeline::BatchedPrefetch,
            batch_size: 16,
            ..Default::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        let mut wire = BytesMut::new();
        for key in 0..500u64 {
            encode_insert(&mut wire, key, &key.to_le_bytes());
        }
        stream.write_all(&wire).unwrap();
        for key in 0..500u64 {
            let got = lookup_roundtrip(&mut stream, &mut decoder, key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]));
        }
        let batch = server.metrics().batch_stats();
        assert!(batch.batches > 0, "staged rounds must have run: {batch:?}");
        assert!(batch.ops >= 1_000, "every data op runs batched: {batch:?}");
        assert!(batch.avg_occupancy() >= 1.0);
        server.shutdown();
    }

    #[test]
    fn latency_feedback_resize_completes_and_samples_the_window() {
        use cphash_kvproto::encode_resize;
        let mut server = CpServer::start(CpServerConfig {
            partitions: 2,
            max_partitions: 4,
            migration_pacing: MigrationPacing::FeedbackLatency {
                chunks_per_sec: 5_000.0,
                high_p99_us: 50_000.0,
                low_p99_us: 10_000.0,
            },
            ..Default::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        for key in 0..300u64 {
            let mut wire = BytesMut::new();
            encode_insert(&mut wire, key, &key.to_le_bytes());
            stream.write_all(&wire).unwrap();
        }
        // Lookups populate the latency window the pacer samples.
        for key in 0..300u64 {
            let got = lookup_roundtrip(&mut stream, &mut decoder, key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]));
        }
        let mut wire = BytesMut::new();
        encode_resize(&mut wire, 4);
        stream.write_all(&wire).unwrap();
        let status = {
            let mut buf = [0u8; 4096];
            loop {
                if let Some(resp) = decoder.next_response().unwrap() {
                    break String::from_utf8(resp.value.expect("status string")).unwrap();
                }
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0);
                decoder.feed(&buf[..n]);
            }
        };
        assert!(
            status.starts_with("partitions=4"),
            "unexpected status {status:?}"
        );
        // Every key survives the latency-paced transition.
        for key in 0..300u64 {
            let got = lookup_roundtrip(&mut stream, &mut decoder, key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
        }
        server.shutdown();
    }

    #[test]
    fn static_servers_refuse_resize_frames() {
        use cphash_kvproto::encode_resize;
        // Default config: max_partitions == 0, table declared static.
        let mut server = CpServer::start(CpServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        // Even a *shrink* (which the router could technically satisfy) must
        // be refused on a static table.
        let mut wire = BytesMut::new();
        encode_resize(&mut wire, 1);
        stream.write_all(&wire).unwrap();
        let mut buf = [0u8; 256];
        let status = loop {
            if let Some(resp) = decoder.next_response().unwrap() {
                break String::from_utf8(resp.value.expect("status string")).unwrap();
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0);
            decoder.feed(&buf[..n]);
        };
        assert!(
            status.starts_with("ERR resize disabled"),
            "unexpected status {status:?}"
        );
        // The data path is unaffected.
        let mut wire = BytesMut::new();
        encode_insert(&mut wire, 5, b"still works");
        stream.write_all(&wire).unwrap();
        let got = lookup_roundtrip(&mut stream, &mut decoder, 5);
        assert_eq!(got.as_deref(), Some(&b"still works"[..]));
        server.shutdown();
    }

    #[test]
    fn paced_resize_over_the_wire_reports_paced_waits() {
        use cphash_kvproto::encode_resize_paced;
        let mut server = CpServer::start(CpServerConfig {
            partitions: 2,
            max_partitions: 4,
            ..Default::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        for key in 0..200u64 {
            let mut wire = BytesMut::new();
            encode_insert(&mut wire, key, &key.to_le_bytes());
            stream.write_all(&wire).unwrap();
        }
        // Resize 2 -> 4 with an explicit budget of 250 chunk hand-offs/sec
        // (64 chunks ≈ 256 ms minimum — well above the unpaced hand-off
        // latency, so the bucket must actually delay), overriding the
        // server's default (unpaced) configuration.
        let mut wire = BytesMut::new();
        encode_resize_paced(&mut wire, 4, 250);
        stream.write_all(&wire).unwrap();
        let status = {
            let mut buf = [0u8; 4096];
            loop {
                if let Some(resp) = decoder.next_response().unwrap() {
                    break String::from_utf8(resp.value.expect("status string")).unwrap();
                }
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0, "server closed the connection");
                decoder.feed(&buf[..n]);
            }
        };
        assert!(
            status.starts_with("partitions=4"),
            "unexpected status {status:?}"
        );
        let paced_waits: u64 = status
            .split_whitespace()
            .find_map(|f| f.strip_prefix("paced_waits="))
            .expect("status reports paced_waits")
            .parse()
            .unwrap();
        assert!(
            paced_waits > 0,
            "a finite budget must delay some hand-offs: {status:?}"
        );
        // Data still intact after the paced transition.
        for key in 0..200u64 {
            let got = lookup_roundtrip(&mut stream, &mut decoder, key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
        }
        server.shutdown();
    }

    #[test]
    fn resize_admin_command_repartitions_the_live_server() {
        use cphash_kvproto::encode_resize;
        let mut server = CpServer::start(CpServerConfig {
            partitions: 2,
            max_partitions: 4,
            ..Default::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();

        // Populate, then resize 2 -> 4 over the wire.
        for key in 0..500u64 {
            let mut wire = BytesMut::new();
            encode_insert(&mut wire, key, &key.to_le_bytes());
            stream.write_all(&wire).unwrap();
        }
        let mut wire = BytesMut::new();
        encode_resize(&mut wire, 4);
        stream.write_all(&wire).unwrap();
        let status = {
            let mut buf = [0u8; 4096];
            loop {
                if let Some(resp) = decoder.next_response().unwrap() {
                    break String::from_utf8(resp.value.expect("status string")).unwrap();
                }
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0, "server closed the connection");
                decoder.feed(&buf[..n]);
            }
        };
        assert!(
            status.starts_with("partitions=4"),
            "unexpected status {status:?}"
        );

        // Every key must still be served after the live repartition.
        for key in 0..500u64 {
            let got = lookup_roundtrip(&mut stream, &mut decoder, key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
        }

        // Out-of-range and mid-size resizes report errors over the wire.
        let mut wire = BytesMut::new();
        encode_resize(&mut wire, 64);
        stream.write_all(&wire).unwrap();
        let status = {
            let mut buf = [0u8; 4096];
            loop {
                if let Some(resp) = decoder.next_response().unwrap() {
                    break String::from_utf8(resp.value.expect("status string")).unwrap();
                }
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0);
                decoder.feed(&buf[..n]);
            }
        };
        assert!(status.starts_with("ERR"), "unexpected status {status:?}");
        assert_eq!(server.metrics().snapshot().admin_commands, 2);
        server.shutdown();
    }
}
