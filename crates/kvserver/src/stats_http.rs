//! A minimal HTTP/1.0 stats endpoint serving Prometheus text exposition.
//!
//! One extra thread per server, driven by the same [`Reactor`] abstraction
//! as the request front-end: the listener and every in-flight scrape
//! connection sit on one readiness loop, so the endpoint costs nothing
//! while nobody scrapes.  The protocol support is deliberately tiny —
//! `GET /metrics` answers `200 text/plain; version=0.0.4` with the full
//! registry rendering, anything else answers `404`, and every response
//! closes the connection — which is all a Prometheus scraper (or `curl`)
//! needs.

use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{FrontendStats, ServerMetrics};
use crate::reactor::{raw_fd_of, FrontendKind, Reactor};

/// Reactor token for the listening socket (connection tokens are slab
/// indices, far below this).
const LISTENER_TOKEN: usize = usize::MAX - 1;

/// Maximum bytes of request head we accept before giving up on a client.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// One in-flight scrape connection.
struct ScrapeConn {
    stream: TcpStream,
    /// Request bytes read so far (until the blank line ends the head).
    request: Vec<u8>,
    /// Response bytes not yet written.
    response: Vec<u8>,
    /// How much of `response` has been written.
    written: usize,
}

impl ScrapeConn {
    fn new(stream: TcpStream) -> ScrapeConn {
        ScrapeConn {
            stream,
            request: Vec::with_capacity(256),
            response: Vec::new(),
            written: 0,
        }
    }
}

/// Spawn the stats endpoint on `addr`.  Returns the bound address (so
/// `port 0` binds can report what they got) and the serving thread's
/// handle; the thread exits when `stop` is raised.
pub fn spawn_stats_listener(
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("cphash-stats-http".into())
        .spawn(move || serve(listener, metrics, stop))
        .map_err(std::io::Error::other)?;
    Ok((bound, handle))
}

/// The endpoint's reactor loop.
fn serve(listener: TcpListener, metrics: Arc<ServerMetrics>, stop: Arc<AtomicBool>) {
    // The endpoint always uses the readiness backend when available (a
    // scraper arriving every few seconds is the opposite of a busy-poll
    // workload), with its *own* front-end stats block so scrape activity
    // never pollutes the server's reactor counters.
    let mut reactor = Reactor::new(FrontendKind::from_env(), Arc::new(FrontendStats::default()));
    if reactor
        .register(raw_fd_of(&listener), LISTENER_TOKEN, false)
        .is_err()
    {
        return;
    }
    let mut connections: Vec<Option<ScrapeConn>> = Vec::new();
    let mut ready: Vec<usize> = Vec::with_capacity(16);

    // relaxed: stop flag; shutdown needs no ordering
    while !stop.load(Ordering::Relaxed) {
        ready.clear();
        // A bounded wait keeps the stop flag responsive.
        let _ = reactor.wait(&mut ready, Some(Duration::from_millis(50)));
        for &token in &ready {
            if token == LISTENER_TOKEN {
                accept_all(&listener, &mut connections, &mut reactor);
                continue;
            }
            let Some(conn) = connections.get_mut(token).and_then(|c| c.as_mut()) else {
                continue;
            };
            match step(conn, &metrics) {
                Step::Continue => {}
                Step::NeedWrite => {
                    // The response outgrew the socket buffer: add write
                    // interest so the next readiness event drains it.
                    let fd = raw_fd_of(&conn.stream);
                    let _ = reactor.rearm(fd, token, true);
                }
                Step::Done => {
                    let fd = raw_fd_of(&conn.stream);
                    let _ = reactor.deregister(fd, token);
                    connections[token] = None;
                }
            }
        }
    }
}

/// Accept every pending connection and register it with the reactor.
fn accept_all(
    listener: &TcpListener,
    connections: &mut Vec<Option<ScrapeConn>>,
    reactor: &mut Reactor,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let slot = connections
                    .iter()
                    .position(|c| c.is_none())
                    .unwrap_or_else(|| {
                        connections.push(None);
                        connections.len() - 1
                    });
                let fd = raw_fd_of(&stream);
                connections[slot] = Some(ScrapeConn::new(stream));
                if reactor.register(fd, slot, false).is_err() {
                    connections[slot] = None;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

enum Step {
    /// Keep the connection registered as-is.
    Continue,
    /// A pending response hit a full socket buffer: add write interest.
    NeedWrite,
    /// Finished (or failed): retire the connection.
    Done,
}

/// Advance one connection: read until the request head completes, build the
/// response once, then write until it is flushed.
fn step(conn: &mut ScrapeConn, metrics: &ServerMetrics) -> Step {
    if conn.response.is_empty() {
        let mut buf = [0u8; 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => return Step::Done,
                Ok(n) => {
                    conn.request.extend_from_slice(&buf[..n]);
                    if conn.request.len() > MAX_REQUEST_BYTES {
                        return Step::Done;
                    }
                    if head_complete(&conn.request) {
                        conn.response = respond(&conn.request, metrics);
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Step::Continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Step::Done,
            }
        }
    }
    while conn.written < conn.response.len() {
        match conn.stream.write(&conn.response[conn.written..]) {
            Ok(0) => return Step::Done,
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Step::NeedWrite,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Step::Done,
        }
    }
    let _ = conn.stream.flush();
    Step::Done
}

/// Whether the request head (terminated by a blank line) has fully arrived.
fn head_complete(request: &[u8]) -> bool {
    request.windows(4).any(|w| w == b"\r\n\r\n") || request.windows(2).any(|w| w == b"\n\n")
}

/// Build the full response bytes for a request head.
fn respond(request: &[u8], metrics: &ServerMetrics) -> Vec<u8> {
    let head = String::from_utf8_lossy(request);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = metrics.render_prometheus();
        let mut out = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .into_bytes();
        out.extend_from_slice(body.as_bytes());
        out
    } else {
        let body = "not found\n";
        format!(
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_rejects_unknown_paths() {
        let metrics = Arc::new(ServerMetrics::new());
        metrics.note_lookup(true);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) = spawn_stats_listener(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&metrics),
            Arc::clone(&stop),
        )
        .unwrap();

        let ok = scrape(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");
        assert!(ok.contains("cphash_requests_total 1"), "{ok}");
        let body = ok.split("\r\n\r\n").nth(1).unwrap();
        cphash_perfmon::parse_prometheus_text(body).expect("served text parses");

        let missing = scrape(addr, "GET /nope HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
