//! Key/value cache servers: CPSERVER, LOCKSERVER and a memcached-style
//! baseline.
//!
//! §4 of the paper wraps both hash tables in a MEMCACHED-style TCP cache
//! server to show that the microbenchmark win survives contact with a real
//! application:
//!
//! * **CPSERVER** — client threads own TCP connections, gather batches of
//!   requests from them, ship the hash-table work to CPHash server threads
//!   over the message-passing lanes, then write the responses back to the
//!   right connections.  An acceptor thread assigns each new connection to
//!   the client thread with the fewest active connections.
//! * **LOCKSERVER** — the same connection plumbing, but worker threads
//!   execute operations directly against the lock-based table.
//! * **Memcached-style baseline** — §7 compares against stock memcached run
//!   as one instance per core with client-side key partitioning; here that
//!   is modelled by [`memcache::MemcacheCluster`]: independent instances,
//!   each a single store behind one global lock, no batching.
//!
//! All three speak the same binary protocol (`cphash-kvproto`), so the same
//! load generator (`cphash-loadgen::tcp`) drives all of them.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! All three front-ends are event-driven: each worker sits on a
//! [`reactor::Reactor`] (io_uring or epoll on Linux — with per-process
//! fallback uring → epoll → busy-poll — and a `--frontend poll` baseline
//! behind the same trait), so idle connections cost nothing and worker CPU
//! scales with requests served.  The accept path is sharded by default on
//! Linux: every worker owns a `SO_REUSEPORT` listener and the kernel
//! load-balances incoming connections across them ([`acceptor::AcceptPath`]).

pub mod acceptor;
pub mod connection;
pub mod cpserver;
pub mod lockserver;
pub mod memcache;
pub mod metrics;
pub mod reactor;
pub mod stats_http;
#[cfg(target_os = "linux")]
pub mod uring;

pub use acceptor::AcceptPath;
pub use cpserver::{CpServer, CpServerConfig};
pub use lockserver::{LockServer, LockServerConfig};
pub use memcache::{MemcacheCluster, MemcacheConfig};
pub use metrics::{FrontendStats, MigrationProgress, ServerMetrics, StatsSnapshot};
pub use reactor::{FrontendKind, Reactor};
pub use stats_http::spawn_stats_listener;
