//! io_uring readiness backend: batched submissions, bulk completion
//! drains, in-kernel multishot accept.
//!
//! The epoll backend pays one syscall per interest-list mutation
//! (`epoll_ctl` on every register/rearm/deregister) plus one `epoll_wait`
//! per wake-up.  Under connection churn the mutations dominate: a
//! short-lived connection costs at least an ADD and a DEL on top of its
//! data wake-ups.  This backend routes *everything* through the two
//! mmap'd io_uring queues instead:
//!
//! * Registrations, interest changes and deregistrations queue
//!   `POLL_ADD`/`POLL_REMOVE` SQEs in user space — **zero syscalls** at
//!   call time.  The next [`EventBackend::wait`] flushes the whole batch
//!   with the same single `io_uring_enter` that collects completions,
//!   mirroring the O(1)-atomics-per-batch discipline of the partition
//!   rings' `pop_batch`.
//! * Polls are **single-shot with a queued re-arm**: when a poll CQE is
//!   consumed, a fresh `POLL_ADD` is queued and flushed with the next
//!   wait's `enter` — still no dedicated syscall.  Single-shot matters
//!   for correctness, not just simplicity: a re-armed `POLL_ADD`
//!   re-evaluates the file's readiness mask at submit time, so unread
//!   data keeps the token firing (the level-triggered contract the
//!   workers share with the epoll backend), whereas a multishot poll
//!   only posts again on a *new* waitqueue wake-up and would go silent
//!   on partially-drained connections.
//! * Listening sockets use **multishot accept**: the kernel accepts
//!   connections directly and delivers ready file descriptors as
//!   completions ([`IoUringReactor::take_accepted`]), eliminating the
//!   `accept(2)` syscall per connection.  On kernels that reject the
//!   multishot accept SQE the slot silently demotes to a plain poll and
//!   the worker falls back to `accept(2)`.
//! * When completions are already pending in the mmap'd CQ ring and
//!   nothing needs submitting, `wait` returns them with **zero**
//!   syscalls.
//!
//! The backend stays *readiness-shaped* (poll completions, not chained
//! read/write SQEs) deliberately: kvproto request buffers live inside
//! `Connection` and are reused across requests, so submitting kernel-owned
//! read/write operations would force per-inflight-op stable buffers and a
//! completion-to-buffer reconciliation layer for no additional syscall
//! savings — the batched-mutation + multishot design above already
//! collapses the per-request syscall count below epoll's floor.
//!
//! Sizing: `CPHASH_URING_ENTRIES` sets the SQ depth (default 256; the
//! kernel rounds up to a power of two and sizes the CQ at twice that).

use std::collections::HashMap;
use std::io;
use std::time::Duration;

use cphash_sync::atomic::plain::{AtomicU32, Ordering};

use crate::reactor::{EventBackend, RawFd};

/// Default submission-queue depth (entries; kernel rounds to a power of 2).
const DEFAULT_ENTRIES: u32 = 256;

/// Environment variable overriding the submission-queue depth.
pub const URING_ENTRIES_ENV: &str = "CPHASH_URING_ENTRIES";

/// Environment variable that, when set to anything but `0`/empty, makes
/// the uring front-end unavailable as if the kernel lacked io_uring — the
/// test hook for the capability-fallback path.  Checked by the reactor's
/// backend selection, not by [`IoUringReactor::new`] itself, so direct
/// constructor users (and their tests) are immune to it.
pub const URING_DISABLE_ENV: &str = "CPHASH_URING_DISABLE";

/// Is the [`URING_DISABLE_ENV`] kill switch engaged?
pub fn uring_disabled() -> bool {
    std::env::var(URING_DISABLE_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Features the backend refuses to run without: a single ring mapping
/// (5.4+), no dropped completions on CQ overflow (5.5+), and timed waits
/// via `IORING_ENTER_EXT_ARG` (5.11+).
const REQUIRED_FEATURES: u32 =
    libc::IORING_FEAT_SINGLE_MMAP | libc::IORING_FEAT_NODROP | libc::IORING_FEAT_EXT_ARG;

// user_data layout: | tag (8 bits) | generation (24 bits) | slot (32 bits) |
const TAG_POLL: u64 = 1;
const TAG_ACCEPT: u64 = 2;
/// Completions of bookkeeping SQEs (`POLL_REMOVE`, `ASYNC_CANCEL`); always
/// discarded.
const TAG_IGNORE: u64 = 3;
const GEN_MASK: u32 = 0x00FF_FFFF;

fn user_data(tag: u64, gen: u32, slot: u32) -> u64 {
    (tag << 56) | (((gen & GEN_MASK) as u64) << 32) | slot as u64
}

fn split_user_data(ud: u64) -> (u64, u32, u32) {
    (ud >> 56, ((ud >> 32) as u32) & GEN_MASK, ud as u32)
}

/// One watched descriptor.  Slots are reused through a free list; the
/// generation survives reuse so completions from a previous occupant (or a
/// previous interest set) decode to a stale generation and are dropped.
struct Slot {
    fd: RawFd,
    token: usize,
    writable: bool,
    gen: u32,
    /// A poll/accept SQE for the current generation is queued or in flight.
    armed: bool,
    /// Slot is registered (false = tombstoned, awaiting reuse).
    live: bool,
    /// In-kernel multishot-accept mode (listening sockets only).
    accept: bool,
    /// Connections the kernel accepted on behalf of this (accept) slot.
    accepted: Vec<RawFd>,
}

/// io_uring readiness backend (see the module docs for the design).
pub struct IoUringReactor {
    ring: RawFd,
    rings: *mut u8,
    rings_len: usize,
    sqes: *mut libc::io_uring_sqe,
    sqes_len: usize,
    sq_entries: u32,
    sq_mask: u32,
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_array: *mut u32,
    cq_mask: u32,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cqes: *const libc::io_uring_cqe,
    /// SQEs queued by register/rearm/deregister, flushed by the next wait.
    pending: Vec<libc::io_uring_sqe>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    by_token: HashMap<usize, u32>,
    /// Syscalls issued since the last [`EventBackend::take_syscalls`] drain.
    syscalls: u64,
}

// SAFETY: the raw pointers are exclusively-owned views of this reactor's
// private ring mappings (no aliasing across instances), so moving the
// whole reactor to another thread is sound; it is not Sync and is only
// ever driven by one worker at a time.
unsafe impl Send for IoUringReactor {}

impl IoUringReactor {
    /// Set up a ring and map the SQ/CQ/SQE regions.  Fails (triggering the
    /// caller's epoll fallback) on kernels without io_uring or with rings
    /// missing [`REQUIRED_FEATURES`].
    pub fn new() -> io::Result<IoUringReactor> {
        let entries = std::env::var(URING_ENTRIES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .map_or(DEFAULT_ENTRIES, |v| v.clamp(8, 4096));

        let mut params = libc::io_uring_params::default();
        // SAFETY: `params` is a live, zeroed io_uring_params the kernel
        // fills in; the returned fd is checked before use.
        let ring = unsafe { libc::io_uring_setup(entries, &mut params) };
        if ring < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut syscalls = 1; // the setup call itself

        if params.features & REQUIRED_FEATURES != REQUIRED_FEATURES {
            // SAFETY: `ring` was created above and is owned here.
            unsafe { libc::close(ring) };
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "io_uring lacks required features (need 5.11+)",
            ));
        }

        let sq_len =
            params.sq_off.array as usize + params.sq_entries as usize * core::mem::size_of::<u32>();
        let cq_len = params.cq_off.cqes as usize
            + params.cq_entries as usize * core::mem::size_of::<libc::io_uring_cqe>();
        let rings_len = sq_len.max(cq_len);
        // SAFETY: mapping the ring fd at the UAPI-defined offset with a
        // length derived from the kernel's own offsets; result checked
        // against MAP_FAILED.
        let rings = unsafe {
            libc::mmap(
                core::ptr::null_mut(),
                rings_len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_POPULATE,
                ring,
                libc::IORING_OFF_SQ_RING,
            )
        };
        if rings == libc::MAP_FAILED {
            let err = io::Error::last_os_error();
            // SAFETY: `ring` was created above and is owned here.
            unsafe { libc::close(ring) };
            return Err(err);
        }
        syscalls += 1;
        let sqes_len = params.sq_entries as usize * core::mem::size_of::<libc::io_uring_sqe>();
        // SAFETY: as above, for the SQE array mapping.
        let sqes = unsafe {
            libc::mmap(
                core::ptr::null_mut(),
                sqes_len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_POPULATE,
                ring,
                libc::IORING_OFF_SQES,
            )
        };
        if sqes == libc::MAP_FAILED {
            let err = io::Error::last_os_error();
            // SAFETY: both resources were created above and are owned here.
            unsafe {
                libc::munmap(rings, rings_len);
                libc::close(ring);
            }
            return Err(err);
        }
        syscalls += 1;

        let base = rings as *mut u8;
        // SAFETY: every offset below comes straight from the kernel's
        // io_uring_params for this mapping, so the derived pointers are
        // in-bounds for the ring's lifetime.  The head/tail words are
        // plain u32s in shared memory; std atomics are layout-identical
        // to u32, so viewing them as `AtomicU32` is sound and gives the
        // acquire/release discipline the UAPI requires.
        let reactor = unsafe {
            IoUringReactor {
                ring,
                rings: base,
                rings_len,
                sqes: sqes as *mut libc::io_uring_sqe,
                sqes_len,
                sq_entries: params.sq_entries,
                sq_mask: *(base.add(params.sq_off.ring_mask as usize) as *const u32),
                sq_head: base.add(params.sq_off.head as usize) as *const AtomicU32,
                sq_tail: base.add(params.sq_off.tail as usize) as *const AtomicU32,
                sq_array: base.add(params.sq_off.array as usize) as *mut u32,
                cq_mask: *(base.add(params.cq_off.ring_mask as usize) as *const u32),
                cq_head: base.add(params.cq_off.head as usize) as *const AtomicU32,
                cq_tail: base.add(params.cq_off.tail as usize) as *const AtomicU32,
                cqes: base.add(params.cq_off.cqes as usize) as *const libc::io_uring_cqe,
                pending: Vec::new(),
                slots: Vec::new(),
                free: Vec::new(),
                by_token: HashMap::new(),
                syscalls,
            }
        };
        Ok(reactor)
    }

    fn alloc_slot(&mut self, fd: RawFd, token: usize, writable: bool, accept: bool) -> u32 {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.gen = slot.gen.wrapping_add(1) & GEN_MASK;
            slot.fd = fd;
            slot.token = token;
            slot.writable = writable;
            slot.armed = true;
            slot.live = true;
            slot.accept = accept;
            slot.accepted.clear();
            idx
        } else {
            self.slots.push(Slot {
                fd,
                token,
                writable,
                gen: 0,
                armed: true,
                live: true,
                accept,
                accepted: Vec::new(),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn queue_poll_add(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let events =
            libc::EPOLLIN | libc::EPOLLRDHUP | if slot.writable { libc::EPOLLOUT } else { 0 };
        // Single-shot on purpose: the re-arm queued when the CQE is
        // consumed re-checks readiness at submit time, giving the
        // level-triggered semantics the workers expect (see module docs).
        self.pending.push(libc::io_uring_sqe {
            opcode: libc::IORING_OP_POLL_ADD,
            fd: slot.fd,
            op_flags: events,
            user_data: user_data(TAG_POLL, slot.gen, idx),
            ..Default::default()
        });
    }

    fn queue_poll_remove(&mut self, target: u64) {
        self.pending.push(libc::io_uring_sqe {
            opcode: libc::IORING_OP_POLL_REMOVE,
            fd: -1,
            addr: target,
            user_data: user_data(TAG_IGNORE, 0, 0),
            ..Default::default()
        });
    }

    fn queue_cancel(&mut self, target: u64) {
        self.pending.push(libc::io_uring_sqe {
            opcode: libc::IORING_OP_ASYNC_CANCEL,
            fd: -1,
            addr: target,
            user_data: user_data(TAG_IGNORE, 0, 0),
            ..Default::default()
        });
    }

    fn queue_accept(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        self.pending.push(libc::io_uring_sqe {
            opcode: libc::IORING_OP_ACCEPT,
            fd: slot.fd,
            ioprio: libc::IORING_ACCEPT_MULTISHOT,
            op_flags: libc::SOCK_CLOEXEC as u32,
            user_data: user_data(TAG_ACCEPT, slot.gen, idx),
            ..Default::default()
        });
    }

    /// Copy pending SQEs into free ring slots.  Returns how many SQEs sit
    /// in the ring awaiting submission (tail - head).
    fn flush_pending(&mut self) -> u32 {
        // SAFETY: sq_head/sq_tail point into the live ring mapping.  The
        // kernel advances head as it consumes (Acquire pairs with its
        // release); only this thread writes tail.
        let head = unsafe { (*self.sq_head).load(Ordering::Acquire) };
        // relaxed: sq_tail is only ever written by this thread, so its own
        // last store is always visible; the Release store below publishes.
        // SAFETY: as above.
        let mut tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
        while !self.pending.is_empty() && tail.wrapping_sub(head) < self.sq_entries {
            let sqe = self.pending.remove(0);
            let slot = tail & self.sq_mask;
            // SAFETY: `slot` is masked into the SQE array bounds and
            // `sq_array` has sq_entries elements; both mappings are live.
            unsafe {
                *self.sqes.add(slot as usize) = sqe;
                *self.sq_array.add(slot as usize) = slot;
            }
            tail = tail.wrapping_add(1);
        }
        // SAFETY: as above; Release publishes the SQE writes to the kernel.
        unsafe { (*self.sq_tail).store(tail, Ordering::Release) };
        tail.wrapping_sub(head)
    }

    fn enter(
        &mut self,
        to_submit: u32,
        min_complete: u32,
        flags: u32,
        arg: *const libc::c_void,
        argsz: usize,
    ) -> io::Result<()> {
        loop {
            self.syscalls += 1;
            // SAFETY: `ring` is a live io_uring fd with valid mappings;
            // arg/argsz describe a valid getevents arg when EXT_ARG is set.
            let rc = unsafe {
                libc::io_uring_enter(self.ring, to_submit, min_complete, flags, arg, argsz)
            };
            if rc >= 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                // Timed wait expired: not an error, just no completions.
                Some(62 /* ETIME */) => return Ok(()),
                Some(4 /* EINTR */) => continue,
                // CQ was full and the kernel parked completions on its
                // overflow list (FEAT_NODROP); flush by waiting again.
                Some(16 /* EBUSY */) => return Ok(()),
                _ => return Err(err),
            }
        }
    }

    /// Drain every readable CQE, decoding tokens into `ready`.  Re-arms
    /// consumed single-shot polls and lapsed multishot accepts by queueing
    /// fresh SQEs (flushed by the next wait's enter).
    fn drain_cqes(&mut self, ready: &mut Vec<usize>) -> usize {
        let mut drained = 0;
        loop {
            // SAFETY: ring pointers are live; Acquire on tail pairs with
            // the kernel's release publish of the CQE contents.
            let (head, tail) = unsafe {
                (
                    // relaxed: cq_head is only ever written by this thread.
                    (*self.cq_head).load(Ordering::Relaxed),
                    (*self.cq_tail).load(Ordering::Acquire),
                )
            };
            if head == tail {
                break;
            }
            for i in 0..tail.wrapping_sub(head) {
                let idx = (head.wrapping_add(i) & self.cq_mask) as usize;
                // SAFETY: idx is masked into the CQE array bounds.
                let cqe = unsafe { *self.cqes.add(idx) };
                self.handle_cqe(cqe, ready);
                drained += 1;
            }
            // SAFETY: as above; Release lets the kernel reuse the entries.
            unsafe { (*self.cq_head).store(tail, Ordering::Release) };
        }
        drained
    }

    fn handle_cqe(&mut self, cqe: libc::io_uring_cqe, ready: &mut Vec<usize>) {
        let (tag, gen, idx) = split_user_data(cqe.user_data);
        if tag == TAG_IGNORE {
            return;
        }
        let Some(slot) = self.slots.get(idx as usize) else {
            return;
        };
        if slot.gen != gen || !slot.live {
            return; // stale completion for a rearmed/retired registration
        }
        let more = cqe.flags & libc::IORING_CQE_F_MORE != 0;
        match tag {
            TAG_POLL => {
                if !more {
                    self.slots[idx as usize].armed = false;
                }
                if cqe.res >= 0 {
                    ready.push(self.slots[idx as usize].token);
                    if !more {
                        // Single-shot poll consumed: queue the re-arm, which
                        // re-evaluates readiness at submit so the worker
                        // keeps seeing level-triggered readiness until it
                        // retires the connection.
                        self.slots[idx as usize].armed = true;
                        self.queue_poll_add(idx);
                    }
                }
                // res < 0 (e.g. -ECANCELED from a racing remove): drop.
            }
            TAG_ACCEPT => {
                if cqe.res >= 0 {
                    self.slots[idx as usize].accepted.push(cqe.res);
                    ready.push(self.slots[idx as usize].token);
                    if !more {
                        self.queue_accept(idx);
                    }
                } else {
                    match -cqe.res {
                        // Kernel predates multishot accept (or rejects the
                        // op on this socket): demote to a plain poll so the
                        // worker accepts via accept(2).
                        22 /* EINVAL */ | 95 /* EOPNOTSUPP */ => {
                            let slot = &mut self.slots[idx as usize];
                            slot.accept = false;
                            slot.gen = slot.gen.wrapping_add(1) & GEN_MASK;
                            slot.writable = false;
                            slot.armed = true;
                            self.queue_poll_add(idx);
                        }
                        125 /* ECANCELED */ => {}
                        // Transient accept failure (EMFILE, ECONNABORTED,
                        // EAGAIN...): the multishot lapsed; re-arm it.
                        _ => self.queue_accept(idx),
                    }
                }
            }
            _ => {}
        }
    }
}

impl EventBackend for IoUringReactor {
    fn register(&mut self, fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        let idx = self.alloc_slot(fd, token, writable, false);
        self.by_token.insert(token, idx);
        self.queue_poll_add(idx);
        Ok(())
    }

    fn rearm(&mut self, _fd: RawFd, token: usize, writable: bool) -> io::Result<()> {
        let Some(&idx) = self.by_token.get(&token) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "rearm of unregistered token",
            ));
        };
        let slot = &mut self.slots[idx as usize];
        if slot.writable == writable && slot.armed {
            return Ok(());
        }
        // Retire the old poll (its user_data carries the old
        // generation, so this targets only the outgoing registration no
        // matter how the kernel orders the two SQEs) and arm a fresh one.
        let old = user_data(TAG_POLL, slot.gen, idx);
        let was_armed = slot.armed;
        slot.gen = slot.gen.wrapping_add(1) & GEN_MASK;
        slot.writable = writable;
        slot.armed = true;
        if was_armed {
            self.queue_poll_remove(old);
        }
        self.queue_poll_add(idx);
        Ok(())
    }

    fn deregister(&mut self, _fd: RawFd, token: usize) -> io::Result<()> {
        let Some(idx) = self.by_token.remove(&token) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "deregister of unregistered token",
            ));
        };
        let slot = &mut self.slots[idx as usize];
        let old_poll = user_data(TAG_POLL, slot.gen, idx);
        let old_accept = user_data(TAG_ACCEPT, slot.gen, idx);
        let was = (slot.armed, slot.accept);
        slot.gen = slot.gen.wrapping_add(1) & GEN_MASK;
        slot.live = false;
        slot.armed = false;
        slot.accepted.clear();
        match was {
            (true, false) => self.queue_poll_remove(old_poll),
            (true, true) => self.queue_cancel(old_accept),
            _ => {}
        }
        self.free.push(idx);
        Ok(())
    }

    fn wait(&mut self, ready: &mut Vec<usize>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut to_submit = self.flush_pending();
        let mut drained = self.drain_cqes(ready);
        if drained > 0 {
            // Completions were already waiting in shared memory.  Submit
            // any queued SQEs opportunistically only if present; either
            // way this wake-up needs no GETEVENTS round trip.
            if to_submit > 0 {
                self.enter(to_submit, 0, 0, core::ptr::null(), 0)?;
                to_submit = self.flush_pending();
                if to_submit > 0 {
                    self.enter(to_submit, 0, 0, core::ptr::null(), 0)?;
                }
                drained += self.drain_cqes(ready);
            }
            return Ok(drained);
        }
        match timeout {
            None => {
                if to_submit > 0 {
                    self.enter(to_submit, 0, 0, core::ptr::null(), 0)?;
                    drained = self.drain_cqes(ready);
                }
            }
            Some(d) => {
                let ts = libc::__kernel_timespec {
                    tv_sec: d.as_secs() as i64,
                    tv_nsec: d.subsec_nanos() as i64,
                };
                let arg = libc::io_uring_getevents_arg {
                    ts: &ts as *const libc::__kernel_timespec as u64,
                    ..Default::default()
                };
                self.enter(
                    to_submit,
                    1,
                    libc::IORING_ENTER_GETEVENTS | libc::IORING_ENTER_EXT_ARG,
                    (&arg as *const libc::io_uring_getevents_arg).cast(),
                    core::mem::size_of::<libc::io_uring_getevents_arg>(),
                )?;
                drained = self.drain_cqes(ready);
            }
        }
        // Re-arms queued while draining ride along with the next wait's
        // enter (or the CQ-pending fast path) — no extra syscall here.
        Ok(drained)
    }

    fn register_listener(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        let idx = self.alloc_slot(fd, token, false, true);
        self.by_token.insert(token, idx);
        self.queue_accept(idx);
        Ok(())
    }

    fn take_accepted(&mut self, token: usize, out: &mut Vec<RawFd>) -> bool {
        let Some(&idx) = self.by_token.get(&token) else {
            return false;
        };
        let slot = &mut self.slots[idx as usize];
        if !slot.accept {
            return false; // demoted: caller owns accept(2)
        }
        out.append(&mut slot.accepted);
        true
    }

    fn take_syscalls(&mut self) -> u64 {
        core::mem::take(&mut self.syscalls)
    }
}

impl Drop for IoUringReactor {
    fn drop(&mut self) {
        // SAFETY: the mappings and fd are exclusively owned by this
        // reactor and Drop runs once.  Accepted-but-unclaimed fds are
        // closed so a teardown mid-accept-burst leaks nothing.
        unsafe {
            for slot in &self.slots {
                for &fd in &slot.accepted {
                    libc::close(fd);
                }
            }
            libc::munmap(self.sqes.cast(), self.sqes_len);
            libc::munmap(self.rings.cast(), self.rings_len);
            libc::close(self.ring);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::WAKER_TOKEN;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn ring_or_skip() -> Option<IoUringReactor> {
        match IoUringReactor::new() {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("skipping: io_uring unavailable ({e})");
                None
            }
        }
    }

    #[test]
    fn user_data_round_trips() {
        let ud = user_data(TAG_ACCEPT, 0x00AB_CDEF, 0xDEAD_BEEF);
        assert_eq!(split_user_data(ud), (TAG_ACCEPT, 0x00AB_CDEF, 0xDEAD_BEEF));
        // Generation wraps inside its 24-bit field without touching the tag.
        let ud = user_data(TAG_POLL, GEN_MASK.wrapping_add(5), 1);
        assert_eq!(split_user_data(ud).0, TAG_POLL);
        assert_eq!(split_user_data(ud).1, 4);
    }

    #[test]
    fn socket_data_and_waker_round_trip() {
        let Some(mut r) = ring_or_skip() else { return };

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let fd = crate::reactor::raw_fd_of(&server_side);
        r.register(fd, 7, false).unwrap();

        // Registration queued an SQE but issued no syscall yet.
        assert_eq!(r.take_syscalls(), 3); // setup + two mmaps
        let mut ready = Vec::new();
        assert_eq!(
            r.wait(&mut ready, Some(Duration::from_millis(5))).unwrap(),
            0
        );
        assert!(r.take_syscalls() >= 1);

        client.write_all(b"ping").unwrap();
        ready.clear();
        let n = r.wait(&mut ready, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ready, vec![7]);

        // Level-triggered persistence: unread data keeps the token ready.
        ready.clear();
        r.wait(&mut ready, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(ready, vec![7]);

        // An eventfd waker registers like any descriptor.
        let waker = crate::reactor::Waker::new(crate::reactor::FrontendKind::Uring);
        r.register(waker.fd().unwrap(), WAKER_TOKEN, false).unwrap();
        waker.wake();
        ready.clear();
        r.wait(&mut ready, Some(Duration::from_secs(2))).unwrap();
        assert!(ready.contains(&WAKER_TOKEN));
        waker.drain();

        r.deregister(fd, 7).unwrap();
        ready.clear();
        r.wait(&mut ready, None).unwrap();
        assert!(!ready.contains(&7));
    }

    #[test]
    fn write_interest_toggles_via_rearm() {
        let Some(mut r) = ring_or_skip() else { return };

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let fd = crate::reactor::raw_fd_of(&server_side);

        r.register(fd, 3, false).unwrap();
        let mut ready = Vec::new();
        assert_eq!(r.wait(&mut ready, None).unwrap(), 0);

        // An idle socket with write interest reports writability...
        r.rearm(fd, 3, true).unwrap();
        ready.clear();
        r.wait(&mut ready, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(ready, vec![3]);

        // ...and stops once write interest is dropped again.
        r.rearm(fd, 3, false).unwrap();
        ready.clear();
        // One wait flushes the remove+add pair; drain any straggler CQE
        // from the outgoing generation, then confirm silence.
        r.wait(&mut ready, None).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        ready.clear();
        r.wait(&mut ready, None).unwrap();
        assert!(ready.is_empty(), "stale write readiness: {ready:?}");
        drop(client);
    }

    #[test]
    fn multishot_accept_hands_back_fds() {
        let Some(mut r) = ring_or_skip() else { return };

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lfd = crate::reactor::raw_fd_of(&listener);
        r.register_listener(lfd, 9).unwrap();

        // Arm the accept before the connections arrive.
        let mut ready = Vec::new();
        r.wait(&mut ready, None).unwrap();

        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();

        let mut fds = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fds.len() < 2 && std::time::Instant::now() < deadline {
            ready.clear();
            r.wait(&mut ready, Some(Duration::from_millis(100)))
                .unwrap();
            if ready.contains(&9) {
                let in_kernel = r.take_accepted(9, &mut fds);
                if !in_kernel {
                    // Demoted (kernel without multishot accept): accept(2)
                    // works and the fallback contract holds.
                    eprintln!("multishot accept demoted; fallback path engaged");
                    let (s, _) = listener.accept().unwrap();
                    fds.push(crate::reactor::raw_fd_of(&s));
                    std::mem::forget(s);
                }
            }
        }
        assert_eq!(fds.len(), 2, "both connections accepted");
        for fd in fds {
            // SAFETY: fds were accepted above and are owned by the test.
            unsafe { libc::close(fd) };
        }
        drop((c1, c2));
    }

    #[test]
    fn close_while_armed_then_reuse_is_clean() {
        let Some(mut r) = ring_or_skip() else { return };

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let fd = crate::reactor::raw_fd_of(&server_side);
        r.register(fd, 1, false).unwrap();
        let mut ready = Vec::new();
        r.wait(&mut ready, None).unwrap();

        // Close the fd while its poll is armed, then deregister: the slot
        // must be reusable and no stale completion may surface under the
        // recycled token.
        drop(server_side);
        r.deregister(fd, 1).unwrap();

        let listener2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client2 = TcpStream::connect(listener2.local_addr().unwrap()).unwrap();
        let (ss2, _) = listener2.accept().unwrap();
        ss2.set_nonblocking(true).unwrap();
        let fd2 = crate::reactor::raw_fd_of(&ss2);
        r.register(fd2, 1, false).unwrap();

        client2.write_all(b"x").unwrap();
        ready.clear();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !ready.contains(&1) && std::time::Instant::now() < deadline {
            r.wait(&mut ready, Some(Duration::from_millis(50))).unwrap();
        }
        assert!(ready.contains(&1));
        let _ = client.write_all(b"y"); // old peer: must not panic anything
    }
}
