//! Standalone CPSERVER daemon: runs the CPHash-backed key/value cache
//! server on a TCP port until interrupted, printing periodic statistics.
//!
//! ```text
//! cargo run --release -p cphash-kvserver --bin cpserverd -- \
//!     --port 7700 --partitions 4 --client-threads 4 --capacity-mb 64
//! ```

use std::time::Duration;

use cphash::{CpHashConfig, MigrationPacing};
use cphash_affinity::Topology;
use cphash_kvserver::{CpServer, CpServerConfig, FrontendKind};

struct Args {
    port: u16,
    partitions: usize,
    max_partitions: usize,
    client_threads: usize,
    capacity_mb: usize,
    stats_secs: u64,
    /// Default chunk hand-offs per second for live resizes (0 = unpaced).
    migrate_rate: f64,
    /// Queue-depth feedback: back off the migration rate while servers
    /// fall behind.
    migrate_feedback: bool,
    /// Front-end driving the client threads (epoll | poll).
    frontend: FrontendKind,
    /// NUMA-aware server placement: pin every spawnable server thread
    /// (including ones only activated by a later grow) per the detected
    /// topology.
    numa: bool,
    /// Highest kvproto version to negotiate (2 = typed ops; 1 forces the
    /// legacy unversioned protocol).
    max_protocol: u8,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7700,
        partitions: 2,
        max_partitions: 0,
        client_threads: 2,
        capacity_mb: 64,
        stats_secs: 5,
        migrate_rate: 0.0,
        migrate_feedback: false,
        frontend: FrontendKind::from_env(),
        numa: false,
        max_protocol: cphash_kvproto::VERSION_2,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--port" => args.port = value("--port")?.parse().map_err(|e| format!("bad port: {e}"))?,
            "--partitions" => {
                args.partitions = value("--partitions")?.parse().map_err(|e| format!("bad partitions: {e}"))?
            }
            "--max-partitions" => {
                args.max_partitions = value("--max-partitions")?
                    .parse()
                    .map_err(|e| format!("bad max-partitions: {e}"))?
            }
            "--client-threads" => {
                args.client_threads =
                    value("--client-threads")?.parse().map_err(|e| format!("bad client-threads: {e}"))?
            }
            "--capacity-mb" => {
                args.capacity_mb = value("--capacity-mb")?.parse().map_err(|e| format!("bad capacity: {e}"))?
            }
            "--stats-secs" => {
                args.stats_secs = value("--stats-secs")?.parse().map_err(|e| format!("bad stats-secs: {e}"))?
            }
            "--migrate-rate" => {
                args.migrate_rate = value("--migrate-rate")?
                    .parse()
                    .map_err(|e| format!("bad migrate-rate: {e}"))?
            }
            "--migrate-feedback" => args.migrate_feedback = true,
            "--frontend" => args.frontend = FrontendKind::parse(&value("--frontend")?)?,
            "--numa" => args.numa = true,
            "--max-protocol" => {
                args.max_protocol = value("--max-protocol")?
                    .parse()
                    .map_err(|e| format!("bad max-protocol: {e}"))?;
                if !(1..=2).contains(&args.max_protocol) {
                    return Err("max-protocol must be 1 or 2".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: cpserverd [--port N] [--partitions N] [--max-partitions N] [--client-threads N] [--capacity-mb N] [--stats-secs N] [--migrate-rate CHUNKS_PER_SEC] [--migrate-feedback] [--frontend epoll|poll] [--numa] [--max-protocol 1|2]".into())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let migration_pacing = match (args.migrate_rate, args.migrate_feedback) {
        (rate, true) if rate > 0.0 => MigrationPacing::feedback(rate),
        (_, true) => MigrationPacing::feedback(1_000.0),
        (rate, false) if rate > 0.0 => MigrationPacing::Rate {
            chunks_per_sec: rate,
        },
        _ => MigrationPacing::Unpaced,
    };
    // NUMA-aware placement: derive pins for *every* spawnable server
    // thread (the grown ones included) from the detected topology, so a
    // live resize lands new partitions on the cores nearest the memory
    // they will allocate from.
    let server_pins = if args.numa {
        let topo = Topology::detect();
        CpHashConfig::new(args.partitions, args.client_threads)
            .with_max_partitions(args.max_partitions)
            .with_numa_placement(&topo)
            .server_pins
    } else {
        Vec::new()
    };
    let config = CpServerConfig {
        bind: format!("0.0.0.0:{}", args.port)
            .parse()
            .expect("valid bind address"),
        client_threads: args.client_threads,
        partitions: args.partitions,
        max_partitions: args.max_partitions,
        capacity_bytes: Some(args.capacity_mb * 1024 * 1024),
        typical_value_bytes: 64,
        migration_pacing,
        frontend: args.frontend,
        server_pins,
        max_protocol: args.max_protocol,
        ..Default::default()
    };
    let server = match CpServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start CPSERVER: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "CPSERVER listening on {} ({} partitions, {} client threads, {} MiB cache, {} front-end{})",
        server.addr(),
        args.partitions,
        args.client_threads,
        args.capacity_mb,
        args.frontend,
        if args.numa { ", NUMA pinning" } else { "" }
    );
    if args.max_partitions > args.partitions {
        println!(
            "live resize enabled up to {} partitions (send a RESIZE frame, opcode 3; key bits 0..16 = new count, bits 16..48 = optional chunks/sec budget)",
            args.max_partitions
        );
        println!("default migration pacing: {migration_pacing:?}");
    }
    println!("press Ctrl-C to stop");

    let mut last_requests = 0u64;
    let mut last_wakeups = 0u64;
    loop {
        std::thread::sleep(Duration::from_secs(args.stats_secs.max(1)));
        let requests = server.metrics().requests();
        let stats = server.table_stats();
        let frontend = &server.metrics().frontend;
        let wakeups = frontend.wakeups();
        println!(
            "requests: {:>12} (+{:>10} / {}s)   hit rate {:>5.1}%   elements in cache: lookups={} inserts={} evictions={}   frontend: wakeups={} (+{}) ev/wakeup={:.1} idle_sleeps={}",
            requests,
            requests - last_requests,
            args.stats_secs,
            server.metrics().hit_rate() * 100.0,
            stats.lookups,
            stats.inserts,
            stats.evictions,
            wakeups,
            wakeups - last_wakeups,
            frontend.events_per_wakeup(),
            frontend.idle_sleeps()
        );
        last_requests = requests;
        last_wakeups = wakeups;
    }
}
