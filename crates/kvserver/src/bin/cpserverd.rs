//! Standalone CPSERVER daemon: runs the CPHash-backed key/value cache
//! server on a TCP port until interrupted, printing periodic statistics.
//!
//! ```text
//! cargo run --release -p cphash-kvserver --bin cpserverd -- \
//!     --port 7700 --partitions 4 --client-threads 4 --capacity-mb 64
//! ```

use std::time::Duration;

use cphash::{CpHashConfig, MigrationPacing, ServerPipeline};
use cphash_affinity::Topology;
use cphash_kvserver::{AcceptPath, CpServer, CpServerConfig, FrontendKind};

struct Args {
    port: u16,
    partitions: usize,
    max_partitions: usize,
    client_threads: usize,
    capacity_mb: usize,
    stats_secs: u64,
    /// Default chunk hand-offs per second for live resizes (0 = unpaced).
    migrate_rate: f64,
    /// Queue-depth feedback: back off the migration rate while servers
    /// fall behind.
    migrate_feedback: bool,
    /// Latency feedback: back off the migration rate while the
    /// client-observed request p99 is elevated (alternative to the
    /// queue-depth signal).
    migrate_feedback_p99: bool,
    /// Server hot-loop pipeline (scalar | batched | prefetch).
    pipeline: ServerPipeline,
    /// Pipeline depth (data operations staged per batch).
    batch_size: usize,
    /// Overload shedding threshold (0 = never shed): in-flight operations
    /// per worker beyond which v2 clients get wire-level Retry replies.
    overload_retry: usize,
    /// Front-end driving the client threads (epoll | poll | uring).
    frontend: FrontendKind,
    /// Accept path (sharded SO_REUSEPORT listeners | single acceptor).
    accept: AcceptPath,
    /// NUMA-aware server placement: pin every spawnable server thread
    /// (including ones only activated by a later grow) per the detected
    /// topology.
    numa: bool,
    /// Highest kvproto version to negotiate (2 = typed ops; 1 forces the
    /// legacy unversioned protocol).
    max_protocol: u8,
    /// Bind address for the Prometheus stats HTTP endpoint (None = off,
    /// unless `CPHASH_STATS_ADDR` is set).
    stats_addr: Option<std::net::SocketAddr>,
    /// Enable hot-path stage tracing (also via `CPHASH_TRACE=1`).
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7700,
        partitions: 2,
        max_partitions: 0,
        client_threads: 2,
        capacity_mb: 64,
        stats_secs: 5,
        migrate_rate: 0.0,
        migrate_feedback: false,
        migrate_feedback_p99: false,
        pipeline: ServerPipeline::from_env(),
        batch_size: cphash::config::batch_size_from_env(),
        overload_retry: 0,
        frontend: FrontendKind::from_env(),
        accept: AcceptPath::from_env(),
        numa: false,
        max_protocol: cphash_kvproto::VERSION_2,
        stats_addr: None,
        trace: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--port" => args.port = value("--port")?.parse().map_err(|e| format!("bad port: {e}"))?,
            "--partitions" => {
                args.partitions = value("--partitions")?.parse().map_err(|e| format!("bad partitions: {e}"))?
            }
            "--max-partitions" => {
                args.max_partitions = value("--max-partitions")?
                    .parse()
                    .map_err(|e| format!("bad max-partitions: {e}"))?
            }
            "--client-threads" => {
                args.client_threads =
                    value("--client-threads")?.parse().map_err(|e| format!("bad client-threads: {e}"))?
            }
            "--capacity-mb" => {
                args.capacity_mb = value("--capacity-mb")?.parse().map_err(|e| format!("bad capacity: {e}"))?
            }
            "--stats-secs" => {
                args.stats_secs = value("--stats-secs")?.parse().map_err(|e| format!("bad stats-secs: {e}"))?
            }
            "--migrate-rate" => {
                args.migrate_rate = value("--migrate-rate")?
                    .parse()
                    .map_err(|e| format!("bad migrate-rate: {e}"))?
            }
            "--migrate-feedback" => args.migrate_feedback = true,
            "--migrate-feedback-p99" => args.migrate_feedback_p99 = true,
            "--pipeline" => args.pipeline = ServerPipeline::parse(&value("--pipeline")?)?,
            "--batch-size" => {
                args.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("bad batch-size: {e}"))?;
                if args.batch_size == 0 {
                    return Err("batch-size must be at least 1".into());
                }
            }
            "--overload-retry" => {
                args.overload_retry = value("--overload-retry")?
                    .parse()
                    .map_err(|e| format!("bad overload-retry: {e}"))?
            }
            "--frontend" => args.frontend = FrontendKind::parse(&value("--frontend")?)?,
            "--accept" => args.accept = AcceptPath::parse(&value("--accept")?)?,
            "--stats-addr" => {
                args.stats_addr = Some(
                    value("--stats-addr")?
                        .parse()
                        .map_err(|e| format!("bad stats-addr: {e}"))?,
                )
            }
            "--trace" => args.trace = true,
            "--numa" => args.numa = true,
            "--max-protocol" => {
                args.max_protocol = value("--max-protocol")?
                    .parse()
                    .map_err(|e| format!("bad max-protocol: {e}"))?;
                if !(1..=2).contains(&args.max_protocol) {
                    return Err("max-protocol must be 1 or 2".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: cpserverd [--port N] [--partitions N] [--max-partitions N] [--client-threads N] [--capacity-mb N] [--stats-secs N] [--migrate-rate CHUNKS_PER_SEC] [--migrate-feedback] [--migrate-feedback-p99] [--pipeline scalar|batched|prefetch] [--batch-size N] [--overload-retry N] [--frontend epoll|poll|uring] [--accept sharded|single] [--stats-addr HOST:PORT] [--trace] [--numa] [--max-protocol 1|2]".into())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let migration_pacing = if args.migrate_feedback_p99 {
        // Latency feedback: client-observed p99 drives the back-off.
        let rate = if args.migrate_rate > 0.0 {
            args.migrate_rate
        } else {
            1_000.0
        };
        MigrationPacing::latency_feedback(rate)
    } else {
        match (args.migrate_rate, args.migrate_feedback) {
            (rate, true) if rate > 0.0 => MigrationPacing::feedback(rate),
            (_, true) => MigrationPacing::feedback(1_000.0),
            (rate, false) if rate > 0.0 => MigrationPacing::Rate {
                chunks_per_sec: rate,
            },
            _ => MigrationPacing::Unpaced,
        }
    };
    // NUMA-aware placement: derive pins for *every* spawnable server
    // thread (the grown ones included) from the detected topology, so a
    // live resize lands new partitions on the cores nearest the memory
    // they will allocate from.
    let server_pins = if args.numa {
        let topo = Topology::detect();
        CpHashConfig::new(args.partitions, args.client_threads)
            .with_max_partitions(args.max_partitions)
            .with_numa_placement(&topo)
            .server_pins
    } else {
        Vec::new()
    };
    let config = CpServerConfig {
        bind: format!("0.0.0.0:{}", args.port)
            .parse()
            .expect("valid bind address"),
        client_threads: args.client_threads,
        partitions: args.partitions,
        max_partitions: args.max_partitions,
        capacity_bytes: Some(args.capacity_mb * 1024 * 1024),
        typical_value_bytes: 64,
        migration_pacing,
        frontend: args.frontend,
        server_pins,
        max_protocol: args.max_protocol,
        pipeline: args.pipeline,
        batch_size: args.batch_size,
        overload_retry: (args.overload_retry > 0).then_some(args.overload_retry),
        accept: args.accept,
        ..Default::default()
    };
    // --stats-addr overrides the CPHASH_STATS_ADDR default already folded
    // into the config; --trace flips tracing on before any hot-path thread
    // takes its first timestamp.
    let config = CpServerConfig {
        stats_addr: args.stats_addr.or(config.stats_addr),
        ..config
    };
    if args.trace {
        cphash_perfmon::trace::set_trace_enabled(true);
    }
    let server = match CpServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start CPSERVER: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "CPSERVER listening on {} ({} partitions, {} client threads, {} MiB cache, {} front-end, {} accept, {} pipeline depth {}{})",
        server.addr(),
        args.partitions,
        args.client_threads,
        args.capacity_mb,
        args.frontend,
        args.accept,
        args.pipeline,
        args.batch_size,
        if args.numa { ", NUMA pinning" } else { "" }
    );
    if args.overload_retry > 0 {
        println!(
            "overload shedding: v2 clients get wire-level Retry past {} in-flight ops per worker",
            args.overload_retry
        );
    }
    if args.max_partitions > args.partitions {
        println!(
            "live resize enabled up to {} partitions (send a RESIZE frame, opcode 3; key bits 0..16 = new count, bits 16..48 = optional chunks/sec budget)",
            args.max_partitions
        );
        println!("default migration pacing: {migration_pacing:?}");
    }
    if let Some(addr) = server.stats_addr() {
        println!("Prometheus stats endpoint: http://{addr}/metrics");
    }
    if cphash_perfmon::trace::trace_enabled() {
        println!("hot-path stage tracing enabled (per-stage cycles appear in the periodic stats and at /metrics)");
    }
    println!("press Ctrl-C to stop");

    let mut last_requests = 0u64;
    let mut last_wakeups = 0u64;
    loop {
        std::thread::sleep(Duration::from_secs(args.stats_secs.max(1)));
        let requests = server.metrics().requests();
        let stats = server.table_stats();
        let frontend = &server.metrics().frontend;
        let wakeups = frontend.wakeups();
        let batch = server.metrics().batch_stats();
        println!(
            "requests: {:>12} (+{:>10} / {}s)   hit rate {:>5.1}%   elements in cache: lookups={} inserts={} evictions={}   frontend: wakeups={} (+{}) ev/wakeup={:.1} idle_sleeps={} syscalls={}   hotpath: batches={} occupancy={:.1} prefetches={} retries_emitted={}",
            requests,
            requests - last_requests,
            args.stats_secs,
            server.metrics().hit_rate() * 100.0,
            stats.lookups,
            stats.inserts,
            stats.evictions,
            wakeups,
            wakeups - last_wakeups,
            frontend.events_per_wakeup(),
            frontend.idle_sleeps(),
            frontend.syscalls(),
            batch.batches,
            batch.avg_occupancy(),
            batch.prefetches,
            server.metrics().retries_emitted()
        );
        if cphash_perfmon::trace::trace_enabled() {
            let report = cphash_perfmon::trace::snapshot(0);
            if report.total_events() > 0 {
                print!("{}", report.render());
            }
        }
        last_requests = requests;
        last_wakeups = wakeups;
    }
}
