//! Standalone LOCKSERVER daemon: runs the lock-based key/value cache server
//! on a TCP port until interrupted, printing periodic statistics.
//!
//! ```text
//! cargo run --release -p cphash-kvserver --bin lockserverd -- \
//!     --port 7701 --partitions 1024 --worker-threads 8 --capacity-mb 64
//! ```

use std::time::Duration;

use cphash_kvserver::{AcceptPath, FrontendKind, LockServer, LockServerConfig};

struct Args {
    port: u16,
    partitions: usize,
    worker_threads: usize,
    capacity_mb: usize,
    stats_secs: u64,
    /// Front-end driving the worker threads (epoll | poll | uring).
    frontend: FrontendKind,
    /// Accept path (sharded SO_REUSEPORT listeners | single acceptor).
    accept: AcceptPath,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7701,
        partitions: 1024,
        worker_threads: 4,
        capacity_mb: 64,
        stats_secs: 5,
        frontend: FrontendKind::from_env(),
        accept: AcceptPath::from_env(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--port" => args.port = value("--port")?.parse().map_err(|e| format!("bad port: {e}"))?,
            "--partitions" => {
                args.partitions = value("--partitions")?.parse().map_err(|e| format!("bad partitions: {e}"))?
            }
            "--worker-threads" => {
                args.worker_threads =
                    value("--worker-threads")?.parse().map_err(|e| format!("bad worker-threads: {e}"))?
            }
            "--capacity-mb" => {
                args.capacity_mb = value("--capacity-mb")?.parse().map_err(|e| format!("bad capacity: {e}"))?
            }
            "--stats-secs" => {
                args.stats_secs = value("--stats-secs")?.parse().map_err(|e| format!("bad stats-secs: {e}"))?
            }
            "--frontend" => args.frontend = FrontendKind::parse(&value("--frontend")?)?,
            "--accept" => args.accept = AcceptPath::parse(&value("--accept")?)?,
            "--help" | "-h" => {
                return Err("usage: lockserverd [--port N] [--partitions N] [--worker-threads N] [--capacity-mb N] [--stats-secs N] [--frontend epoll|poll|uring] [--accept sharded|single]".into())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let config = LockServerConfig {
        bind: format!("0.0.0.0:{}", args.port)
            .parse()
            .expect("valid bind address"),
        worker_threads: args.worker_threads,
        partitions: args.partitions,
        capacity_bytes: Some(args.capacity_mb * 1024 * 1024),
        typical_value_bytes: 64,
        frontend: args.frontend,
        accept: args.accept,
        ..Default::default()
    };
    let server = match LockServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start LOCKSERVER: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "LOCKSERVER listening on {} ({} partitions, {} worker threads, {} MiB cache, {} front-end, {} accept)",
        server.addr(),
        args.partitions,
        args.worker_threads,
        args.capacity_mb,
        args.frontend,
        args.accept
    );
    println!("press Ctrl-C to stop");

    let mut last_requests = 0u64;
    loop {
        std::thread::sleep(Duration::from_secs(args.stats_secs.max(1)));
        let requests = server.metrics().requests();
        let stats = server.table_stats();
        println!(
            "requests: {:>12} (+{:>10} / {}s)   hit rate {:>5.1}%   lookups={} inserts={} evictions={}",
            requests,
            requests - last_requests,
            args.stats_secs,
            server.metrics().hit_rate() * 100.0,
            stats.lookups,
            stats.inserts,
            stats.evictions
        );
        last_requests = requests;
    }
}
