//! A memcached-style baseline cluster (paper §7, Figure 14).
//!
//! The paper compares CPSERVER/LOCKSERVER against stock MEMCACHED: "Since
//! MEMCACHED uses a single lock to protect its state, we ran a separate,
//! independent instance of MEMCACHED on every core, and configured the
//! client to partition the key space across these multiple MEMCACHED
//! instances."  Stock memcached is a C program outside this reproduction's
//! scope; what the comparison actually exercises is its *structure* — one
//! coarse lock per instance, a thread per connection, no batching of
//! hash-table work — so that is what [`MemcacheCluster`] reproduces (the
//! substitution is documented in `DESIGN.md` §4).
//!
//! Each instance owns a single [`cphash_hashcore::Partition`] behind one
//! global mutex and serves every connection from one instance thread
//! sitting on a [`crate::reactor::Reactor`] (the structural property the
//! comparison needs — one coarse lock, no batching of hash-table work —
//! is unchanged; the old thread-per-connection loop with its 20 ms
//! read-timeout busy-wait burned a syscall per connection per tick even
//! when fully idle).  A cluster starts `instances` of them, each on its own
//! port; the Figure 14 harness partitions keys across instances on the
//! client side, exactly as the paper's clients did.

use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cphash_hashcore::{BucketLayout, EvictionPolicy, Partition, PartitionConfig};
use cphash_kvproto::{envelope, ErrCode, OpKind, Reply, Status};
use parking_lot::Mutex;

use crate::acceptor::{drain_accepts, shard_listeners};
use crate::connection::Connection;
use crate::metrics::ServerMetrics;
use crate::reactor::{self, FrontendKind, Reactor, LISTENER_TOKEN};

/// Configuration for a [`MemcacheCluster`].
#[derive(Debug, Clone)]
pub struct MemcacheConfig {
    /// Independent instances (the paper runs one per core).
    pub instances: usize,
    /// Byte budget per instance.
    pub capacity_bytes_per_instance: Option<usize>,
    /// Bucket count per instance's table.
    pub buckets: usize,
    /// Eviction policy (memcached uses LRU).
    pub eviction: EvictionPolicy,
    /// Front-end driving each instance's loop.
    pub frontend: FrontendKind,
    /// Bind every instance to one shared `SO_REUSEPORT` port instead of a
    /// port per instance.  `false` (the default) preserves the paper's §7
    /// deployment — clients partition the key space across per-instance
    /// ports — so [`MemcacheCluster::addrs`] stays meaningful; `true`
    /// models a churn-friendly front door where the kernel spreads
    /// connections over instances (every `addrs()` entry is then the same
    /// address).  Falls back to per-instance ports where reuseport
    /// sharding is unavailable.
    pub shared_port: bool,
}

impl Default for MemcacheConfig {
    fn default() -> Self {
        MemcacheConfig {
            instances: 2,
            capacity_bytes_per_instance: None,
            buckets: 4096,
            eviction: EvictionPolicy::Lru,
            frontend: FrontendKind::from_env(),
            shared_port: false,
        }
    }
}

struct Instance {
    addr: SocketAddr,
    store: Arc<Mutex<Partition>>,
}

/// A cluster of single-lock cache instances.
pub struct MemcacheCluster {
    instances: Vec<Instance>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
}

impl MemcacheCluster {
    /// Start `config.instances` instances, each listening on its own
    /// loopback port.
    pub fn start(config: MemcacheConfig) -> std::io::Result<MemcacheCluster> {
        assert!(config.instances > 0, "need at least one instance");
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        let mut instances = Vec::with_capacity(config.instances);
        let mut threads = Vec::new();

        // Shared-port mode: one SO_REUSEPORT listener set over a single
        // port, the kernel spreading connections over instances.  Per
        // instance ports (the paper's deployment) otherwise, or if the
        // shard set cannot be built.
        let mut shared = if config.shared_port {
            shard_listeners(
                "127.0.0.1:0".parse().expect("literal address"),
                config.instances,
            )
            .ok()
        } else {
            None
        };

        for index in 0..config.instances {
            let listener = match &mut shared {
                Some((_, listeners)) => listeners.pop().expect("one listener per instance"),
                None => {
                    let l = TcpListener::bind("127.0.0.1:0")?;
                    l.set_nonblocking(true)?;
                    l
                }
            };
            let addr = listener.local_addr()?;
            let store = Arc::new(Mutex::new(Partition::new(PartitionConfig {
                buckets: config.buckets,
                capacity_bytes: config.capacity_bytes_per_instance,
                eviction: config.eviction,
                seed: 0x4D45_4D43 ^ index as u64,
                // The memcached-style baseline never migrates.
                migration_chunks: 1,
                layout: BucketLayout::from_env(),
            })));
            instances.push(Instance {
                addr,
                store: Arc::clone(&store),
            });
            {
                let store = Arc::clone(&store);
                metrics.attach_partition_source(move || store.lock().stats());
            }

            let stop_flag = Arc::clone(&stop);
            let metrics_ref = Arc::clone(&metrics);
            let frontend = config.frontend;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("memcache-{index}"))
                    .spawn(move || instance_loop(listener, store, stop_flag, metrics_ref, frontend))
                    .expect("spawning a memcache instance"),
            );
        }

        Ok(MemcacheCluster {
            instances,
            stop,
            threads,
            metrics,
        })
    }

    /// The addresses of every instance, in index order.  Clients partition
    /// keys across these (e.g. by `hash(key) % instances`).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.instances.iter().map(|i| i.addr).collect()
    }

    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.instances.len()
    }

    /// Request metrics (aggregated across instances).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Total elements cached across all instances.
    pub fn total_elements(&self) -> usize {
        self.instances.iter().map(|i| i.store.lock().len()).sum()
    }

    /// Stop every thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for MemcacheCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One memcached-style instance: a single thread whose reactor watches the
/// listening socket and every connection, with a global lock around every
/// table operation — the structure the paper attributes memcached's limited
/// scalability to, minus the old per-connection threads and their 20 ms
/// read-timeout polling.
fn instance_loop(
    listener: TcpListener,
    store: Arc<Mutex<Partition>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    frontend: FrontendKind,
) {
    let mut reactor = Reactor::new(frontend, Arc::clone(&metrics.frontend));
    // An unwatched listener would make the instance deaf forever; fail
    // loudly at startup instead.  `register_listener` lets the io_uring
    // backend accept in-kernel (multishot accept); elsewhere it is a plain
    // read-interest registration.
    reactor
        .register_listener(reactor::raw_fd_of(&listener), LISTENER_TOKEN)
        .expect("registering the memcache listener on the reactor");
    let mut connections: Vec<Option<Connection>> = Vec::new();
    let mut accepted: Vec<std::net::TcpStream> = Vec::new();
    let mut requests = Vec::with_capacity(256);
    let mut value_buf = Vec::new();
    let mut ready: Vec<usize> = Vec::with_capacity(256);
    // Poll without blocking while the previous iteration served anything,
    // so the busy-poll backend's idle back-off resets under load.
    let mut did_work = false;

    // relaxed: stop flag; shutdown needs no ordering
    while !stop.load(Ordering::Relaxed) {
        ready.clear();
        let timeout = (!did_work).then(|| Duration::from_millis(25));
        let _ = reactor.wait(&mut ready, timeout);
        did_work = false;

        // Index loop: newly accepted connections are appended to `ready`
        // mid-iteration so their first bytes are served this pass.
        let mut ready_idx = 0;
        while ready_idx < ready.len() {
            let token = ready[ready_idx];
            ready_idx += 1;
            if token == LISTENER_TOKEN {
                // Accept everything pending: kernel-accepted fds from the
                // uring backend, or accept(2) until WouldBlock elsewhere.
                drain_accepts(&listener, &mut reactor, LISTENER_TOKEN, &mut accepted);
                for stream in accepted.drain(..) {
                    let adopted = Connection::new(stream).is_ok_and(|conn| {
                        crate::connection::adopt(
                            &mut connections,
                            &mut reactor,
                            &mut ready,
                            conn,
                            |c| c,
                        )
                    });
                    if adopted {
                        metrics.note_connection();
                        did_work = true;
                    }
                }
                continue;
            }
            let Some(conn) = connections.get_mut(token).and_then(|c| c.as_mut()) else {
                continue;
            };
            requests.clear();
            let read = conn.poll_requests(&mut requests);
            metrics.note_io(read, 0);
            did_work |= !requests.is_empty();
            for request in requests.drain(..) {
                let wants_response = request.wants_response;
                let cphash_kvproto::OpFrame { kind, key, value } = request.frame;
                // The single global lock: every operation serializes here.
                let mut table = store.lock();
                match kind {
                    OpKind::Lookup => {
                        let hit = table.lookup_copy(key.hash(), &mut value_buf);
                        // Byte keys store §8.2 envelopes: verify the stored
                        // key and read collisions as misses.  Hit values
                        // encode straight from the lookup buffer.
                        let verified = if hit {
                            envelope::verify_stored(&key, &value_buf)
                        } else {
                            None
                        };
                        metrics.note_lookup(verified.is_some());
                        match verified {
                            Some(v) => {
                                conn.queue_reply_parts(Status::Ok, ErrCode::None, v);
                            }
                            None => conn.queue_reply(&Reply::miss()),
                        }
                    }
                    OpKind::Insert => {
                        let (hash, stored) = envelope::stored_form(&key, &value);
                        // The envelope may push a near-limit value past
                        // MAX_VALUE_BYTES; storing it would later produce
                        // replies no client decoder accepts.
                        let ok = stored.len() <= cphash_kvproto::MAX_VALUE_BYTES
                            && table.insert_copy(hash, &stored).is_ok();
                        metrics.note_insert();
                        if wants_response {
                            conn.queue_reply(&if ok {
                                Reply::ok()
                            } else {
                                Reply::err(ErrCode::Capacity, b"ERR table out of capacity".to_vec())
                            });
                        }
                    }
                    OpKind::Delete => {
                        let found = table.delete(key.hash());
                        metrics.note_delete();
                        if wants_response {
                            conn.queue_reply(&if found { Reply::ok() } else { Reply::miss() });
                        }
                    }
                    OpKind::Resize => {
                        // Memcached instances are statically sized (§7 runs
                        // one per core); answer rather than stall the client.
                        conn.queue_reply(&Reply::err(
                            ErrCode::Unsupported,
                            b"ERR resize unsupported on memcached".to_vec(),
                        ));
                    }
                    OpKind::Stats => {
                        // v2-only admin op: the reply value is the full
                        // metrics snapshot in Prometheus text format.  The
                        // cluster shares one metrics block, so any instance
                        // answers for all of them.  Rendering samples every
                        // instance's partition counters through the store
                        // locks, so this store's guard must drop first.
                        drop(table);
                        metrics.note_stats();
                        let text = metrics.render_prometheus();
                        conn.queue_reply_parts(Status::Ok, ErrCode::None, text.as_bytes());
                    }
                }
            }
            let (written, verdict) = crate::connection::settle(conn, &mut reactor, token);
            metrics.note_io(0, written);
            if verdict == crate::connection::Settle::Retired {
                connections[token] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{encode_insert, encode_lookup, ResponseDecoder};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn lookup(stream: &mut TcpStream, decoder: &mut ResponseDecoder, key: u64) -> Option<Vec<u8>> {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, key);
        stream.write_all(&wire).unwrap();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(resp) = decoder.next_response().unwrap() {
                return resp.value;
            }
            match stream.read(&mut buf) {
                Ok(n) if n > 0 => decoder.feed(&buf[..n]),
                Ok(_) => panic!("connection closed"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read error: {e}"),
            }
        }
    }

    #[test]
    fn cluster_serves_each_instance_independently() {
        let mut cluster = MemcacheCluster::start(MemcacheConfig {
            instances: 2,
            ..Default::default()
        })
        .unwrap();
        let addrs = cluster.addrs();
        assert_eq!(addrs.len(), 2);
        assert_eq!(cluster.instances(), 2);

        // Client-side partitioning: even keys to instance 0, odd to 1.
        let mut streams: Vec<TcpStream> = addrs
            .iter()
            .map(|a| TcpStream::connect(a).unwrap())
            .collect();
        let mut decoders = [ResponseDecoder::new(), ResponseDecoder::new()];
        for key in 0..50u64 {
            let inst = (key % 2) as usize;
            let mut wire = BytesMut::new();
            encode_insert(&mut wire, key, &key.to_le_bytes());
            streams[inst].write_all(&wire).unwrap();
        }
        for key in 0..50u64 {
            let inst = (key % 2) as usize;
            let got = lookup(&mut streams[inst], &mut decoders[inst], key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
        }
        // A key stored on instance 0 is invisible to instance 1 — the
        // instances really are independent.
        assert_eq!(lookup(&mut streams[1], &mut decoders[1], 0), None);
        assert!(cluster.total_elements() >= 50);
        assert!(cluster.metrics().requests() >= 100);
        cluster.shutdown();
    }
}
