//! A memcached-style baseline cluster (paper §7, Figure 14).
//!
//! The paper compares CPSERVER/LOCKSERVER against stock MEMCACHED: "Since
//! MEMCACHED uses a single lock to protect its state, we ran a separate,
//! independent instance of MEMCACHED on every core, and configured the
//! client to partition the key space across these multiple MEMCACHED
//! instances."  Stock memcached is a C program outside this reproduction's
//! scope; what the comparison actually exercises is its *structure* — one
//! coarse lock per instance, a thread per connection, no batching of
//! hash-table work — so that is what [`MemcacheCluster`] reproduces (the
//! substitution is documented in `DESIGN.md` §4).
//!
//! Each instance owns a single [`cphash_hashcore::Partition`] behind one
//! global mutex and serves connections with blocking per-connection threads.
//! A cluster starts `instances` of them, each on its own port; the Figure 14
//! harness partitions keys across instances on the client side, exactly as
//! the paper's clients did.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cphash_hashcore::{EvictionPolicy, Partition, PartitionConfig};
use cphash_kvproto::{encode_response, RequestDecoder, RequestKind};
use parking_lot::Mutex;

use crate::metrics::ServerMetrics;

/// Configuration for a [`MemcacheCluster`].
#[derive(Debug, Clone)]
pub struct MemcacheConfig {
    /// Independent instances (the paper runs one per core).
    pub instances: usize,
    /// Byte budget per instance.
    pub capacity_bytes_per_instance: Option<usize>,
    /// Bucket count per instance's table.
    pub buckets: usize,
    /// Eviction policy (memcached uses LRU).
    pub eviction: EvictionPolicy,
}

impl Default for MemcacheConfig {
    fn default() -> Self {
        MemcacheConfig {
            instances: 2,
            capacity_bytes_per_instance: None,
            buckets: 4096,
            eviction: EvictionPolicy::Lru,
        }
    }
}

struct Instance {
    addr: SocketAddr,
    store: Arc<Mutex<Partition>>,
}

/// A cluster of single-lock cache instances.
pub struct MemcacheCluster {
    instances: Vec<Instance>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
}

impl MemcacheCluster {
    /// Start `config.instances` instances, each listening on its own
    /// loopback port.
    pub fn start(config: MemcacheConfig) -> std::io::Result<MemcacheCluster> {
        assert!(config.instances > 0, "need at least one instance");
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::new());
        let mut instances = Vec::with_capacity(config.instances);
        let mut threads = Vec::new();

        for index in 0..config.instances {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            listener.set_nonblocking(true)?;
            let addr = listener.local_addr()?;
            let store = Arc::new(Mutex::new(Partition::new(PartitionConfig {
                buckets: config.buckets,
                capacity_bytes: config.capacity_bytes_per_instance,
                eviction: config.eviction,
                seed: 0x4D45_4D43 ^ index as u64,
                // The memcached-style baseline never migrates.
                migration_chunks: 1,
            })));
            instances.push(Instance {
                addr,
                store: Arc::clone(&store),
            });

            let stop_flag = Arc::clone(&stop);
            let metrics_ref = Arc::clone(&metrics);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("memcache-{index}-acceptor"))
                    .spawn(move || {
                        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                        while !stop_flag.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    metrics_ref.note_connection();
                                    let store = Arc::clone(&store);
                                    let stop = Arc::clone(&stop_flag);
                                    let metrics = Arc::clone(&metrics_ref);
                                    handlers.push(std::thread::spawn(move || {
                                        handle_connection(stream, store, stop, metrics)
                                    }));
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(_) => std::thread::sleep(Duration::from_millis(1)),
                            }
                        }
                        for h in handlers {
                            let _ = h.join();
                        }
                    })
                    .expect("spawning a memcache acceptor"),
            );
        }

        Ok(MemcacheCluster {
            instances,
            stop,
            threads,
            metrics,
        })
    }

    /// The addresses of every instance, in index order.  Clients partition
    /// keys across these (e.g. by `hash(key) % instances`).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.instances.iter().map(|i| i.addr).collect()
    }

    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.instances.len()
    }

    /// Request metrics (aggregated across instances).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Total elements cached across all instances.
    pub fn total_elements(&self) -> usize {
        self.instances.iter().map(|i| i.store.lock().len()).sum()
    }

    /// Stop every thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for MemcacheCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection with blocking reads — a thread per connection and a
/// global lock around every table operation, the structure the paper
/// attributes memcached's limited scalability to.
fn handle_connection(
    stream: TcpStream,
    store: Arc<Mutex<Partition>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
) {
    use std::io::{Read, Write};
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut decoder = RequestDecoder::new();
    let mut requests = Vec::with_capacity(64);
    let mut out = bytes::BytesMut::with_capacity(8 * 1024);
    let mut buf = vec![0u8; 64 * 1024];
    let mut value_buf = Vec::new();

    while !stop.load(Ordering::Relaxed) {
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        metrics.note_io(n, 0);
        decoder.feed(&buf[..n]);
        requests.clear();
        if decoder.drain(&mut requests).is_err() {
            return;
        }
        out.clear();
        for request in &requests {
            // The single global lock: every operation serializes here.
            let mut table = store.lock();
            match request.kind {
                RequestKind::Lookup => {
                    let hit = table.lookup_copy(request.key, &mut value_buf);
                    metrics.note_lookup(hit);
                    encode_response(
                        &mut out,
                        if hit {
                            Some(value_buf.as_slice())
                        } else {
                            None
                        },
                    );
                }
                RequestKind::Insert => {
                    let _ = table.insert_copy(request.key, &request.value);
                    metrics.note_insert();
                }
                RequestKind::Resize => {
                    // Memcached instances are statically sized (§7 runs one
                    // per core); answer rather than stall the client.
                    encode_response(
                        &mut out,
                        Some(b"ERR resize unsupported on memcached".as_slice()),
                    );
                }
            }
        }
        if !out.is_empty() {
            if stream.write_all(&out).is_err() {
                return;
            }
            metrics.note_io(0, out.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{encode_insert, encode_lookup, ResponseDecoder};
    use std::io::{Read, Write};

    fn lookup(stream: &mut TcpStream, decoder: &mut ResponseDecoder, key: u64) -> Option<Vec<u8>> {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, key);
        stream.write_all(&wire).unwrap();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(resp) = decoder.next_response().unwrap() {
                return resp.value;
            }
            match stream.read(&mut buf) {
                Ok(n) if n > 0 => decoder.feed(&buf[..n]),
                Ok(_) => panic!("connection closed"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read error: {e}"),
            }
        }
    }

    #[test]
    fn cluster_serves_each_instance_independently() {
        let mut cluster = MemcacheCluster::start(MemcacheConfig {
            instances: 2,
            ..Default::default()
        })
        .unwrap();
        let addrs = cluster.addrs();
        assert_eq!(addrs.len(), 2);
        assert_eq!(cluster.instances(), 2);

        // Client-side partitioning: even keys to instance 0, odd to 1.
        let mut streams: Vec<TcpStream> = addrs
            .iter()
            .map(|a| TcpStream::connect(a).unwrap())
            .collect();
        let mut decoders = [ResponseDecoder::new(), ResponseDecoder::new()];
        for key in 0..50u64 {
            let inst = (key % 2) as usize;
            let mut wire = BytesMut::new();
            encode_insert(&mut wire, key, &key.to_le_bytes());
            streams[inst].write_all(&wire).unwrap();
        }
        for key in 0..50u64 {
            let inst = (key % 2) as usize;
            let got = lookup(&mut streams[inst], &mut decoders[inst], key);
            assert_eq!(got.as_deref(), Some(&key.to_le_bytes()[..]), "key {key}");
        }
        // A key stored on instance 0 is invisible to instance 1 — the
        // instances really are independent.
        assert_eq!(lookup(&mut streams[1], &mut decoders[1], 0), None);
        assert!(cluster.total_elements() >= 50);
        assert!(cluster.metrics().requests() >= 100);
        cluster.shutdown();
    }
}
