//! Property-based tests for topology arithmetic and placement plans: for
//! arbitrary (sockets × cores × SMT) machine shapes, the §6.1 placement
//! invariants must hold — paired client/server threads share a core, socket
//! subsets stay within their sockets, and no plan ever double-books a
//! hardware thread.

use proptest::prelude::*;

use cphash_affinity::{PlacementPlan, Role, SmtConfig, Topology};

fn topology() -> impl Strategy<Value = Topology> {
    (1usize..8, 1usize..12, 1usize..3).prop_map(|(sockets, cores, smt)| Topology {
        sockets,
        cores_per_socket: cores,
        threads_per_core: smt,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hw_thread_mapping_is_a_bijection(topo in topology()) {
        let mut seen = std::collections::HashSet::new();
        for core in topo.all_cores() {
            for smt in 0..topo.threads_per_core {
                let hw = topo.hw_thread(core, smt);
                prop_assert!(hw.0 < topo.total_hw_threads());
                prop_assert!(seen.insert(hw), "hardware thread assigned twice");
                prop_assert_eq!(topo.core_of_hw_thread(hw), core);
                prop_assert_eq!(topo.smt_index(hw), smt);
                prop_assert_eq!(
                    topo.socket_of_hw_thread(hw),
                    topo.socket_of_core(core)
                );
            }
        }
        prop_assert_eq!(seen.len(), topo.total_hw_threads());
    }

    #[test]
    fn paired_placement_keeps_each_pair_on_one_core(topo in topology()) {
        let cores: Vec<usize> = topo.all_cores().map(|c| c.0).collect();
        let plan = PlacementPlan::cphash_paired(&topo, &cores);
        // No hardware thread is used twice.
        let used = plan.hw_threads_used();
        prop_assert_eq!(used.len(), plan.assignments.len());
        // With SMT, every index pairs a client and a server on the same core.
        if topo.threads_per_core >= 2 {
            prop_assert_eq!(plan.server_count(), cores.len());
            prop_assert_eq!(plan.client_count(), cores.len());
            for index in 0..cores.len() {
                let client = plan
                    .assignments
                    .iter()
                    .find(|a| a.role == Role::Client && a.index == index)
                    .expect("client exists");
                let server = plan
                    .assignments
                    .iter()
                    .find(|a| a.role == Role::Server && a.index == index)
                    .expect("server exists");
                prop_assert_eq!(
                    topo.core_of_hw_thread(client.hw_thread),
                    topo.core_of_hw_thread(server.hw_thread)
                );
            }
        } else {
            // Without SMT the cores are split between the two roles.
            prop_assert_eq!(plan.server_count() + plan.client_count(), cores.len());
        }
    }

    #[test]
    fn socket_subsets_stay_within_their_sockets(topo in topology(), fraction in 1usize..=8) {
        let sockets = (topo.sockets * fraction / 8).max(1).min(topo.sockets);
        for paired in [true, false] {
            let plan = PlacementPlan::socket_subset(&topo, sockets, paired);
            for a in &plan.assignments {
                prop_assert!(
                    topo.socket_of_hw_thread(a.hw_thread).0 < sockets,
                    "assignment escaped the first {} sockets", sockets
                );
            }
            // The number of hardware threads used scales with the socket count.
            let expected_threads = sockets * topo.cores_per_socket
                * if paired { 2.min(topo.threads_per_core).max(1) } else { topo.threads_per_core };
            if paired && topo.threads_per_core >= 2 {
                prop_assert_eq!(plan.hw_threads_used().len(), expected_threads);
            }
        }
    }

    #[test]
    fn smt_configurations_use_the_expected_thread_counts(topo in topology()) {
        let all = PlacementPlan::smt_config(&topo, SmtConfig::AllThreadsAllCores, false);
        prop_assert_eq!(all.client_count(), topo.total_hw_threads());
        let one = PlacementPlan::smt_config(&topo, SmtConfig::OneThreadPerCore, false);
        prop_assert_eq!(one.client_count(), topo.total_cores());
        let half = PlacementPlan::smt_config(&topo, SmtConfig::AllThreadsHalfSockets, false);
        let expected = (topo.sockets / 2).max(1) * topo.cores_per_socket * topo.threads_per_core;
        prop_assert_eq!(half.client_count(), expected);
        // The half-socket configuration never leaves its socket range.
        for a in &half.assignments {
            prop_assert!(topo.socket_of_hw_thread(a.hw_thread).0 < (topo.sockets / 2).max(1));
        }
    }

    #[test]
    fn clamped_plans_fit_small_hosts(topo in topology(), available in 1usize..64) {
        let plan = PlacementPlan::socket_subset(&topo, topo.sockets, false).clamp_to(available);
        for a in &plan.assignments {
            prop_assert!(a.hw_thread.0 < available);
        }
        // Thread count (and therefore the experiment's parallelism) is
        // preserved even when hardware threads are shared.
        prop_assert_eq!(plan.client_count(), topo.total_hw_threads());
    }
}
