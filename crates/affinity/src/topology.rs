//! Machine topology model: sockets × cores × hardware threads.

use serde::{Deserialize, Serialize};

/// Identifier of a physical processor package (socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SocketId(pub usize);

/// Identifier of a physical core, unique across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Identifier of a hardware thread (what the OS calls a "CPU"), unique
/// across the machine.  This is the value passed to `sched_setaffinity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HwThreadId(pub usize);

/// A declarative model of the machine: `sockets` packages, each with
/// `cores_per_socket` cores, each core exposing `threads_per_core` hardware
/// threads (SMT siblings).
///
/// Hardware-thread numbering follows the common Linux convention the paper's
/// machine also used: hw thread `t` of core `c` has id
/// `t * total_cores + c`, i.e. CPUs `0..N-1` are the first hyperthread of
/// every core and CPUs `N..2N-1` are the SMT siblings.  The placement
/// helpers only rely on this model's own numbering, so even if the physical
/// machine numbers CPUs differently the *relative* placement (client and
/// server share a core, servers spread across sockets) is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of processor packages.
    pub sockets: usize,
    /// Physical cores per package.
    pub cores_per_socket: usize,
    /// SMT threads per core (2 on the paper's machine).
    pub threads_per_core: usize,
}

impl Topology {
    /// The paper's evaluation machine: eight 10-core Intel E7-8870 sockets,
    /// two hardware threads per core (80 cores, 160 hardware threads).
    pub const fn paper_machine() -> Self {
        Topology {
            sockets: 8,
            cores_per_socket: 10,
            threads_per_core: 2,
        }
    }

    /// A single-socket model handy for tests.
    pub const fn single_socket(cores: usize, threads_per_core: usize) -> Self {
        Topology {
            sockets: 1,
            cores_per_socket: cores,
            threads_per_core,
        }
    }

    /// Build a best-effort model of the current machine.
    ///
    /// Reads `/sys/devices/system/cpu` when available (Linux) to count
    /// packages and SMT siblings; otherwise falls back to a flat model with
    /// `std::thread::available_parallelism()` single-thread cores on one
    /// socket.  The model is intentionally conservative: if sysfs parsing
    /// fails half-way we fall back rather than guess.
    pub fn detect() -> Self {
        Self::detect_from_sysfs().unwrap_or_else(Self::fallback)
    }

    fn fallback() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Topology {
            sockets: 1,
            cores_per_socket: n,
            threads_per_core: 1,
        }
    }

    fn detect_from_sysfs() -> Option<Self> {
        use std::collections::BTreeSet;
        let cpu_dir = std::path::Path::new("/sys/devices/system/cpu");
        if !cpu_dir.exists() {
            return None;
        }
        let mut packages: BTreeSet<usize> = BTreeSet::new();
        let mut cores: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut hw_threads = 0usize;
        for entry in std::fs::read_dir(cpu_dir).ok()? {
            let entry = entry.ok()?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("cpu")
                .and_then(|rest| rest.parse::<usize>().ok())
            else {
                continue;
            };
            let topo = entry.path().join("topology");
            let pkg = std::fs::read_to_string(topo.join("physical_package_id"))
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok());
            let core = std::fs::read_to_string(topo.join("core_id"))
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok());
            match (pkg, core) {
                (Some(p), Some(c)) => {
                    packages.insert(p);
                    cores.insert((p, c));
                    hw_threads += 1;
                    let _ = id;
                }
                _ => return None,
            }
        }
        if packages.is_empty() || cores.is_empty() || hw_threads == 0 {
            return None;
        }
        let sockets = packages.len();
        let total_cores = cores.len();
        if !total_cores.is_multiple_of(sockets) || !hw_threads.is_multiple_of(total_cores) {
            // Asymmetric machine (e.g. some cores offline); use the flat
            // fallback rather than a wrong rectangular model.
            return None;
        }
        Some(Topology {
            sockets,
            cores_per_socket: total_cores / sockets,
            threads_per_core: hw_threads / total_cores,
        })
    }

    /// Total number of physical cores.
    pub const fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of hardware threads.
    pub const fn total_hw_threads(&self) -> usize {
        self.total_cores() * self.threads_per_core
    }

    /// The socket a core belongs to.
    pub const fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// The core a hardware thread belongs to.
    pub const fn core_of_hw_thread(&self, hw: HwThreadId) -> CoreId {
        CoreId(hw.0 % self.total_cores())
    }

    /// The socket a hardware thread belongs to.
    pub const fn socket_of_hw_thread(&self, hw: HwThreadId) -> SocketId {
        self.socket_of_core(self.core_of_hw_thread(hw))
    }

    /// The SMT sibling index (0-based) of a hardware thread within its core.
    pub const fn smt_index(&self, hw: HwThreadId) -> usize {
        hw.0 / self.total_cores()
    }

    /// The `smt`-th hardware thread of a core.
    pub const fn hw_thread(&self, core: CoreId, smt: usize) -> HwThreadId {
        HwThreadId(smt * self.total_cores() + core.0)
    }

    /// All cores of one socket, in id order.
    pub fn cores_of_socket(&self, socket: SocketId) -> impl Iterator<Item = CoreId> + '_ {
        let start = socket.0 * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId)
    }

    /// All cores of the machine, in id order.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }

    /// All hardware threads of the machine, in id order.
    pub fn all_hw_threads(&self) -> impl Iterator<Item = HwThreadId> {
        (0..self.total_hw_threads()).map(HwThreadId)
    }

    /// All hardware threads of the first `sockets` sockets — the
    /// socket-granularity subsets Figure 11 sweeps over.
    pub fn hw_threads_of_first_sockets(&self, sockets: usize) -> Vec<HwThreadId> {
        assert!(sockets <= self.sockets, "asked for more sockets than exist");
        let mut out = Vec::new();
        for smt in 0..self.threads_per_core {
            for s in 0..sockets {
                for core in self.cores_of_socket(SocketId(s)) {
                    out.push(self.hw_thread(core, smt));
                }
            }
        }
        out
    }

    /// The first SMT thread of every core — the "one hardware thread per
    /// core" configuration of Figures 12 and 14.
    pub fn primary_hw_threads(&self) -> Vec<HwThreadId> {
        self.all_cores().map(|c| self.hw_thread(c, 0)).collect()
    }

    /// Both SMT threads of the cores in the first `sockets` sockets — the
    /// "both hardware threads on fewer sockets" configuration of Figure 12.
    pub fn smt_pairs_of_first_sockets(&self, sockets: usize) -> Vec<HwThreadId> {
        assert!(sockets <= self.sockets);
        let mut out = Vec::new();
        for s in 0..sockets {
            for core in self.cores_of_socket(SocketId(s)) {
                for smt in 0..self.threads_per_core {
                    out.push(self.hw_thread(core, smt));
                }
            }
        }
        out
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::detect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_dimensions() {
        let t = Topology::paper_machine();
        assert_eq!(t.total_cores(), 80);
        assert_eq!(t.total_hw_threads(), 160);
    }

    #[test]
    fn socket_and_core_mapping() {
        let t = Topology::paper_machine();
        assert_eq!(t.socket_of_core(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of_core(CoreId(9)), SocketId(0));
        assert_eq!(t.socket_of_core(CoreId(10)), SocketId(1));
        assert_eq!(t.socket_of_core(CoreId(79)), SocketId(7));
    }

    #[test]
    fn hw_thread_numbering_is_sibling_major() {
        let t = Topology::paper_machine();
        // First hyperthread of core 5 is CPU 5; its sibling is CPU 85.
        assert_eq!(t.hw_thread(CoreId(5), 0), HwThreadId(5));
        assert_eq!(t.hw_thread(CoreId(5), 1), HwThreadId(85));
        assert_eq!(t.core_of_hw_thread(HwThreadId(85)), CoreId(5));
        assert_eq!(t.smt_index(HwThreadId(85)), 1);
        assert_eq!(t.smt_index(HwThreadId(5)), 0);
        assert_eq!(t.socket_of_hw_thread(HwThreadId(85)), SocketId(0));
    }

    #[test]
    fn cores_of_socket_enumerates_contiguously() {
        let t = Topology::paper_machine();
        let s1: Vec<_> = t.cores_of_socket(SocketId(1)).map(|c| c.0).collect();
        assert_eq!(s1, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn first_sockets_subsets_have_expected_sizes() {
        let t = Topology::paper_machine();
        assert_eq!(t.hw_threads_of_first_sockets(1).len(), 20);
        assert_eq!(t.hw_threads_of_first_sockets(4).len(), 80);
        assert_eq!(t.hw_threads_of_first_sockets(8).len(), 160);
        // All from the requested sockets.
        for hw in t.hw_threads_of_first_sockets(2) {
            assert!(t.socket_of_hw_thread(hw).0 < 2);
        }
    }

    #[test]
    fn primary_hw_threads_one_per_core() {
        let t = Topology::paper_machine();
        let primaries = t.primary_hw_threads();
        assert_eq!(primaries.len(), 80);
        for hw in primaries {
            assert_eq!(t.smt_index(hw), 0);
        }
    }

    #[test]
    fn smt_pairs_cover_both_siblings() {
        let t = Topology::paper_machine();
        let pairs = t.smt_pairs_of_first_sockets(4);
        assert_eq!(pairs.len(), 80);
        let siblings: usize = pairs.iter().filter(|hw| t.smt_index(**hw) == 1).count();
        assert_eq!(siblings, 40);
    }

    #[test]
    fn detect_produces_a_consistent_model() {
        let t = Topology::detect();
        assert!(t.sockets >= 1);
        assert!(t.cores_per_socket >= 1);
        assert!(t.threads_per_core >= 1);
        assert_eq!(
            t.total_hw_threads(),
            t.sockets * t.cores_per_socket * t.threads_per_core
        );
    }

    #[test]
    #[should_panic(expected = "more sockets")]
    fn too_many_sockets_panics() {
        let t = Topology::single_socket(4, 2);
        let _ = t.hw_threads_of_first_sockets(2);
    }
}
