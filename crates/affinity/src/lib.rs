//! CPU topology modelling and thread pinning.
//!
//! CPHash assigns one hash-table partition to the L1/L2 cache of a specific
//! core and pins a server thread to that core's second hardware thread while
//! the corresponding client thread runs on the first (paper §3, §6.1).  The
//! evaluation then varies *placement*: whole sockets are enabled or disabled
//! (Figure 11), and hardware threads are spread over few or many cores
//! (Figure 12).
//!
//! This crate provides the two ingredients those experiments need:
//!
//! * [`Topology`] — a declarative model of a machine (sockets × cores ×
//!   SMT threads) with helpers to enumerate hardware threads in the orders
//!   the experiments need ("first hyperthread of every core", "all threads
//!   of socket 0", …).  [`Topology::detect`] builds a best-effort model of
//!   the current machine from `/sys`; [`Topology::paper_machine`] reproduces
//!   the 8-socket × 10-core × 2-thread Intel E7-8870 box from the paper so
//!   placement plans can be unit-tested deterministically.
//! * [`pin`] — pinning the calling thread to one hardware thread via
//!   `sched_setaffinity` (a no-op fallback on non-Linux platforms or when
//!   the container forbids it; callers learn which from the returned
//!   [`pin::PinOutcome`]).
//! * [`placement`] — ready-made placement plans for the experiment
//!   configurations: paired client/server threads for CPHash, flat client
//!   pools for LockHash, socket-restricted and SMT-restricted subsets.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod pin;
pub mod placement;
pub mod topology;

pub use pin::{pin_to_hw_thread, PinOutcome};
pub use placement::{PlacementPlan, Role, SmtConfig, ThreadAssignment};
pub use topology::{CoreId, HwThreadId, SocketId, Topology};
