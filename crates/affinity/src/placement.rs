//! Placement plans for the experiment configurations.
//!
//! The evaluation section runs the same benchmark under several different
//! thread placements:
//!
//! * **CPHash default** (§6.1): 80 client threads and 80 server threads,
//!   "the client and server threads run on the first and second hardware
//!   threads of each of the 80 cores, respectively".
//! * **LockHash default** (§6.1): 160 client threads, one per hardware
//!   thread.
//! * **Socket scaling** (Figure 11): only the hardware threads of the first
//!   *k* sockets are used.
//! * **SMT configurations** (Figure 12): 160 threads on 80 cores, 80 threads
//!   on 80 cores (one per core), 80 threads on 40 cores (SMT pairs on half
//!   the sockets).
//!
//! A [`PlacementPlan`] is a list of [`ThreadAssignment`]s — (role, index,
//! hardware thread) triples — that the benchmark drivers materialize into
//! pinned OS threads.  Plans are pure data, so they are unit-testable
//! against the paper topology without starting any threads.

use serde::{Deserialize, Serialize};

use crate::topology::{HwThreadId, Topology};

/// What a placed thread does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// A CPHash server thread owning one partition.
    Server,
    /// A client thread issuing operations (CPHash client or LockHash worker).
    Client,
}

/// One thread of a placement plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadAssignment {
    /// Role of the thread.
    pub role: Role,
    /// Index within its role (server 0..S, client 0..C).
    pub index: usize,
    /// Hardware thread the thread should be pinned to.
    pub hw_thread: HwThreadId,
}

/// A full placement: which hardware threads run servers and which run
/// clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Human-readable description, used in benchmark reports.
    pub label: String,
    /// All thread assignments.
    pub assignments: Vec<ThreadAssignment>,
}

impl PlacementPlan {
    /// The CPHash placement from §6.1: for every core in `hw_subset`'s core
    /// set, the client runs on the first SMT thread and the server on the
    /// second.  When the topology has no SMT (1 thread/core), servers take
    /// the odd cores and clients the even cores so both still exist.
    pub fn cphash_paired(topo: &Topology, cores: &[usize]) -> Self {
        let mut assignments = Vec::with_capacity(cores.len() * 2);
        if topo.threads_per_core >= 2 {
            for (i, &core) in cores.iter().enumerate() {
                let core = crate::topology::CoreId(core);
                assignments.push(ThreadAssignment {
                    role: Role::Client,
                    index: i,
                    hw_thread: topo.hw_thread(core, 0),
                });
                assignments.push(ThreadAssignment {
                    role: Role::Server,
                    index: i,
                    hw_thread: topo.hw_thread(core, 1),
                });
            }
        } else {
            // No SMT: split the cores between clients and servers.
            let half = cores.len().div_ceil(2);
            for (i, &core) in cores.iter().enumerate() {
                let core = crate::topology::CoreId(core);
                let hw = topo.hw_thread(core, 0);
                if i < half {
                    assignments.push(ThreadAssignment {
                        role: Role::Server,
                        index: i,
                        hw_thread: hw,
                    });
                } else {
                    assignments.push(ThreadAssignment {
                        role: Role::Client,
                        index: i - half,
                        hw_thread: hw,
                    });
                }
            }
        }
        PlacementPlan {
            label: format!("cphash-paired-{}-cores", cores.len()),
            assignments,
        }
    }

    /// The LockHash placement from §6.1: one client thread on every hardware
    /// thread in `hw_threads`.
    pub fn lockhash_flat(hw_threads: &[HwThreadId]) -> Self {
        let assignments = hw_threads
            .iter()
            .enumerate()
            .map(|(i, &hw)| ThreadAssignment {
                role: Role::Client,
                index: i,
                hw_thread: hw,
            })
            .collect();
        PlacementPlan {
            label: format!("lockhash-flat-{}-threads", hw_threads.len()),
            assignments,
        }
    }

    /// Figure 11: both designs restricted to the first `sockets` sockets.
    /// For CPHash this pairs client/server on each core of those sockets;
    /// for LockHash (`paired == false`) it uses every hardware thread.
    pub fn socket_subset(topo: &Topology, sockets: usize, paired: bool) -> Self {
        if paired {
            let cores: Vec<usize> = (0..sockets)
                .flat_map(|s| {
                    topo.cores_of_socket(crate::topology::SocketId(s))
                        .map(|c| c.0)
                        .collect::<Vec<_>>()
                })
                .collect();
            let mut plan = Self::cphash_paired(topo, &cores);
            plan.label = format!("cphash-{sockets}-sockets");
            plan
        } else {
            let hw = topo.hw_threads_of_first_sockets(sockets);
            let mut plan = Self::lockhash_flat(&hw);
            plan.label = format!("lockhash-{sockets}-sockets");
            plan
        }
    }

    /// Figure 12's three configurations, by name:
    /// `"160t-80c"`, `"80t-80c"`, `"80t-40c"` on the paper machine, scaled
    /// proportionally on smaller topologies (all threads / one per core /
    /// SMT pairs on half the sockets).
    pub fn smt_config(topo: &Topology, config: SmtConfig, paired: bool) -> Self {
        let hw: Vec<HwThreadId> = match config {
            SmtConfig::AllThreadsAllCores => topo.all_hw_threads().collect(),
            SmtConfig::OneThreadPerCore => topo.primary_hw_threads(),
            SmtConfig::AllThreadsHalfSockets => {
                let half = (topo.sockets / 2).max(1);
                topo.smt_pairs_of_first_sockets(half)
            }
        };
        if paired {
            // Use the cores underlying `hw`, pairing client/server per core
            // when both siblings are present, otherwise splitting cores.
            let mut cores: Vec<usize> = hw.iter().map(|h| topo.core_of_hw_thread(*h).0).collect();
            cores.sort_unstable();
            cores.dedup();
            let mut plan = if matches!(config, SmtConfig::OneThreadPerCore) {
                // Only one thread per core available: split cores.
                let single = Topology {
                    sockets: topo.sockets,
                    cores_per_socket: topo.cores_per_socket,
                    threads_per_core: 1,
                };
                Self::cphash_paired(&single, &cores)
            } else {
                Self::cphash_paired(topo, &cores)
            };
            plan.label = format!("cphash-{}", config.label());
            plan
        } else {
            let mut plan = Self::lockhash_flat(&hw);
            plan.label = format!("lockhash-{}", config.label());
            plan
        }
    }

    /// Number of server assignments in the plan.
    pub fn server_count(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.role == Role::Server)
            .count()
    }

    /// Number of client assignments in the plan.
    pub fn client_count(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.role == Role::Client)
            .count()
    }

    /// All hardware threads used by the plan (deduplicated, sorted).
    pub fn hw_threads_used(&self) -> Vec<HwThreadId> {
        let mut v: Vec<HwThreadId> = self.assignments.iter().map(|a| a.hw_thread).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Remap the plan onto a machine with only `available` hardware threads
    /// by taking every assignment modulo `available`.  Used when replaying a
    /// paper-machine plan on a smaller host: relative structure (which
    /// threads share a core) degrades gracefully while the thread *counts*
    /// stay the same.
    pub fn clamp_to(&self, available: usize) -> PlacementPlan {
        assert!(available > 0);
        PlacementPlan {
            label: format!("{}-clamped-{available}", self.label),
            assignments: self
                .assignments
                .iter()
                .map(|a| ThreadAssignment {
                    role: a.role,
                    index: a.index,
                    hw_thread: HwThreadId(a.hw_thread.0 % available),
                })
                .collect(),
        }
    }
}

/// The three hardware-thread configurations of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmtConfig {
    /// Both SMT threads of every core (paper: 160 threads on 80 cores).
    AllThreadsAllCores,
    /// One SMT thread per core (paper: 80 threads on 80 cores).
    OneThreadPerCore,
    /// Both SMT threads, half the sockets (paper: 80 threads on 40 cores).
    AllThreadsHalfSockets,
}

impl SmtConfig {
    /// All configurations in the order Figure 12 plots them.
    pub const ALL: [SmtConfig; 3] = [
        SmtConfig::AllThreadsAllCores,
        SmtConfig::OneThreadPerCore,
        SmtConfig::AllThreadsHalfSockets,
    ];

    /// Figure 12's x-axis label for this configuration (paper machine).
    pub fn label(self) -> &'static str {
        match self {
            SmtConfig::AllThreadsAllCores => "160t-80c",
            SmtConfig::OneThreadPerCore => "80t-80c",
            SmtConfig::AllThreadsHalfSockets => "80t-40c",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::CoreId;

    #[test]
    fn paper_default_cphash_placement() {
        let topo = Topology::paper_machine();
        let cores: Vec<usize> = (0..80).collect();
        let plan = PlacementPlan::cphash_paired(&topo, &cores);
        assert_eq!(plan.server_count(), 80);
        assert_eq!(plan.client_count(), 80);
        assert_eq!(plan.hw_threads_used().len(), 160);
        // Client of core i is on CPU i, server on CPU 80+i.
        for a in &plan.assignments {
            match a.role {
                Role::Client => assert_eq!(a.hw_thread.0, a.index),
                Role::Server => assert_eq!(a.hw_thread.0, 80 + a.index),
            }
        }
    }

    #[test]
    fn client_and_server_of_same_index_share_a_core() {
        let topo = Topology::paper_machine();
        let cores: Vec<usize> = (0..80).collect();
        let plan = PlacementPlan::cphash_paired(&topo, &cores);
        for i in 0..80 {
            let client = plan
                .assignments
                .iter()
                .find(|a| a.role == Role::Client && a.index == i)
                .unwrap();
            let server = plan
                .assignments
                .iter()
                .find(|a| a.role == Role::Server && a.index == i)
                .unwrap();
            assert_eq!(
                topo.core_of_hw_thread(client.hw_thread),
                topo.core_of_hw_thread(server.hw_thread)
            );
        }
    }

    #[test]
    fn no_smt_split_places_servers_and_clients_on_distinct_cores() {
        let topo = Topology::single_socket(8, 1);
        let cores: Vec<usize> = (0..8).collect();
        let plan = PlacementPlan::cphash_paired(&topo, &cores);
        assert_eq!(plan.server_count(), 4);
        assert_eq!(plan.client_count(), 4);
        assert_eq!(plan.hw_threads_used().len(), 8);
    }

    #[test]
    fn lockhash_flat_uses_every_thread_once() {
        let topo = Topology::paper_machine();
        let hw: Vec<_> = topo.all_hw_threads().collect();
        let plan = PlacementPlan::lockhash_flat(&hw);
        assert_eq!(plan.client_count(), 160);
        assert_eq!(plan.server_count(), 0);
        assert_eq!(plan.hw_threads_used().len(), 160);
    }

    #[test]
    fn socket_subsets_scale_thread_counts() {
        let topo = Topology::paper_machine();
        for sockets in 1..=8 {
            let cp = PlacementPlan::socket_subset(&topo, sockets, true);
            let lh = PlacementPlan::socket_subset(&topo, sockets, false);
            assert_eq!(cp.server_count(), sockets * 10);
            assert_eq!(cp.client_count(), sockets * 10);
            assert_eq!(lh.client_count(), sockets * 20);
            // Every thread stays within the first `sockets` sockets.
            for a in cp.assignments.iter().chain(lh.assignments.iter()) {
                assert!(topo.socket_of_hw_thread(a.hw_thread).0 < sockets);
            }
        }
    }

    #[test]
    fn smt_configs_match_figure_12() {
        let topo = Topology::paper_machine();
        let all = PlacementPlan::smt_config(&topo, SmtConfig::AllThreadsAllCores, false);
        assert_eq!(all.client_count(), 160);
        let one = PlacementPlan::smt_config(&topo, SmtConfig::OneThreadPerCore, false);
        assert_eq!(one.client_count(), 80);
        let half = PlacementPlan::smt_config(&topo, SmtConfig::AllThreadsHalfSockets, false);
        assert_eq!(half.client_count(), 80);
        // The half-socket config really only touches sockets 0..3.
        for a in &half.assignments {
            assert!(topo.socket_of_hw_thread(a.hw_thread).0 < 4);
        }
        // Paired variants split the same hardware threads between roles.
        let paired_all = PlacementPlan::smt_config(&topo, SmtConfig::AllThreadsAllCores, true);
        assert_eq!(paired_all.server_count(), 80);
        assert_eq!(paired_all.client_count(), 80);
        let paired_one = PlacementPlan::smt_config(&topo, SmtConfig::OneThreadPerCore, true);
        assert_eq!(paired_one.server_count() + paired_one.client_count(), 80);
    }

    #[test]
    fn clamp_to_reduces_hw_thread_ids() {
        let topo = Topology::paper_machine();
        let plan = PlacementPlan::socket_subset(&topo, 8, true).clamp_to(16);
        assert!(plan.hw_threads_used().iter().all(|hw| hw.0 < 16));
        assert_eq!(plan.server_count(), 80);
    }

    #[test]
    fn smt_labels_are_stable() {
        assert_eq!(SmtConfig::AllThreadsAllCores.label(), "160t-80c");
        assert_eq!(SmtConfig::OneThreadPerCore.label(), "80t-80c");
        assert_eq!(SmtConfig::AllThreadsHalfSockets.label(), "80t-40c");
    }

    #[test]
    fn hw_thread_helper_is_consistent_with_core_helper() {
        let topo = Topology::paper_machine();
        for core in 0..topo.total_cores() {
            for smt in 0..topo.threads_per_core {
                let hw = topo.hw_thread(CoreId(core), smt);
                assert_eq!(topo.core_of_hw_thread(hw), CoreId(core));
                assert_eq!(topo.smt_index(hw), smt);
            }
        }
    }
}
