//! Thread pinning via `sched_setaffinity`.
//!
//! "CPHASH pins each server thread to its hardware thread" (§3) — pinning is
//! what turns the partition-per-core idea into actual cache residency.  The
//! container environments this reproduction runs in sometimes forbid
//! affinity changes, so pinning reports an explicit [`PinOutcome`] instead
//! of failing: benchmarks record whether their run was actually pinned.

use crate::topology::HwThreadId;

/// Result of a pinning attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinOutcome {
    /// The calling thread is now bound to the requested hardware thread.
    Pinned(HwThreadId),
    /// The OS refused the affinity change (e.g. restricted cpuset in a
    /// container); the thread keeps its previous affinity mask.
    Refused,
    /// The requested hardware thread does not exist on this machine, so the
    /// request was ignored (common when replaying a paper-machine placement
    /// plan on a smaller box).
    OutOfRange(HwThreadId),
    /// Pinning is not supported on this platform (non-Linux).
    Unsupported,
}

impl PinOutcome {
    /// Whether the calling thread ended up bound to the requested CPU.
    pub fn is_pinned(&self) -> bool {
        matches!(self, PinOutcome::Pinned(_))
    }
}

/// Pin the calling thread to the given hardware thread.
///
/// On Linux this issues `sched_setaffinity(0, …)` with a single-CPU mask.
/// Elsewhere it returns [`PinOutcome::Unsupported`].
pub fn pin_to_hw_thread(hw: HwThreadId) -> PinOutcome {
    let online = available_hw_threads();
    if hw.0 >= online {
        return PinOutcome::OutOfRange(hw);
    }
    imp::pin(hw)
}

/// Number of hardware threads the OS exposes to this process.
pub fn available_hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The CPU the calling thread is currently executing on, if the platform can
/// tell us.
pub fn current_hw_thread() -> Option<HwThreadId> {
    imp::current()
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{HwThreadId, PinOutcome};

    pub fn pin(hw: HwThreadId) -> PinOutcome {
        // SAFETY: cpu_set_t is a plain bitmask; CPU_ZERO/CPU_SET only write
        // within the struct; sched_setaffinity reads it.
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            libc::CPU_ZERO(&mut set);
            libc::CPU_SET(hw.0, &mut set);
            let rc = libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
            if rc == 0 {
                PinOutcome::Pinned(hw)
            } else {
                PinOutcome::Refused
            }
        }
    }

    pub fn current() -> Option<HwThreadId> {
        // SAFETY: sched_getcpu has no preconditions.
        let cpu = unsafe { libc::sched_getcpu() };
        if cpu >= 0 {
            Some(HwThreadId(cpu as usize))
        } else {
            None
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{HwThreadId, PinOutcome};

    pub fn pin(_hw: HwThreadId) -> PinOutcome {
        PinOutcome::Unsupported
    }

    pub fn current() -> Option<HwThreadId> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_is_reported() {
        let outcome = pin_to_hw_thread(HwThreadId(usize::MAX / 2));
        assert_eq!(outcome, PinOutcome::OutOfRange(HwThreadId(usize::MAX / 2)));
        assert!(!outcome.is_pinned());
    }

    #[test]
    fn pinning_to_cpu0_succeeds_or_is_refused() {
        // CPU 0 always exists; in a restricted container the call may be
        // refused, but it must never be OutOfRange or Unsupported on Linux.
        let outcome = pin_to_hw_thread(HwThreadId(0));
        match outcome {
            PinOutcome::Pinned(hw) => {
                assert_eq!(hw, HwThreadId(0));
                // After a successful pin, the scheduler must run us on CPU 0.
                if let Some(cur) = current_hw_thread() {
                    assert_eq!(cur, HwThreadId(0));
                }
            }
            PinOutcome::Refused => {}
            #[cfg(not(target_os = "linux"))]
            PinOutcome::Unsupported => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn available_hw_threads_is_positive() {
        assert!(available_hw_threads() >= 1);
    }

    #[test]
    fn pin_outcome_predicates() {
        assert!(PinOutcome::Pinned(HwThreadId(3)).is_pinned());
        assert!(!PinOutcome::Refused.is_pinned());
        assert!(!PinOutcome::Unsupported.is_pinned());
    }
}
