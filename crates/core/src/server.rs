//! The server thread: owns one partition and serves requests from every
//! client's message lane.
//!
//! "Each server thread performs the operations for its partition. The server
//! thread continuously loops over the message queues of each client checking
//! for new requests. When a request arrives, the server thread performs the
//! requested operation and sends its result back to the client." (§3.2)
//!
//! On top of the paper's loop, each server participates in **online
//! repartitioning**: migration messages (see [`crate::protocol`]) arrive on
//! a dedicated control lane, and ordinary requests for keys this server no
//! longer (or does not yet) own are answered with *retry* responses that
//! redirect the client to the owning partition.  The invariant is that at
//! every instant exactly one server will actually execute an operation on a
//! given key, so no key is ever lost or duplicated while keys move.

// cphash-lint: hot-path
use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::sync::Arc;

use cphash_affinity::{pin_to_hw_thread, HwThreadId};
use cphash_channel::DuplexServer;
use cphash_hashcore::{partition_for_key, ExportOutcome, Partition, PartitionStats};
use cphash_perfmon::trace::TraceStage;
use cphash_perfmon::StageSpan;
use parking_lot::Mutex;

use crate::pipeline::{step_is_current, BatchExecutor, DataOp, DataOpKind, MigrationState, OpCtx};
use crate::protocol::{decode_word, MigrationBatch, MigrationStep, OpCode, Response};
use crate::router::EpochRouter;
use crate::stats::ServerStats;

/// Maximum request words a server drains from one lane before moving on to
/// the next lane, so a single busy client cannot starve the others.
const LANE_BATCH: usize = 256;

/// Everything one server thread needs.
pub(crate) struct ServerThread {
    /// Index of this server / partition.
    pub index: usize,
    /// The partition this server owns.
    pub partition: Partition,
    /// One lane per client, in client order; the last lane is the control
    /// plane.
    pub lanes: Vec<DuplexServer<u64, Response>>,
    /// Hardware thread to pin to, if any.
    pub pin: Option<HwThreadId>,
    /// Set by the table handle to stop the loop.
    pub stop: Arc<AtomicBool>,
    /// Shared runtime counters.
    pub stats: Arc<ServerStats>,
    /// Where the final (and periodically refreshed) partition statistics are
    /// published for the table handle.
    pub partition_stats: Arc<Mutex<PartitionStats>>,
    /// The shared routing table.
    pub router: Arc<EpochRouter>,
    /// The table's *global* byte budget.  During a re-partitioning each
    /// participating server re-splits this over the post-transition
    /// partition count, so the table-wide budget stays fixed as the
    /// partition count changes.
    pub capacity_total: Option<usize>,
    /// The data-operation execution strategy (scalar baseline or the
    /// staged batch + prefetch pipeline).
    pub executor: Box<dyn BatchExecutor>,
    /// Pipeline depth: data operations staged per execution round.
    pub batch_size: usize,
}

/// Reusable per-loop scratch buffers (allocated once per server thread).
#[derive(Default)]
struct Scratch {
    /// The current run of decoded data operations.
    ops: Vec<DataOp>,
    /// One response per operation of the current run.
    replies: Vec<Response>,
}

impl ServerThread {
    /// Run the server loop until the stop flag is raised.
    pub(crate) fn run(mut self) {
        if let Some(hw) = self.pin {
            self.stats.record_pin(pin_to_hw_thread(hw));
        }
        let mut migration = MigrationState::default();
        let mut scratch = Scratch::default();
        let mut words: Vec<u64> = Vec::with_capacity(LANE_BATCH); // lint: allow(hot-path) one-time setup before the loop
        let mut idle_streak: u32 = 0;
        let mut iterations: u64 = 0;

        // relaxed: stop flag; shutdown needs no ordering
        while !self.stop.load(Ordering::Relaxed) {
            let mut did_work = false;
            let mut drained_total = 0usize;
            for lane_idx in 0..self.lanes.len() {
                let drained = {
                    let lane = &mut self.lanes[lane_idx];
                    words.clear();
                    // The drain span only covers the ring read; an empty
                    // drain is dropped unrecorded so idle polling does not
                    // flood the trace ring.
                    let span = StageSpan::begin(TraceStage::Drain);
                    let n = lane.recv_batch(&mut words, LANE_BATCH);
                    if n > 0 {
                        span.finish(n as u32);
                    }
                    n
                };
                if drained == 0 {
                    continue;
                }
                drained_total += drained;
                did_work = true;
                self.process_lane_batch(lane_idx, &words, &mut migration, &mut scratch);
                self.lanes[lane_idx].flush();
            }
            // Publish the inbound queue-depth sample for the migration
            // pacer's feedback mode (one relaxed store per iteration).
            self.stats
                .queue_depth
                .store(drained_total as u64, Ordering::Relaxed); // relaxed: queue-depth gauge for the pacer; staleness is benign

            iterations += 1;
            if migration.draining.is_some() {
                self.try_finish_drain(&mut migration);
            }
            if did_work {
                self.stats.busy_iterations.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                idle_streak = 0;
            } else {
                self.stats.idle_iterations.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                idle_streak = idle_streak.saturating_add(1);
                if idle_streak > 1024 {
                    // Be a good citizen on oversubscribed test machines; the
                    // paper's dedicated cores would just keep polling.
                    std::thread::yield_now();
                }
            }
            // Refresh the shared partition statistics occasionally so the
            // table handle can report hit rates mid-run.
            if iterations.is_multiple_of(4096) {
                *self.partition_stats.lock() = self.partition.stats();
            }
        }

        *self.partition_stats.lock() = self.partition.stats();
        self.stats.stopped.store(true, Ordering::Release);
    }

    /// Process one batch of request words from one client lane.
    ///
    /// Words are consumed as alternating *runs* of data operations
    /// (lookup/insert/delete) and individual control messages.  Each run —
    /// up to `batch_size` operations — goes through the configured
    /// [`BatchExecutor`] as one staged round: hash + prefetch everything,
    /// then execute everything, then publish all the replies with one ring
    /// synchronization.  Control messages are executed scalar, exactly
    /// where they appeared, so the request order every client observes is
    /// identical to the pre-pipeline server's.
    fn process_lane_batch(
        &mut self,
        lane_idx: usize,
        words: &[u64],
        migration: &mut MigrationState,
        scratch: &mut Scratch,
    ) {
        let mut i = 0usize;
        while i < words.len() {
            // Collect a run of data operations, bounded by the pipeline
            // depth; stop (without consuming) at the first control message.
            scratch.ops.clear();
            while i < words.len() && scratch.ops.len() < self.batch_size {
                let word = words[i];
                let Some((op, payload)) = decode_word(word) else {
                    // Corrupt word: skip it. This cannot happen with the
                    // provided client, but a malformed word must not take
                    // the whole server down.
                    i += 1;
                    continue;
                };
                let kind = match op {
                    OpCode::Lookup => DataOpKind::Lookup,
                    OpCode::Insert => DataOpKind::Insert,
                    OpCode::Delete => DataOpKind::Delete,
                    _ => break,
                };
                i += 1;
                self.stats.messages.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                let size = if kind == DataOpKind::Insert {
                    // The size travels in the next word, which may still be
                    // in flight if it crossed a cache-line flush boundary.
                    match words.get(i) {
                        Some(&w) => {
                            i += 1;
                            w
                        }
                        None => self.wait_for_extra_word(lane_idx),
                    }
                } else {
                    0
                };
                scratch.ops.push(DataOp {
                    kind,
                    key: payload,
                    size,
                });
            }
            if !scratch.ops.is_empty() {
                self.execute_run(lane_idx, migration, scratch);
            }
            // A control message at the run boundary (the inner loop only
            // breaks before one, at the depth bound, or at the end).
            if i < words.len() {
                if let Some((op, payload)) = decode_word(words[i]) {
                    if !matches!(op, OpCode::Lookup | OpCode::Insert | OpCode::Delete) {
                        i += 1;
                        self.stats.messages.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                        self.process_control(op, payload, lane_idx, words, &mut i, migration);
                    }
                }
            }
        }
    }

    /// Run one collected batch of data operations through the executor and
    /// publish the replies.
    fn execute_run(
        &mut self,
        lane_idx: usize,
        migration: &mut MigrationState,
        scratch: &mut Scratch,
    ) {
        scratch.replies.clear();
        {
            let mut ctx = OpCtx {
                partition: &mut self.partition,
                router: &self.router,
                index: self.index,
                migration,
            };
            self.executor.execute(
                &mut ctx,
                &scratch.ops,
                &mut scratch.replies,
                &self.stats.batch,
            );
        }
        debug_assert_eq!(scratch.replies.len(), scratch.ops.len());
        self.stats
            .operations
            .fetch_add(scratch.ops.len() as u64, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        let span = StageSpan::begin(TraceStage::ReplyPublish);
        if self.executor.batched_replies() {
            self.respond_batch(lane_idx, &scratch.replies);
        } else {
            for response in &scratch.replies {
                self.respond(lane_idx, *response);
            }
        }
        span.finish(scratch.replies.len() as u32);
    }

    /// Process one control message (`Ready`/`Decref`/migration plumbing).
    fn process_control(
        &mut self,
        op: OpCode,
        payload: u64,
        lane_idx: usize,
        words: &[u64],
        i: &mut usize,
        migration: &mut MigrationState,
    ) {
        match op {
            OpCode::Lookup | OpCode::Insert | OpCode::Delete => {
                // lint: allow(hot-path) dispatch invariant, not a data path
                unreachable!("data operations go through the pipeline")
            }
            OpCode::Ready => {
                self.partition
                    .mark_ready(cphash_hashcore::ElementId(payload as u32));
                if migration.draining.is_some() {
                    self.try_finish_drain(migration);
                }
            }
            OpCode::Decref => {
                self.partition
                    .decref(cphash_hashcore::ElementId(payload as u32));
            }
            OpCode::MigratePrepare => {
                let step = MigrationStep::from_payload(payload);
                self.purge_stale(migration);
                // Live capacity re-split: every server active after the
                // transition is a receiver, so the first prepare it sees
                // re-budgets its partition to its share of the global
                // budget at the *new* partition count (idempotent
                // afterwards).
                if self.capacity_total.is_some() {
                    self.partition
                        .set_capacity_bytes(crate::config::split_capacity(
                            self.capacity_total,
                            step.new_partitions,
                        ));
                }
                migration.incoming.insert(step.chunk, step);
                self.respond(lane_idx, Response::FOUND);
            }
            OpCode::MigrateOut => {
                let step = MigrationStep::from_payload(payload);
                self.purge_stale(migration);
                match self.export_step(step) {
                    Some(response) => {
                        migration.outgoing.insert(step.chunk, step);
                        self.respond(lane_idx, response);
                    }
                    None => {
                        // In-flight inserts block the extraction; the
                        // response is deferred until they publish.
                        migration.draining = Some((lane_idx, step));
                    }
                }
            }
            OpCode::MigrateIn => {
                let addr = match words.get(*i) {
                    Some(&w) => {
                        *i += 1;
                        w
                    }
                    None => self.wait_for_extra_word(lane_idx),
                };
                let step = MigrationStep::from_payload(payload);
                let mut absorbed = 0usize;
                // The sentinel address 1 is an empty (and final)
                // delivery; real batches say themselves whether more
                // deliveries of this chunk follow.
                let mut is_final = true;
                if addr > 1 {
                    // SAFETY: the coordinator leaked exactly this batch
                    // with `into_addr` and transfers ownership with this
                    // message.
                    let batch = unsafe { MigrationBatch::from_addr(addr) };
                    is_final = batch.last;
                    for (key, value) in batch.entries {
                        // A failed absorb (value larger than this
                        // partition's budget) drops the entry, exactly
                        // like an eviction at the moment of migration.
                        if self.partition.absorb(key, &value).is_ok() {
                            absorbed += 1;
                        }
                    }
                }
                if is_final {
                    // Only the final delivery completes the chunk: keys
                    // still travelling in a later split batch must keep
                    // getting "retry here" answers until they land.
                    migration.incoming.remove(&step.chunk);
                }
                self.stats
                    .keys_migrated_in
                    .fetch_add(absorbed as u64, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                self.respond(
                    lane_idx,
                    Response {
                        addr: 1,
                        meta: absorbed as u64,
                    },
                );
            }
        }
    }

    /// Attempt the extraction for `step`. `Some(response)` when the chunk
    /// was exported (or empty), `None` while NOT-READY inserts block it.
    ///
    /// Uses the partition's per-chunk membership index, so the extraction
    /// cost is proportional to the chunk's population — not the table size.
    fn export_step(&mut self, step: MigrationStep) -> Option<Response> {
        let me = self.index;
        let outcome = self.partition.export_chunk(step.chunk, |key| {
            partition_for_key(key, step.new_partitions) != me
        });
        match outcome {
            ExportOutcome::Extracted(entries) => {
                self.stats
                    .keys_migrated_out
                    .fetch_add(entries.len() as u64, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                if entries.is_empty() {
                    Some(Response::FOUND)
                } else {
                    let count = entries.len();
                    Some(Response::with_batch(
                        MigrationBatch::new(entries).into_addr(),
                        count,
                    ))
                }
            }
            ExportOutcome::Pending { .. } => None,
        }
    }

    /// Retry a drain-blocked extraction (called after `Ready` messages and
    /// once per loop iteration while draining).
    fn try_finish_drain(&mut self, migration: &mut MigrationState) {
        if let Some((lane_idx, step)) = migration.draining {
            let response = match self.export_step(step) {
                Some(response) => response,
                // Blocked on NOT-READY reservations: if every client
                // endpoint is gone (shutdown with a resize in flight), the
                // pending `Ready` messages can never arrive — abandon the
                // dead reservations rather than stalling the coordinator
                // forever.
                None if !self.any_client_alive() => {
                    let me = self.index;
                    let entries = self
                        .partition
                        .export_chunk_abandoning_reservations(step.chunk, |key| {
                            partition_for_key(key, step.new_partitions) != me
                        });
                    self.stats
                        .keys_migrated_out
                        .fetch_add(entries.len() as u64, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                    if entries.is_empty() {
                        Response::FOUND
                    } else {
                        let count = entries.len();
                        Response::with_batch(MigrationBatch::new(entries).into_addr(), count)
                    }
                }
                None => return,
            };
            migration.draining = None;
            migration.outgoing.insert(step.chunk, step);
            self.respond(lane_idx, response);
            self.lanes[lane_idx].flush();
        }
    }

    /// Whether any *client* lane (every lane but the control plane's, which
    /// is last) still has a live peer.
    fn any_client_alive(&self) -> bool {
        let clients = self.lanes.len().saturating_sub(1);
        self.lanes[..clients].iter().any(|l| l.is_client_alive())
    }

    /// Drop migration entries that no longer describe the live transition.
    fn purge_stale(&self, migration: &mut MigrationState) {
        let snap = self.router.snapshot();
        migration
            .incoming
            .retain(|chunk, step| step_is_current(step, *chunk, &snap));
        migration
            .outgoing
            .retain(|chunk, step| step_is_current(step, *chunk, &snap));
    }

    /// Spin until the second word of a two-word request becomes visible.
    /// The sender always flushes after queueing a batch, so this terminates
    /// unless the sender vanishes — in which case we bail out with a zero
    /// word (the insert degenerates to an empty value).
    fn wait_for_extra_word(&mut self, lane_idx: usize) -> u64 {
        loop {
            if let Some(w) = self.lanes[lane_idx].try_recv() {
                self.stats.messages.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
                return w;
            }
            if !self.lanes[lane_idx].is_client_alive() {
                return 0;
            }
            core::hint::spin_loop();
        }
    }

    /// Publish a whole run's responses with one ring synchronization,
    /// spinning only if the response ring is momentarily full (the client
    /// bounds its outstanding requests below the ring capacity, so the
    /// common case is exactly one capacity check and one index publish).
    fn respond_batch(&mut self, lane_idx: usize, replies: &[Response]) {
        let lane = &mut self.lanes[lane_idx];
        let mut sent = 0usize;
        while sent < replies.len() {
            sent += lane.send_batch(&replies[sent..]);
            if sent < replies.len() {
                if !lane.is_client_alive() {
                    return;
                }
                core::hint::spin_loop();
            }
        }
    }

    /// Queue a response on a lane, spinning if the response ring is
    /// momentarily full (the client bounds its outstanding requests below
    /// the ring capacity, so this never spins in practice).
    fn respond(&mut self, lane_idx: usize, response: Response) {
        let lane = &mut self.lanes[lane_idx];
        let mut r = response;
        loop {
            match lane.try_send(r) {
                Ok(()) => return,
                Err(full) => {
                    r = full.message;
                    lane.flush();
                    if !lane.is_client_alive() {
                        return;
                    }
                    core::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode, Request};
    use cphash_channel::{duplex, DuplexClient, RingConfig};
    use cphash_hashcore::PartitionConfig;

    fn test_server(
        index: usize,
        router: Arc<EpochRouter>,
    ) -> (DuplexClient<u64, Response>, ServerThread, Arc<AtomicBool>) {
        let (client, server_end) = duplex::<u64, Response>(RingConfig::with_capacity(1024));
        let stop = Arc::new(AtomicBool::new(false));
        let server = ServerThread {
            index,
            partition: Partition::new(PartitionConfig::new(64, None)),
            lanes: vec![server_end],
            pin: None,
            stop: Arc::clone(&stop),
            stats: Arc::new(ServerStats::new()),
            partition_stats: Arc::new(Mutex::new(PartitionStats::default())),
            router,
            capacity_total: None,
            executor: crate::pipeline::executor_for(crate::config::ServerPipeline::default()),
            batch_size: crate::config::DEFAULT_BATCH_SIZE,
        };
        (client, server, stop)
    }

    /// Drive a server thread object synchronously on the current thread by
    /// feeding it requests and then raising the stop flag.
    fn run_one_exchange(requests: Vec<Request>) -> Vec<Response> {
        let router = Arc::new(EpochRouter::new(1, 64, 1));
        let (mut client, server, stop) = test_server(0, router);

        for r in &requests {
            let (w0, w1) = encode(r);
            client.send_blocking(w0);
            if let Some(w1) = w1 {
                client.send_blocking(w1);
            }
        }
        client.flush();

        let expected_responses = requests
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Request::Lookup { .. }
                        | Request::Insert { .. }
                        | Request::Delete { .. }
                        | Request::MigratePrepare { .. }
                        | Request::MigrateOut { .. }
                        | Request::MigrateIn { .. }
                )
            })
            .count();

        let handle = std::thread::spawn(move || server.run());
        let mut responses = Vec::new();
        while responses.len() < expected_responses {
            if let Some(r) = client.try_recv() {
                responses.push(r);
            } else {
                core::hint::spin_loop();
            }
        }
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
        responses
    }

    #[test]
    fn lookup_on_empty_table_misses() {
        let responses = run_one_exchange(vec![Request::Lookup { key: 7 }]);
        assert_eq!(responses, vec![Response::MISS]);
    }

    #[test]
    fn insert_reserves_space_and_returns_location() {
        let responses = run_one_exchange(vec![Request::Insert { key: 9, size: 8 }]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].has_value());
        assert_eq!(responses[0].value_size(), 8);
    }

    #[test]
    fn delete_reports_absence() {
        let responses = run_one_exchange(vec![Request::Delete { key: 3 }]);
        assert_eq!(responses, vec![Response::MISS]);
    }

    #[test]
    fn requests_for_keys_owned_elsewhere_are_redirected() {
        // Router says two partitions; this server is index 0, so any key
        // owned by partition 1 must bounce with a retry response.
        let router = Arc::new(EpochRouter::new(2, 64, 2));
        let foreign_key = (0..).find(|k| partition_for_key(*k, 2) == 1).unwrap();
        let (mut client, server, stop) = test_server(0, Arc::clone(&router));
        let (w0, _) = encode(&Request::Lookup { key: foreign_key });
        client.send_blocking(w0);
        client.flush();
        let handle = std::thread::spawn(move || server.run());
        let resp = loop {
            if let Some(r) = client.try_recv() {
                break r;
            }
            core::hint::spin_loop();
        };
        assert!(resp.is_retry());
        assert_eq!(resp.retry_destination(), 1);
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn corrupt_words_are_skipped() {
        // A zero word has no valid opcode; the following lookup must still
        // be processed.
        let router = Arc::new(EpochRouter::new(1, 64, 1));
        let (mut client, server, stop) = test_server(0, router);
        client.send_blocking(0);
        let (w0, _) = encode(&Request::Lookup { key: 1 });
        client.send_blocking(w0);
        client.flush();
        let handle = std::thread::spawn(move || server.run());
        let resp = loop {
            if let Some(r) = client.try_recv() {
                break r;
            }
            core::hint::spin_loop();
        };
        assert_eq!(resp, Response::MISS);
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
