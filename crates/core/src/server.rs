//! The server thread: owns one partition and serves requests from every
//! client's message lane.
//!
//! "Each server thread performs the operations for its partition. The server
//! thread continuously loops over the message queues of each client checking
//! for new requests. When a request arrives, the server thread performs the
//! requested operation and sends its result back to the client." (§3.2)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cphash_affinity::{pin_to_hw_thread, HwThreadId};
use cphash_channel::DuplexServer;
use cphash_hashcore::{Partition, PartitionStats};
use parking_lot::Mutex;

use crate::protocol::{decode_word, OpCode, Response};
use crate::stats::ServerStats;

/// Maximum request words a server drains from one lane before moving on to
/// the next lane, so a single busy client cannot starve the others.
const LANE_BATCH: usize = 256;

/// Everything one server thread needs.
pub(crate) struct ServerThread {
    /// Index of this server / partition (kept for diagnostics and panics).
    #[allow(dead_code)]
    pub index: usize,
    /// The partition this server owns.
    pub partition: Partition,
    /// One lane per client, in client order.
    pub lanes: Vec<DuplexServer<u64, Response>>,
    /// Hardware thread to pin to, if any.
    pub pin: Option<HwThreadId>,
    /// Set by the table handle to stop the loop.
    pub stop: Arc<AtomicBool>,
    /// Shared runtime counters.
    pub stats: Arc<ServerStats>,
    /// Where the final (and periodically refreshed) partition statistics are
    /// published for the table handle.
    pub partition_stats: Arc<Mutex<PartitionStats>>,
}

impl ServerThread {
    /// Run the server loop until the stop flag is raised.
    pub(crate) fn run(mut self) {
        if let Some(hw) = self.pin {
            self.stats.record_pin(pin_to_hw_thread(hw));
        }
        let mut words: Vec<u64> = Vec::with_capacity(LANE_BATCH);
        let mut idle_streak: u32 = 0;
        let mut iterations: u64 = 0;

        while !self.stop.load(Ordering::Relaxed) {
            let mut did_work = false;
            for lane_idx in 0..self.lanes.len() {
                let drained = {
                    let lane = &mut self.lanes[lane_idx];
                    words.clear();
                    lane.recv_batch(&mut words, LANE_BATCH)
                };
                if drained == 0 {
                    continue;
                }
                did_work = true;
                self.process_lane_batch(lane_idx, &words);
                self.lanes[lane_idx].flush();
            }

            iterations += 1;
            if did_work {
                self.stats.busy_iterations.fetch_add(1, Ordering::Relaxed);
                idle_streak = 0;
            } else {
                self.stats.idle_iterations.fetch_add(1, Ordering::Relaxed);
                idle_streak = idle_streak.saturating_add(1);
                if idle_streak > 1024 {
                    // Be a good citizen on oversubscribed test machines; the
                    // paper's dedicated cores would just keep polling.
                    std::thread::yield_now();
                }
            }
            // Refresh the shared partition statistics occasionally so the
            // table handle can report hit rates mid-run.
            if iterations % 4096 == 0 {
                *self.partition_stats.lock() = self.partition.stats();
            }
        }

        *self.partition_stats.lock() = self.partition.stats();
        self.stats.stopped.store(true, Ordering::Release);
    }

    /// Process one batch of request words from one client lane.
    fn process_lane_batch(&mut self, lane_idx: usize, words: &[u64]) {
        let mut i = 0usize;
        while i < len_of(words) {
            let word = words[i];
            i += 1;
            let Some((op, payload)) = decode_word(word) else {
                // Corrupt word: skip it. This cannot happen with the
                // provided client, but a malformed word must not take the
                // whole server down.
                continue;
            };
            self.stats.messages.fetch_add(1, Ordering::Relaxed);
            match op {
                OpCode::Lookup => {
                    let response = match self.partition.lookup(payload) {
                        Some(hit) => Response::with_value(hit.value.addr(), hit.id, hit.value.len()),
                        None => Response::MISS,
                    };
                    self.respond(lane_idx, response);
                    self.stats.operations.fetch_add(1, Ordering::Relaxed);
                }
                OpCode::Insert => {
                    // The size travels in the next word, which may still be
                    // in flight if it crossed a cache-line flush boundary.
                    let size = match words.get(i) {
                        Some(&w) => {
                            i += 1;
                            w
                        }
                        None => self.wait_for_extra_word(lane_idx),
                    };
                    let response = match self.partition.insert(payload, size as usize) {
                        Ok(reservation) => Response::with_value(
                            reservation.value.addr(),
                            reservation.id,
                            size as usize,
                        ),
                        Err(_) => Response::MISS,
                    };
                    self.respond(lane_idx, response);
                    self.stats.operations.fetch_add(1, Ordering::Relaxed);
                }
                OpCode::Ready => {
                    self.partition.mark_ready(cphash_hashcore::ElementId(payload as u32));
                }
                OpCode::Decref => {
                    self.partition.decref(cphash_hashcore::ElementId(payload as u32));
                }
                OpCode::Delete => {
                    let response = if self.partition.delete(payload) {
                        Response::FOUND
                    } else {
                        Response::MISS
                    };
                    self.respond(lane_idx, response);
                    self.stats.operations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Spin until the second word of an insert message becomes visible.
    /// The client always flushes after queueing a batch, so this terminates
    /// unless the client vanishes — in which case we bail out with a size of
    /// zero (the insert degenerates to an empty value).
    fn wait_for_extra_word(&mut self, lane_idx: usize) -> u64 {
        loop {
            if let Some(w) = self.lanes[lane_idx].try_recv() {
                self.stats.messages.fetch_add(1, Ordering::Relaxed);
                return w;
            }
            if !self.lanes[lane_idx].is_client_alive() {
                return 0;
            }
            core::hint::spin_loop();
        }
    }

    /// Queue a response on a lane, spinning if the response ring is
    /// momentarily full (the client bounds its outstanding requests below
    /// the ring capacity, so this never spins in practice).
    fn respond(&mut self, lane_idx: usize, response: Response) {
        let lane = &mut self.lanes[lane_idx];
        let mut r = response;
        loop {
            match lane.try_send(r) {
                Ok(()) => return,
                Err(full) => {
                    r = full.message;
                    lane.flush();
                    if !lane.is_client_alive() {
                        return;
                    }
                    core::hint::spin_loop();
                }
            }
        }
    }
}

#[inline]
fn len_of(words: &[u64]) -> usize {
    words.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode, Request};
    use cphash_channel::{duplex, RingConfig};
    use cphash_hashcore::PartitionConfig;

    /// Drive a server thread object synchronously on the current thread by
    /// feeding it requests and then raising the stop flag.
    fn run_one_exchange(requests: Vec<Request>) -> Vec<Response> {
        let (mut client, server_end) = duplex::<u64, Response>(RingConfig::with_capacity(1024));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::new());
        let pstats = Arc::new(Mutex::new(PartitionStats::default()));
        let server = ServerThread {
            index: 0,
            partition: Partition::new(PartitionConfig::new(64, None)),
            lanes: vec![server_end],
            pin: None,
            stop: Arc::clone(&stop),
            stats,
            partition_stats: pstats,
        };

        for r in &requests {
            let (w0, w1) = encode(r);
            client.send_blocking(w0);
            if let Some(w1) = w1 {
                client.send_blocking(w1);
            }
        }
        client.flush();

        let expected_responses = requests
            .iter()
            .filter(|r| matches!(r, Request::Lookup { .. } | Request::Insert { .. } | Request::Delete { .. }))
            .count();

        let handle = std::thread::spawn(move || server.run());
        let mut responses = Vec::new();
        while responses.len() < expected_responses {
            if let Some(r) = client.try_recv() {
                responses.push(r);
            } else {
                core::hint::spin_loop();
            }
        }
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
        responses
    }

    #[test]
    fn lookup_on_empty_table_misses() {
        let responses = run_one_exchange(vec![Request::Lookup { key: 7 }]);
        assert_eq!(responses, vec![Response::MISS]);
    }

    #[test]
    fn insert_reserves_space_and_returns_location() {
        let responses = run_one_exchange(vec![Request::Insert { key: 9, size: 8 }]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].has_value());
        assert_eq!(responses[0].value_size(), 8);
    }

    #[test]
    fn delete_reports_absence() {
        let responses = run_one_exchange(vec![Request::Delete { key: 3 }]);
        assert_eq!(responses, vec![Response::MISS]);
    }

    #[test]
    fn corrupt_words_are_skipped() {
        // A zero word has no valid opcode; the following lookup must still
        // be processed.
        let (mut client, server_end) = duplex::<u64, Response>(RingConfig::with_capacity(256));
        let stop = Arc::new(AtomicBool::new(false));
        let server = ServerThread {
            index: 0,
            partition: Partition::new(PartitionConfig::new(64, None)),
            lanes: vec![server_end],
            pin: None,
            stop: Arc::clone(&stop),
            stats: Arc::new(ServerStats::new()),
            partition_stats: Arc::new(Mutex::new(PartitionStats::default())),
        };
        client.send_blocking(0);
        let (w0, _) = encode(&Request::Lookup { key: 1 });
        client.send_blocking(w0);
        client.flush();
        let handle = std::thread::spawn(move || server.run());
        let resp = loop {
            if let Some(r) = client.try_recv() {
                break r;
            }
            core::hint::spin_loop();
        };
        assert_eq!(resp, Response::MISS);
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
