//! Arbitrary-length keys on top of 60-bit hash keys (paper §8.2).
//!
//! The paper's extension plan: "use on INSERT the 60-bit hash of the given
//! key as a hash key and store both the key and the value together as a
//! value. Then to perform the LOOKUP … compare the key string to the actual
//! key that the client wanted to look up, and, if there is a match, return
//! the value. If the key strings do not match, this would mean a hash
//! collision … In this case, CPHASH would just return that the value was
//! not found; since CPHASH is a cache, this doesn't violate correctness."
//!
//! [`AnyKeyClient`] implements exactly that envelope encoding over any
//! [`ClientHandle`].

use cphash_kvproto::envelope::{decode_envelope, encode_envelope, hash_key};

use crate::client::{ClientHandle, TableError};

/// Adapter giving a [`ClientHandle`] a byte-string key API.
///
/// Since kvproto v2 the envelope encoding itself lives in the protocol
/// layer (`cphash_kvproto::envelope`) so servers share it; this adapter
/// remains the zero-cost in-process convenience.  For code that must run
/// against remote backends too, use the [`crate::kv::KvClient`] trait with
/// [`crate::kv::KeyRef::Bytes`] instead.
pub struct AnyKeyClient<'a> {
    client: &'a mut ClientHandle,
}

impl<'a> AnyKeyClient<'a> {
    /// Wrap a client handle.
    pub fn new(client: &'a mut ClientHandle) -> Self {
        AnyKeyClient { client }
    }

    /// The 60-bit hash key used for a byte-string key.
    pub fn hash_key(key: &[u8]) -> u64 {
        hash_key(key)
    }

    /// Insert `value` under a byte-string `key`.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<bool, TableError> {
        let envelope = encode_envelope(key, value);
        self.client.insert(Self::hash_key(key), &envelope)
    }

    /// Look up a byte-string `key`. Returns `None` on a miss *or* on a hash
    /// collision with a different key (the cache semantics of §8.2).
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, TableError> {
        let Some(stored) = self.client.get(Self::hash_key(key))? else {
            return Ok(None);
        };
        Ok(
            decode_envelope(stored.as_slice()).and_then(|(stored_key, value)| {
                if stored_key == key {
                    Some(value.to_vec())
                } else {
                    None
                }
            }),
        )
    }

    /// Remove a byte-string `key`. Returns whether the hash key was present
    /// (a collision could, rarely, remove a different key — acceptable for a
    /// cache, as the paper argues).
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, TableError> {
        self.client.delete(Self::hash_key(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CpHash;

    #[test]
    fn hash_keys_match_the_protocol_layer() {
        // One hash for a byte key everywhere: adapter == protocol layer.
        assert_eq!(AnyKeyClient::hash_key(b"hello"), hash_key(b"hello"));
        assert!(AnyKeyClient::hash_key(b"hello") <= cphash_hashcore::MAX_KEY);
    }

    #[test]
    fn string_keys_round_trip_through_the_table() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        {
            let mut any = AnyKeyClient::new(&mut clients[0]);
            assert!(any.insert(b"user:1234:name", b"Ada Lovelace").unwrap());
            assert!(any.insert(b"user:1234:email", b"ada@example.com").unwrap());
            assert_eq!(
                any.get(b"user:1234:name").unwrap().as_deref(),
                Some(&b"Ada Lovelace"[..])
            );
            assert_eq!(any.get(b"user:9999:name").unwrap(), None);
            assert!(any.delete(b"user:1234:name").unwrap());
            assert_eq!(any.get(b"user:1234:name").unwrap(), None);
        }
        drop(clients);
        table.shutdown();
    }
}
