//! Arbitrary-length keys on top of 60-bit hash keys (paper §8.2).
//!
//! The paper's extension plan: "use on INSERT the 60-bit hash of the given
//! key as a hash key and store both the key and the value together as a
//! value. Then to perform the LOOKUP … compare the key string to the actual
//! key that the client wanted to look up, and, if there is a match, return
//! the value. If the key strings do not match, this would mean a hash
//! collision … In this case, CPHASH would just return that the value was
//! not found; since CPHASH is a cache, this doesn't violate correctness."
//!
//! [`AnyKeyClient`] implements exactly that envelope encoding over any
//! [`ClientHandle`].

use cphash_hashcore::{hash64, MAX_KEY};

use crate::client::{ClientHandle, TableError};

/// Adapter giving a [`ClientHandle`] a byte-string key API.
pub struct AnyKeyClient<'a> {
    client: &'a mut ClientHandle,
}

impl<'a> AnyKeyClient<'a> {
    /// Wrap a client handle.
    pub fn new(client: &'a mut ClientHandle) -> Self {
        AnyKeyClient { client }
    }

    /// The 60-bit hash key used for a byte-string key.
    pub fn hash_key(key: &[u8]) -> u64 {
        // Hash the bytes 8 at a time through the same mixer the table uses.
        let mut acc: u64 = 0x9E37_79B9_97F4_A7C1 ^ (key.len() as u64);
        for chunk in key.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = hash64(acc ^ u64::from_le_bytes(word));
        }
        acc & MAX_KEY
    }

    /// Insert `value` under a byte-string `key`.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<bool, TableError> {
        let envelope = encode_envelope(key, value);
        self.client.insert(Self::hash_key(key), &envelope)
    }

    /// Look up a byte-string `key`. Returns `None` on a miss *or* on a hash
    /// collision with a different key (the cache semantics of §8.2).
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, TableError> {
        let Some(stored) = self.client.get(Self::hash_key(key))? else {
            return Ok(None);
        };
        Ok(
            decode_envelope(stored.as_slice()).and_then(|(stored_key, value)| {
                if stored_key == key {
                    Some(value.to_vec())
                } else {
                    None
                }
            }),
        )
    }

    /// Remove a byte-string `key`. Returns whether the hash key was present
    /// (a collision could, rarely, remove a different key — acceptable for a
    /// cache, as the paper argues).
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, TableError> {
        self.client.delete(Self::hash_key(key))
    }
}

/// `[key_len: u32 LE][key bytes][value bytes]`.
fn encode_envelope(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Split an envelope back into key and value.
fn decode_envelope(envelope: &[u8]) -> Option<(&[u8], &[u8])> {
    if envelope.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(envelope[..4].try_into().ok()?) as usize;
    if envelope.len() < 4 + key_len {
        return None;
    }
    Some((&envelope[4..4 + key_len], &envelope[4 + key_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CpHash;

    #[test]
    fn envelope_round_trips() {
        let e = encode_envelope(b"key", b"value bytes");
        assert_eq!(
            decode_envelope(&e),
            Some((&b"key"[..], &b"value bytes"[..]))
        );
        assert_eq!(decode_envelope(&[1, 2]), None);
        assert_eq!(decode_envelope(&[200, 0, 0, 0, 1]), None);
    }

    #[test]
    fn hash_keys_are_60_bit_and_deterministic() {
        let a = AnyKeyClient::hash_key(b"hello");
        let b = AnyKeyClient::hash_key(b"hello");
        let c = AnyKeyClient::hash_key(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a <= MAX_KEY);
    }

    #[test]
    fn string_keys_round_trip_through_the_table() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        {
            let mut any = AnyKeyClient::new(&mut clients[0]);
            assert!(any.insert(b"user:1234:name", b"Ada Lovelace").unwrap());
            assert!(any.insert(b"user:1234:email", b"ada@example.com").unwrap());
            assert_eq!(
                any.get(b"user:1234:name").unwrap().as_deref(),
                Some(&b"Ada Lovelace"[..])
            );
            assert_eq!(any.get(b"user:9999:name").unwrap(), None);
            assert!(any.delete(b"user:1234:name").unwrap());
            assert_eq!(any.get(b"user:1234:name").unwrap(), None);
        }
        drop(clients);
        table.shutdown();
    }
}
