//! One typed operations API over every backend.
//!
//! [`KvClient`] is the unified submit/poll client contract: loadgen
//! scenarios, benches, examples and the end-to-end tests drive u64- and
//! byte-string-keyed workloads through this trait and run unchanged
//! against
//!
//! * the **in-process** table ([`crate::ClientHandle`], message-passing
//!   lanes to pinned server threads),
//! * **CPSERVER over TCP** ([`crate::remote::RemoteClient`], kvproto v2
//!   with transparent v1 fallback), and
//! * the **memcached-style baseline** ([`crate::remote::PartitionedClient`],
//!   client-side key partitioning across independent instances — exactly
//!   how the paper's §7 clients drove stock memcached).
//!
//! The contract is pipelined: `submit` queues an operation and returns a
//! token; `poll_completions` is non-blocking and yields typed
//! [`Completion`]s in whatever order the backend resolves them, each
//! carrying its token.  `recommended_window` says how many operations to
//! keep in flight (the paper's clients pipeline ~1,000, §6.1).  Blocking
//! helpers (`get_blocking` & co.) are provided for non-pipelined callers —
//! they drain the pipeline, so do not mix them with in-flight tokens you
//! still care about.

use crate::client::{Completion, CompletionKind, OpError, ValueBytes};

/// A key, by reference: the table's native 60-bit hash key or an arbitrary
/// byte string (routed through the §8.2 envelope hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRef<'a> {
    /// 60-bit hash key.
    Hash(u64),
    /// Byte-string key.
    Bytes(&'a [u8]),
}

impl KeyRef<'_> {
    /// The 60-bit hash key this key routes by.
    pub fn hash(&self) -> u64 {
        match self {
            KeyRef::Hash(k) => *k & cphash_hashcore::MAX_KEY,
            KeyRef::Bytes(b) => cphash_kvproto::envelope::hash_key(b),
        }
    }
}

impl From<u64> for KeyRef<'static> {
    fn from(k: u64) -> Self {
        KeyRef::Hash(k)
    }
}

impl<'a> From<&'a [u8]> for KeyRef<'a> {
    fn from(b: &'a [u8]) -> Self {
        KeyRef::Bytes(b)
    }
}

/// One typed operation for [`KvClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp<'a> {
    /// Fetch the value under a key.
    Get(KeyRef<'a>),
    /// Store a value under a key.
    Insert(KeyRef<'a>, &'a [u8]),
    /// Remove a key.
    Delete(KeyRef<'a>),
}

/// Errors surfaced by the unified client API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The backend is gone (server thread shut down, TCP peer closed).
    Disconnected,
    /// The backend answered something the protocol does not allow here.
    Protocol,
    /// The operation failed with a typed error.
    Op(OpError),
    /// Transport error (remote backends).
    Io(std::io::ErrorKind),
}

impl core::fmt::Display for KvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KvError::Disconnected => f.write_str("backend disconnected"),
            KvError::Protocol => f.write_str("protocol violation"),
            KvError::Op(e) => write!(f, "operation failed: {e}"),
            KvError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for KvError {}

/// The unified submit/poll client contract (see the module docs).
pub trait KvClient {
    /// Human-readable backend name, for scenario reports.
    fn backend(&self) -> &'static str;

    /// Queue one operation; returns the token its [`Completion`] will
    /// carry.  Never blocks (backlogged work is buffered client-side).
    fn submit(&mut self, op: KvOp<'_>) -> u64;

    /// Push queued work towards the backend and collect available
    /// completions into `out` (non-blocking).  Returns the number
    /// appended.
    fn poll_completions(&mut self, out: &mut Vec<Completion>) -> usize;

    /// Operations submitted whose completion has not yet been returned.
    fn pending_ops(&self) -> usize;

    /// How many operations to keep in flight for throughput (a soft
    /// bound; ~1,000 in the paper's clients, §6.1).
    fn recommended_window(&self) -> usize;

    /// Can the backend still make progress?  `false` turns
    /// [`KvClient::drain_completions`] into an error instead of a hang.
    fn is_alive(&self) -> bool;

    /// Admin: re-partition the backend to `partitions` live servers
    /// (`chunks_per_sec` 0 = backend default pacing).  Drains the pipeline
    /// first.  Backends without live re-partitioning return
    /// `Err(KvError::Op(OpError::Unsupported))`.
    fn admin_resize(
        &mut self,
        _partitions: usize,
        _chunks_per_sec: u32,
    ) -> Result<String, KvError> {
        Err(KvError::Op(OpError::Unsupported))
    }

    /// Block (spinning) until every pending operation has completed,
    /// appending completions to `out`.
    fn drain_completions(&mut self, out: &mut Vec<Completion>) -> Result<(), KvError> {
        let mut idle: u32 = 0;
        while self.pending_ops() > 0 {
            if self.poll_completions(out) == 0 {
                if !self.is_alive() {
                    return Err(KvError::Disconnected);
                }
                idle = idle.saturating_add(1);
                if idle > 128 {
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            } else {
                idle = 0;
            }
        }
        Ok(())
    }

    /// Blocking get. Drains the pipeline (see the module docs).
    fn get_blocking(&mut self, key: KeyRef<'_>) -> Result<Option<ValueBytes>, KvError> {
        let token = self.submit(KvOp::Get(key));
        match wait_for(self, token)? {
            CompletionKind::LookupHit(v) => Ok(Some(v)),
            CompletionKind::LookupMiss => Ok(None),
            CompletionKind::Failed(e) => Err(KvError::Op(e)),
            _ => Err(KvError::Protocol),
        }
    }

    /// Blocking insert; `Ok(false)` when the backend had no room.  Drains
    /// the pipeline (see the module docs).
    fn insert_blocking(&mut self, key: KeyRef<'_>, value: &[u8]) -> Result<bool, KvError> {
        let token = self.submit(KvOp::Insert(key, value));
        match wait_for(self, token)? {
            CompletionKind::Inserted => Ok(true),
            CompletionKind::InsertFailed | CompletionKind::Failed(OpError::Capacity) => Ok(false),
            CompletionKind::Failed(e) => Err(KvError::Op(e)),
            _ => Err(KvError::Protocol),
        }
    }

    /// Blocking delete; returns whether the key was present.  Drains the
    /// pipeline (see the module docs).
    fn delete_blocking(&mut self, key: KeyRef<'_>) -> Result<bool, KvError> {
        let token = self.submit(KvOp::Delete(key));
        match wait_for(self, token)? {
            CompletionKind::Deleted(found) => Ok(found),
            CompletionKind::Failed(e) => Err(KvError::Op(e)),
            _ => Err(KvError::Protocol),
        }
    }
}

/// Drain until `token`'s completion appears and return its kind.  Other
/// completions drained along the way are discarded — the blocking helpers
/// are documented as pipeline-draining.
fn wait_for<C: KvClient + ?Sized>(client: &mut C, token: u64) -> Result<CompletionKind, KvError> {
    let mut buf = Vec::new();
    let mut found = None;
    while found.is_none() {
        buf.clear();
        if client.poll_completions(&mut buf) == 0 {
            if !client.is_alive() {
                return Err(KvError::Disconnected);
            }
            core::hint::spin_loop();
        }
        found = buf.drain(..).find(|c| c.token == token).map(|c| c.kind);
    }
    Ok(found.expect("loop exits only when found"))
}

impl KvClient for crate::ClientHandle {
    fn backend(&self) -> &'static str {
        "in-process"
    }

    fn submit(&mut self, op: KvOp<'_>) -> u64 {
        use cphash_kvproto::envelope;
        match op {
            KvOp::Get(KeyRef::Hash(k)) => self.submit_lookup(k),
            KvOp::Get(KeyRef::Bytes(b)) => {
                let token = self.submit_lookup(envelope::hash_key(b));
                self.anykey_gets.insert(token, b.to_vec());
                token
            }
            KvOp::Insert(KeyRef::Hash(k), value) => self.submit_insert(k, value),
            KvOp::Insert(KeyRef::Bytes(b), value) => {
                self.submit_insert(envelope::hash_key(b), &envelope::encode_envelope(b, value))
            }
            KvOp::Delete(key) => self.submit_delete(key.hash()),
        }
    }

    fn poll_completions(&mut self, out: &mut Vec<Completion>) -> usize {
        let before = out.len();
        self.poll(out);
        // Byte-key lookups travel as envelope lookups; unwrap them and
        // turn collisions into misses (§8.2) before the caller sees them.
        if !self.anykey_gets.is_empty() {
            for completion in out[before..].iter_mut() {
                let Some(wanted) = self.anykey_gets.remove(&completion.token) else {
                    continue;
                };
                if let CompletionKind::LookupHit(envelope) = &completion.kind {
                    completion.kind = match cphash_kvproto::envelope::unwrap_matching(
                        envelope.as_slice(),
                        &wanted,
                    ) {
                        Some(value) => CompletionKind::LookupHit(ValueBytes::from_slice(value)),
                        None => CompletionKind::LookupMiss,
                    };
                }
            }
        }
        out.len() - before
    }

    fn pending_ops(&self) -> usize {
        self.outstanding()
    }

    fn recommended_window(&self) -> usize {
        // Inherent method of the same name; qualified to avoid recursion.
        crate::ClientHandle::recommended_window(self)
    }

    fn is_alive(&self) -> bool {
        self.servers_alive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CpHash;

    /// The same scenario through the trait object, u64 and byte keys mixed.
    #[test]
    fn in_process_backend_speaks_the_unified_api() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        {
            let client: &mut dyn KvClient = &mut clients[0];
            assert_eq!(client.backend(), "in-process");
            assert!(client.recommended_window() > 0);
            assert!(client.is_alive());

            // u64 keys.
            assert!(client.insert_blocking(KeyRef::Hash(42), b"answer").unwrap());
            assert_eq!(
                client
                    .get_blocking(KeyRef::Hash(42))
                    .unwrap()
                    .unwrap()
                    .as_slice(),
                b"answer"
            );
            // Byte-string keys.
            assert!(client
                .insert_blocking(KeyRef::Bytes(b"user:7:name"), b"Ada")
                .unwrap());
            assert_eq!(
                client
                    .get_blocking(KeyRef::Bytes(b"user:7:name"))
                    .unwrap()
                    .unwrap()
                    .as_slice(),
                b"Ada"
            );
            assert_eq!(
                client.get_blocking(KeyRef::Bytes(b"user:8:name")).unwrap(),
                None
            );
            // Delete both ways.
            assert!(client.delete_blocking(KeyRef::Hash(42)).unwrap());
            assert!(!client.delete_blocking(KeyRef::Hash(42)).unwrap());
            assert!(client
                .delete_blocking(KeyRef::Bytes(b"user:7:name"))
                .unwrap());
            assert_eq!(
                client.get_blocking(KeyRef::Bytes(b"user:7:name")).unwrap(),
                None
            );
            // Resize is not a client-side operation in-process.
            assert_eq!(
                client.admin_resize(4, 0),
                Err(KvError::Op(OpError::Unsupported))
            );
        }
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn pipelined_byte_keys_translate_collisions_to_misses() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        {
            let client = &mut clients[0];
            let mut out = Vec::new();
            let keys: Vec<Vec<u8>> = (0..64u32)
                .map(|i| format!("item:{i:04}").into_bytes())
                .collect();
            for key in &keys {
                KvClient::submit(client, KvOp::Insert(KeyRef::Bytes(key), key.as_slice()));
            }
            client.drain_completions(&mut out).unwrap();
            assert!(out.iter().all(|c| c.kind == CompletionKind::Inserted));
            out.clear();
            let tokens: Vec<u64> = keys
                .iter()
                .map(|key| KvClient::submit(client, KvOp::Get(KeyRef::Bytes(key))))
                .collect();
            client.drain_completions(&mut out).unwrap();
            assert_eq!(out.len(), tokens.len());
            for (key, token) in keys.iter().zip(&tokens) {
                let c = out.iter().find(|c| c.token == *token).expect("completed");
                match &c.kind {
                    CompletionKind::LookupHit(v) => assert_eq!(v.as_slice(), key.as_slice()),
                    other => panic!("unexpected completion {other:?}"),
                }
            }
        }
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn key_refs_route_identically_everywhere() {
        assert_eq!(
            KeyRef::Bytes(b"abc").hash(),
            cphash_kvproto::envelope::hash_key(b"abc")
        );
        assert_eq!(KeyRef::Hash(u64::MAX).hash(), cphash_hashcore::MAX_KEY);
        assert_eq!(KeyRef::from(7u64), KeyRef::Hash(7));
        let b: KeyRef = (&b"xy"[..]).into();
        assert_eq!(b, KeyRef::Bytes(b"xy"));
    }
}
