//! The CPHash wire protocol between client and server threads.
//!
//! Requests travel client → server as packed 64-bit words so that eight of
//! them fit in one cache line (§6.2: "CPHASH can place eight lookup messages
//! (consisting of an 8-byte key) … into a single 64-byte cache line").
//! Because keys are limited to 60 bits (§3.1), the top four bits of each
//! word carry the opcode:
//!
//! | opcode | payload word 0 (low 60 bits) | extra word |
//! |--------|------------------------------|------------|
//! | `Lookup` | key                        | —          |
//! | `Insert` | key                        | value size in bytes |
//! | `Ready`  | element id                 | —          |
//! | `Decref` | element id                 | —          |
//! | `Delete` | key                        | —          |
//!
//! Responses travel server → client as 16-byte [`Response`] structs (a value
//! address plus element id and size), four per cache line — the same
//! packing the paper uses for insert messages.

use cphash_hashcore::{ElementId, MAX_KEY};

/// Operation codes carried in the top four bits of a request word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Look up a key; the server responds with the value location.
    Lookup = 1,
    /// Insert a key with a value of a given size; the server allocates space
    /// and responds with where the client must copy the bytes.
    Insert = 2,
    /// The client finished copying an inserted value; publish it.
    Ready = 3,
    /// The client finished reading a looked-up value; release the reference.
    Decref = 4,
    /// Remove a key; the server responds with whether it was present.
    Delete = 5,
    /// Announce to a *destination* server that a migration chunk is about to
    /// arrive, so it can defer requests for not-yet-absorbed keys.
    MigratePrepare = 6,
    /// Ask a *source* server to extract the keys of one migration chunk that
    /// the new partition layout assigns elsewhere.
    MigrateOut = 7,
    /// Hand a *destination* server an extracted batch to absorb.
    MigrateIn = 8,
}

impl OpCode {
    fn from_bits(bits: u64) -> Option<OpCode> {
        match bits {
            1 => Some(OpCode::Lookup),
            2 => Some(OpCode::Insert),
            3 => Some(OpCode::Ready),
            4 => Some(OpCode::Decref),
            5 => Some(OpCode::Delete),
            6 => Some(OpCode::MigratePrepare),
            7 => Some(OpCode::MigrateOut),
            8 => Some(OpCode::MigrateIn),
            _ => None,
        }
    }
}

/// One step of a re-partitioning: the chunk being moved plus the partition
/// counts on either side of the transition. Packed into the 60-bit payload
/// of the migration opcodes as `chunk:28 | old:16 | new:16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStep {
    /// Migration chunk index (see `cphash_hashcore::migration_chunk`).
    pub chunk: usize,
    /// Partition count before the transition.
    pub old_partitions: usize,
    /// Partition count after the transition.
    pub new_partitions: usize,
}

impl MigrationStep {
    /// Pack into a request payload.
    pub fn to_payload(self) -> u64 {
        debug_assert!(self.chunk < (1 << 28));
        debug_assert!(self.old_partitions < (1 << 16) && self.new_partitions < (1 << 16));
        ((self.chunk as u64) << 32)
            | ((self.old_partitions as u64) << 16)
            | self.new_partitions as u64
    }

    /// Unpack from a request payload.
    pub fn from_payload(payload: u64) -> MigrationStep {
        MigrationStep {
            chunk: (payload >> 32) as usize,
            old_partitions: ((payload >> 16) & 0xFFFF) as usize,
            new_partitions: (payload & 0xFFFF) as usize,
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Look up `key`.
    Lookup {
        /// The 60-bit key.
        key: u64,
    },
    /// Insert `key` with a value of `size` bytes.
    Insert {
        /// The 60-bit key.
        key: u64,
        /// Value size in bytes.
        size: u64,
    },
    /// Publish a previously reserved element.
    Ready {
        /// Element id returned by the insert response.
        id: ElementId,
    },
    /// Release a reference obtained by a lookup.
    Decref {
        /// Element id returned by the lookup response.
        id: ElementId,
    },
    /// Remove `key` from the table.
    Delete {
        /// The 60-bit key.
        key: u64,
    },
    /// Announce an incoming migration chunk to its destination server.
    MigratePrepare {
        /// The transition step.
        step: MigrationStep,
    },
    /// Extract a migration chunk from its source server.
    MigrateOut {
        /// The transition step.
        step: MigrationStep,
    },
    /// Deliver an extracted batch; the second word carries the address of a
    /// leaked `Box<MigrationBatch>` the destination takes ownership of.
    MigrateIn {
        /// The transition step.
        step: MigrationStep,
        /// Address of the `Box<MigrationBatch>` (shared-memory handoff).
        batch_addr: u64,
    },
}

/// Number of ring words a request occupies.
pub fn request_words(request: &Request) -> usize {
    match request {
        Request::Insert { .. } | Request::MigrateIn { .. } => 2,
        _ => 1,
    }
}

const OP_SHIFT: u32 = 60;
const PAYLOAD_MASK: u64 = (1 << OP_SHIFT) - 1;

/// Encode a request into one or two ring words (the second word is `None`
/// for single-word requests).
pub fn encode(request: &Request) -> (u64, Option<u64>) {
    match *request {
        Request::Lookup { key } => {
            debug_assert!(key <= MAX_KEY);
            (((OpCode::Lookup as u64) << OP_SHIFT) | key, None)
        }
        Request::Insert { key, size } => {
            debug_assert!(key <= MAX_KEY);
            (((OpCode::Insert as u64) << OP_SHIFT) | key, Some(size))
        }
        Request::Ready { id } => (((OpCode::Ready as u64) << OP_SHIFT) | id.0 as u64, None),
        Request::Decref { id } => (((OpCode::Decref as u64) << OP_SHIFT) | id.0 as u64, None),
        Request::Delete { key } => {
            debug_assert!(key <= MAX_KEY);
            (((OpCode::Delete as u64) << OP_SHIFT) | key, None)
        }
        Request::MigratePrepare { step } => (
            ((OpCode::MigratePrepare as u64) << OP_SHIFT) | step.to_payload(),
            None,
        ),
        Request::MigrateOut { step } => (
            ((OpCode::MigrateOut as u64) << OP_SHIFT) | step.to_payload(),
            None,
        ),
        Request::MigrateIn { step, batch_addr } => (
            ((OpCode::MigrateIn as u64) << OP_SHIFT) | step.to_payload(),
            Some(batch_addr),
        ),
    }
}

/// The opcode and payload of a request word. Returns `None` for a word whose
/// opcode bits are invalid (which would indicate ring corruption).
pub fn decode_word(word: u64) -> Option<(OpCode, u64)> {
    let op = OpCode::from_bits(word >> OP_SHIFT)?;
    Some((op, word & PAYLOAD_MASK))
}

/// Reassemble a full request from its first word and (for inserts) the
/// extra word.
pub fn decode(word: u64, extra: Option<u64>) -> Option<Request> {
    let (op, payload) = decode_word(word)?;
    Some(match op {
        OpCode::Lookup => Request::Lookup { key: payload },
        OpCode::Insert => Request::Insert {
            key: payload,
            size: extra?,
        },
        OpCode::Ready => Request::Ready {
            id: ElementId(payload as u32),
        },
        OpCode::Decref => Request::Decref {
            id: ElementId(payload as u32),
        },
        OpCode::Delete => Request::Delete { key: payload },
        OpCode::MigratePrepare => Request::MigratePrepare {
            step: MigrationStep::from_payload(payload),
        },
        OpCode::MigrateOut => Request::MigrateOut {
            step: MigrationStep::from_payload(payload),
        },
        OpCode::MigrateIn => Request::MigrateIn {
            step: MigrationStep::from_payload(payload),
            batch_addr: extra?,
        },
    })
}

/// A response from a server thread: where the value lives plus the element
/// id the client must hand back (`Ready`/`Decref`) and the value size.
///
/// Exactly 16 bytes so four responses pack into one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Response {
    /// Address of the value bytes; 0 means "not found" (for lookups) or
    /// "failed" (for inserts), 1 means "found/deleted" for responses that
    /// carry no data pointer.
    pub addr: u64,
    /// Low 32 bits: element id. High 32 bits: value size in bytes.
    pub meta: u64,
}

impl Response {
    /// The miss/failure response.
    pub const MISS: Response = Response { addr: 0, meta: 0 };

    /// Response indicating success without a data pointer (delete-found).
    pub const FOUND: Response = Response { addr: 1, meta: 0 };

    /// Sentinel address marking a retry response. Real value addresses are
    /// heap pointers and can never be all-ones.
    const RETRY_ADDR: u64 = u64::MAX;

    /// Build a response carrying a value location.
    pub fn with_value(addr: u64, id: ElementId, size: usize) -> Response {
        debug_assert!(
            addr > 1 && addr != Self::RETRY_ADDR,
            "value addresses never alias the sentinel values"
        );
        Response {
            addr,
            meta: ((size as u64) << 32) | id.0 as u64,
        }
    }

    /// Build a "wrong owner" response: the key now belongs to partition
    /// `dest` (or is mid-migration towards it); the client must resubmit the
    /// operation there.
    pub fn retry(dest: usize) -> Response {
        Response {
            addr: Self::RETRY_ADDR,
            meta: dest as u64,
        }
    }

    /// Build a response carrying an extracted migration batch: the address
    /// of a leaked `Box<MigrationBatch>` plus its entry count.
    pub fn with_batch(batch_addr: u64, entries: usize) -> Response {
        debug_assert!(batch_addr > 1 && batch_addr != Self::RETRY_ADDR);
        Response {
            addr: batch_addr,
            meta: entries as u64,
        }
    }

    /// Does this response redirect the operation to another partition?
    pub fn is_retry(&self) -> bool {
        self.addr == Self::RETRY_ADDR
    }

    /// The partition to resubmit to, for a retry response.
    pub fn retry_destination(&self) -> usize {
        debug_assert!(self.is_retry());
        self.meta as usize
    }

    /// Does this response indicate a hit / success?
    pub fn is_hit(&self) -> bool {
        self.addr != 0 && !self.is_retry()
    }

    /// Does this response carry a usable value pointer?
    pub fn has_value(&self) -> bool {
        self.addr > 1 && !self.is_retry()
    }

    /// The element id encoded in the response.
    pub fn element_id(&self) -> ElementId {
        ElementId((self.meta & 0xFFFF_FFFF) as u32)
    }

    /// The value size encoded in the response.
    pub fn value_size(&self) -> usize {
        (self.meta >> 32) as usize
    }
}

/// A batch of `(key, value bytes)` pairs extracted from one partition for
/// one migration chunk.
///
/// Batches are handed between threads *by address* through the existing
/// response/request rings — the same shared-memory pointer-passing the
/// paper uses for values — as a leaked `Box` whose ownership transfers with
/// the message: source server → coordinator (via [`Response::with_batch`]),
/// then coordinator → destination server (via [`Request::MigrateIn`]).
///
/// A chunk's delivery to one destination may be *split* into several
/// batches (the coordinator bounds each delivery by a byte budget so one
/// huge chunk cannot stall its receiving server); only the delivery with
/// `last == true` completes the chunk at the receiver.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MigrationBatch {
    /// The moved elements.
    pub entries: Vec<(u64, Vec<u8>)>,
    /// Whether this is the final delivery of its chunk to this receiver.
    /// Until the final batch lands, the receiver keeps treating the chunk
    /// as in flight (holding off requests for not-yet-absorbed keys).
    pub last: bool,
}

impl MigrationBatch {
    /// Wrap extracted entries as a complete (single-delivery) batch.
    pub fn new(entries: Vec<(u64, Vec<u8>)>) -> Self {
        MigrationBatch {
            entries,
            last: true,
        }
    }

    /// Wrap entries as a non-final delivery: more batches of the same chunk
    /// follow for this receiver.
    pub fn partial(entries: Vec<(u64, Vec<u8>)>) -> Self {
        MigrationBatch {
            entries,
            last: false,
        }
    }

    /// Leak onto the heap, returning the address to ship over a ring.
    pub fn into_addr(self) -> u64 {
        Box::into_raw(Box::new(self)) as u64
    }

    /// Reclaim a batch previously leaked with [`MigrationBatch::into_addr`].
    ///
    /// # Safety
    /// `addr` must come from exactly one `into_addr` call whose ownership
    /// was transferred to the caller and not yet reclaimed.
    pub unsafe fn from_addr(addr: u64) -> Box<MigrationBatch> {
        debug_assert!(addr > 1 && addr != Response::RETRY_ADDR);
        // SAFETY: per the contract above, `addr` is a uniquely-owned
        // `Box<MigrationBatch>` leaked by `into_addr`.
        unsafe { Box::from_raw(addr as *mut MigrationBatch) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_step_payload_round_trips() {
        let cases = [
            MigrationStep {
                chunk: 0,
                old_partitions: 2,
                new_partitions: 4,
            },
            MigrationStep {
                chunk: 1023,
                old_partitions: 1024,
                new_partitions: 1,
            },
            MigrationStep {
                chunk: (1 << 28) - 1,
                old_partitions: 65_535,
                new_partitions: 65_535,
            },
        ];
        for step in cases {
            assert_eq!(MigrationStep::from_payload(step.to_payload()), step);
            let (w0, w1) = encode(&Request::MigrateOut { step });
            assert_eq!(decode(w0, w1), Some(Request::MigrateOut { step }));
            let (w0, w1) = encode(&Request::MigratePrepare { step });
            assert_eq!(decode(w0, w1), Some(Request::MigratePrepare { step }));
            let (w0, w1) = encode(&Request::MigrateIn {
                step,
                batch_addr: 0xBEEF_0000,
            });
            assert_eq!(
                decode(w0, w1),
                Some(Request::MigrateIn {
                    step,
                    batch_addr: 0xBEEF_0000
                })
            );
        }
    }

    #[test]
    fn retry_responses_are_distinguishable() {
        let r = Response::retry(7);
        assert!(r.is_retry());
        assert_eq!(r.retry_destination(), 7);
        assert!(!r.is_hit());
        assert!(!r.has_value());
        assert!(!Response::MISS.is_retry());
        assert!(!Response::FOUND.is_retry());
        assert!(!Response::with_value(0x1000, ElementId(1), 8).is_retry());
    }

    #[test]
    fn migration_batch_address_round_trip() {
        let batch = MigrationBatch::new(vec![(1, vec![0xAA; 16]), (2, vec![0xBB; 3])]);
        let addr = batch.clone().into_addr();
        let resp = Response::with_batch(addr, 2);
        assert!(resp.is_hit());
        assert_eq!(resp.meta, 2);
        // SAFETY: addr comes from into_addr above and is reclaimed once.
        let back = unsafe { MigrationBatch::from_addr(resp.addr) };
        assert_eq!(*back, batch);
    }

    #[test]
    fn request_words_match_paper_packing() {
        // Lookups are one 8-byte word → 8 per cache line; inserts are two
        // words (16 bytes) → 4 per cache line.
        assert_eq!(request_words(&Request::Lookup { key: 1 }), 1);
        assert_eq!(request_words(&Request::Insert { key: 1, size: 8 }), 2);
        assert_eq!(request_words(&Request::Decref { id: ElementId(3) }), 1);
        assert_eq!(core::mem::size_of::<Response>(), 16);
        assert_eq!(cphash_cacheline::packing::messages_per_line(8), 8);
        assert_eq!(cphash_cacheline::packing::messages_per_line(16), 4);
    }

    #[test]
    fn encode_decode_round_trips() {
        let cases = [
            Request::Lookup { key: 0 },
            Request::Lookup { key: MAX_KEY },
            Request::Insert { key: 42, size: 0 },
            Request::Insert {
                key: 42,
                size: u64::MAX,
            },
            Request::Ready { id: ElementId(7) },
            Request::Decref {
                id: ElementId(u32::MAX - 1),
            },
            Request::Delete { key: 99 },
        ];
        for case in cases {
            let (w0, w1) = encode(&case);
            assert_eq!(decode(w0, w1), Some(case), "case {case:?}");
        }
    }

    #[test]
    fn invalid_opcode_is_rejected() {
        assert_eq!(decode_word(0), None);
        assert_eq!(decode_word(0xF << 60), None);
        assert_eq!(decode(0, None), None);
    }

    #[test]
    fn insert_without_extra_word_is_incomplete() {
        let (w0, _) = encode(&Request::Insert { key: 5, size: 100 });
        assert_eq!(decode(w0, None), None);
        let (op, payload) = decode_word(w0).unwrap();
        assert_eq!(op, OpCode::Insert);
        assert_eq!(payload, 5);
    }

    #[test]
    fn response_encoding_round_trips() {
        let r = Response::with_value(0xDEAD_BEEF_0000, ElementId(77), 4096);
        assert!(r.is_hit());
        assert!(r.has_value());
        assert_eq!(r.element_id(), ElementId(77));
        assert_eq!(r.value_size(), 4096);
        assert!(!Response::MISS.is_hit());
        assert!(Response::FOUND.is_hit());
        assert!(!Response::FOUND.has_value());
    }

    #[test]
    fn keys_with_high_bits_are_a_debug_error() {
        // In release builds the encode would silently mask; the public API
        // (`CpHash` / `ClientHandle`) masks keys to 60 bits before building
        // requests, so this is only reachable through the raw protocol.
        let key = MAX_KEY; // largest legal key round-trips fine
        let (w0, _) = encode(&Request::Lookup { key });
        assert_eq!(decode(w0, None), Some(Request::Lookup { key }));
    }
}
