//! The CPHash wire protocol between client and server threads.
//!
//! Requests travel client → server as packed 64-bit words so that eight of
//! them fit in one cache line (§6.2: "CPHASH can place eight lookup messages
//! (consisting of an 8-byte key) … into a single 64-byte cache line").
//! Because keys are limited to 60 bits (§3.1), the top four bits of each
//! word carry the opcode:
//!
//! | opcode | payload word 0 (low 60 bits) | extra word |
//! |--------|------------------------------|------------|
//! | `Lookup` | key                        | —          |
//! | `Insert` | key                        | value size in bytes |
//! | `Ready`  | element id                 | —          |
//! | `Decref` | element id                 | —          |
//! | `Delete` | key                        | —          |
//!
//! Responses travel server → client as 16-byte [`Response`] structs (a value
//! address plus element id and size), four per cache line — the same
//! packing the paper uses for insert messages.

use cphash_hashcore::{ElementId, MAX_KEY};

/// Operation codes carried in the top four bits of a request word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Look up a key; the server responds with the value location.
    Lookup = 1,
    /// Insert a key with a value of a given size; the server allocates space
    /// and responds with where the client must copy the bytes.
    Insert = 2,
    /// The client finished copying an inserted value; publish it.
    Ready = 3,
    /// The client finished reading a looked-up value; release the reference.
    Decref = 4,
    /// Remove a key; the server responds with whether it was present.
    Delete = 5,
}

impl OpCode {
    fn from_bits(bits: u64) -> Option<OpCode> {
        match bits {
            1 => Some(OpCode::Lookup),
            2 => Some(OpCode::Insert),
            3 => Some(OpCode::Ready),
            4 => Some(OpCode::Decref),
            5 => Some(OpCode::Delete),
            _ => None,
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Look up `key`.
    Lookup {
        /// The 60-bit key.
        key: u64,
    },
    /// Insert `key` with a value of `size` bytes.
    Insert {
        /// The 60-bit key.
        key: u64,
        /// Value size in bytes.
        size: u64,
    },
    /// Publish a previously reserved element.
    Ready {
        /// Element id returned by the insert response.
        id: ElementId,
    },
    /// Release a reference obtained by a lookup.
    Decref {
        /// Element id returned by the lookup response.
        id: ElementId,
    },
    /// Remove `key` from the table.
    Delete {
        /// The 60-bit key.
        key: u64,
    },
}

/// Number of ring words a request occupies.
pub fn request_words(request: &Request) -> usize {
    match request {
        Request::Insert { .. } => 2,
        _ => 1,
    }
}

const OP_SHIFT: u32 = 60;
const PAYLOAD_MASK: u64 = (1 << OP_SHIFT) - 1;

/// Encode a request into one or two ring words (the second word is `None`
/// for single-word requests).
pub fn encode(request: &Request) -> (u64, Option<u64>) {
    match *request {
        Request::Lookup { key } => {
            debug_assert!(key <= MAX_KEY);
            (((OpCode::Lookup as u64) << OP_SHIFT) | key, None)
        }
        Request::Insert { key, size } => {
            debug_assert!(key <= MAX_KEY);
            (((OpCode::Insert as u64) << OP_SHIFT) | key, Some(size))
        }
        Request::Ready { id } => (((OpCode::Ready as u64) << OP_SHIFT) | id.0 as u64, None),
        Request::Decref { id } => (((OpCode::Decref as u64) << OP_SHIFT) | id.0 as u64, None),
        Request::Delete { key } => {
            debug_assert!(key <= MAX_KEY);
            (((OpCode::Delete as u64) << OP_SHIFT) | key, None)
        }
    }
}

/// The opcode and payload of a request word. Returns `None` for a word whose
/// opcode bits are invalid (which would indicate ring corruption).
pub fn decode_word(word: u64) -> Option<(OpCode, u64)> {
    let op = OpCode::from_bits(word >> OP_SHIFT)?;
    Some((op, word & PAYLOAD_MASK))
}

/// Reassemble a full request from its first word and (for inserts) the
/// extra word.
pub fn decode(word: u64, extra: Option<u64>) -> Option<Request> {
    let (op, payload) = decode_word(word)?;
    Some(match op {
        OpCode::Lookup => Request::Lookup { key: payload },
        OpCode::Insert => Request::Insert {
            key: payload,
            size: extra?,
        },
        OpCode::Ready => Request::Ready {
            id: ElementId(payload as u32),
        },
        OpCode::Decref => Request::Decref {
            id: ElementId(payload as u32),
        },
        OpCode::Delete => Request::Delete { key: payload },
    })
}

/// A response from a server thread: where the value lives plus the element
/// id the client must hand back (`Ready`/`Decref`) and the value size.
///
/// Exactly 16 bytes so four responses pack into one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Response {
    /// Address of the value bytes; 0 means "not found" (for lookups) or
    /// "failed" (for inserts), 1 means "found/deleted" for responses that
    /// carry no data pointer.
    pub addr: u64,
    /// Low 32 bits: element id. High 32 bits: value size in bytes.
    pub meta: u64,
}

impl Response {
    /// The miss/failure response.
    pub const MISS: Response = Response { addr: 0, meta: 0 };

    /// Response indicating success without a data pointer (delete-found).
    pub const FOUND: Response = Response { addr: 1, meta: 0 };

    /// Build a response carrying a value location.
    pub fn with_value(addr: u64, id: ElementId, size: usize) -> Response {
        debug_assert!(addr > 1, "value addresses never alias the sentinel values");
        Response {
            addr,
            meta: ((size as u64) << 32) | id.0 as u64,
        }
    }

    /// Does this response indicate a hit / success?
    pub fn is_hit(&self) -> bool {
        self.addr != 0
    }

    /// Does this response carry a usable value pointer?
    pub fn has_value(&self) -> bool {
        self.addr > 1
    }

    /// The element id encoded in the response.
    pub fn element_id(&self) -> ElementId {
        ElementId((self.meta & 0xFFFF_FFFF) as u32)
    }

    /// The value size encoded in the response.
    pub fn value_size(&self) -> usize {
        (self.meta >> 32) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_words_match_paper_packing() {
        // Lookups are one 8-byte word → 8 per cache line; inserts are two
        // words (16 bytes) → 4 per cache line.
        assert_eq!(request_words(&Request::Lookup { key: 1 }), 1);
        assert_eq!(request_words(&Request::Insert { key: 1, size: 8 }), 2);
        assert_eq!(request_words(&Request::Decref { id: ElementId(3) }), 1);
        assert_eq!(core::mem::size_of::<Response>(), 16);
        assert_eq!(cphash_cacheline::packing::messages_per_line(8), 8);
        assert_eq!(cphash_cacheline::packing::messages_per_line(16), 4);
    }

    #[test]
    fn encode_decode_round_trips() {
        let cases = [
            Request::Lookup { key: 0 },
            Request::Lookup { key: MAX_KEY },
            Request::Insert { key: 42, size: 0 },
            Request::Insert { key: 42, size: u64::MAX },
            Request::Ready { id: ElementId(7) },
            Request::Decref { id: ElementId(u32::MAX - 1) },
            Request::Delete { key: 99 },
        ];
        for case in cases {
            let (w0, w1) = encode(&case);
            assert_eq!(decode(w0, w1), Some(case), "case {case:?}");
        }
    }

    #[test]
    fn invalid_opcode_is_rejected() {
        assert_eq!(decode_word(0), None);
        assert_eq!(decode_word(0xF << 60), None);
        assert_eq!(decode(0, None), None);
    }

    #[test]
    fn insert_without_extra_word_is_incomplete() {
        let (w0, _) = encode(&Request::Insert { key: 5, size: 100 });
        assert_eq!(decode(w0, None), None);
        let (op, payload) = decode_word(w0).unwrap();
        assert_eq!(op, OpCode::Insert);
        assert_eq!(payload, 5);
    }

    #[test]
    fn response_encoding_round_trips() {
        let r = Response::with_value(0xDEAD_BEEF_00, ElementId(77), 4096);
        assert!(r.is_hit());
        assert!(r.has_value());
        assert_eq!(r.element_id(), ElementId(77));
        assert_eq!(r.value_size(), 4096);
        assert!(!Response::MISS.is_hit());
        assert!(Response::FOUND.is_hit());
        assert!(!Response::FOUND.has_value());
    }

    #[test]
    fn keys_with_high_bits_are_a_debug_error() {
        // In release builds the encode would silently mask; the public API
        // (`CpHash` / `ClientHandle`) masks keys to 60 bits before building
        // requests, so this is only reachable through the raw protocol.
        let key = MAX_KEY; // largest legal key round-trips fine
        let (w0, _) = encode(&Request::Lookup { key });
        assert_eq!(decode(w0, None), Some(Request::Lookup { key }));
    }
}
