//! The migration control plane: a hidden client whose lanes carry only
//! migration protocol messages.
//!
//! Every server thread gets one extra duplex lane beyond its per-client
//! lanes.  The [`ControlHandle`] owns the client side of all of them plus a
//! reference to the shared [`EpochRouter`]; the `cphash-migrate`
//! coordinator drives grow/shrink transitions through it.  Exactly one
//! control handle exists per table ([`crate::CpHash::take_control`]).

use std::sync::Arc;

use cphash_channel::DuplexClient;

use crate::client::TableError;
use crate::protocol::{encode, MigrationStep, Request, Response};
use crate::router::EpochRouter;

/// Client-side endpoint of the control lanes, one per spawned server.
pub struct ControlHandle {
    lanes: Vec<DuplexClient<u64, Response>>,
    router: Arc<EpochRouter>,
}

impl ControlHandle {
    pub(crate) fn new(lanes: Vec<DuplexClient<u64, Response>>, router: Arc<EpochRouter>) -> Self {
        ControlHandle { lanes, router }
    }

    /// The shared routing table.
    pub fn router(&self) -> &Arc<EpochRouter> {
        &self.router
    }

    /// Number of spawned servers (= lanes).
    pub fn servers(&self) -> usize {
        self.lanes.len()
    }

    /// Whether `server`'s thread is still running.
    pub fn is_server_alive(&self, server: usize) -> bool {
        self.lanes[server].is_server_alive()
    }

    /// Send a migration request to one server (blocking on ring space) and
    /// publish it immediately.
    pub fn send(&mut self, server: usize, request: &Request) -> Result<(), TableError> {
        debug_assert!(matches!(
            request,
            Request::MigratePrepare { .. } | Request::MigrateOut { .. } | Request::MigrateIn { .. }
        ));
        let lane = &mut self.lanes[server];
        if !lane.is_server_alive() {
            return Err(TableError::ServerGone);
        }
        let (w0, w1) = encode(request);
        lane.send_blocking(w0);
        if let Some(w1) = w1 {
            lane.send_blocking(w1);
        }
        lane.flush();
        Ok(())
    }

    /// Receive one response from a server, spinning (with yields) until it
    /// arrives or the server thread exits.
    pub fn recv_blocking(&mut self, server: usize) -> Result<Response, TableError> {
        let lane = &mut self.lanes[server];
        let mut idle: u32 = 0;
        loop {
            if let Some(response) = lane.try_recv() {
                return Ok(response);
            }
            if !lane.is_server_alive() {
                return Err(TableError::ServerGone);
            }
            idle = idle.saturating_add(1);
            if idle > 128 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Convenience: send a request and wait for its single response.
    pub fn round_trip(&mut self, server: usize, request: &Request) -> Result<Response, TableError> {
        self.send(server, request)?;
        self.recv_blocking(server)
    }

    /// Convenience: broadcast one step-shaped request to a set of servers,
    /// then collect every response in order. Pipelining the sends lets all
    /// servers work on the step concurrently.
    pub fn broadcast(
        &mut self,
        servers: impl Iterator<Item = usize> + Clone,
        build: impl Fn(MigrationStep) -> Request,
        step: MigrationStep,
    ) -> Result<Vec<(usize, Response)>, TableError> {
        for server in servers.clone() {
            self.send(server, &build(step))?;
        }
        let mut responses = Vec::new();
        for server in servers {
            responses.push((server, self.recv_blocking(server)?));
        }
        Ok(responses)
    }
}

impl core::fmt::Debug for ControlHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ControlHandle")
            .field("servers", &self.lanes.len())
            .finish()
    }
}
