//! TCP backends for the unified [`crate::kv::KvClient`] API.
//!
//! [`RemoteClient`] drives one CPSERVER / LOCKSERVER / memcache-instance
//! connection.  It speaks kvproto v2 (typed ops, byte-string keys, DELETE,
//! status codes) when the server acks the connect-time handshake, and
//! falls back transparently to v1 — against a v1-only server the handshake
//! is an unknown opcode, the server drops the connection, and the client
//! reconnects speaking v1 (byte-string keys then ride the §8.2 envelope
//! client-side, exactly what `AnyKeyClient` did; DELETE completes as
//! `Failed(Unsupported)` because v1 has no such opcode).
//!
//! [`PartitionedClient`] fans one logical client out over several
//! `RemoteClient`s with client-side key partitioning — the paper's §7
//! memcached comparison "configured the client to partition the key space
//! across these multiple MEMCACHED instances", and this is that client.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bytes::BytesMut;
use cphash_kvproto::{
    encode_hello, encode_op, envelope, parse_hello, ErrCode, OpFrame, OpKind, ReplyDecoder,
    ResponseDecoder, Status, WireKey, HELLO_BYTES, VERSION_1, VERSION_2,
};

use crate::client::{Completion, CompletionKind, OpError, ValueBytes};
use crate::kv::{KeyRef, KvClient, KvError, KvOp};

/// Default pipelined-window recommendation for remote backends.
const DEFAULT_WINDOW: usize = 256;

/// How long to wait for the server's HELLO-ACK before giving up on the
/// connection attempt (a v1 server answers faster than this: it *closes*).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// One operation awaiting its reply, in request order.
struct PendingRemote {
    token: u64,
    /// The logical operation, kept so a `Retry` reply can resubmit it and
    /// so v1 byte-key lookups can verify the envelope client-side.
    frame: OpFrame,
}

/// A [`KvClient`] over one TCP connection speaking kvproto.
pub struct RemoteClient {
    stream: TcpStream,
    version: u8,
    outgoing: BytesMut,
    reply_decoder: ReplyDecoder,
    v1_decoder: ResponseDecoder,
    pending: VecDeque<PendingRemote>,
    /// Completions resolved client-side (v1 fire-and-forget inserts, v1
    /// deletes), delivered by the next poll.
    immediate: VecDeque<Completion>,
    next_token: u64,
    window: usize,
    read_buf: Vec<u8>,
    dead: Option<ErrorKind>,
    retries: u64,
}

impl RemoteClient {
    /// Connect preferring v2, with transparent v1 fallback.
    pub fn connect(addr: SocketAddr) -> std::io::Result<RemoteClient> {
        Self::connect_capped(addr, VERSION_2)
    }

    /// Connect speaking at most `max_version` (1 forces the legacy
    /// protocol; useful for compatibility testing).
    pub fn connect_capped(addr: SocketAddr, max_version: u8) -> std::io::Result<RemoteClient> {
        // Any handshake failure — connection closed by a v1 server that
        // read our magic as a bad opcode, timeout, short read — falls back
        // to a fresh v1 connection.
        if max_version >= VERSION_2 {
            if let Ok(client) = Self::try_handshake(addr) {
                return Ok(client);
            }
        }
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, VERSION_1)
    }

    fn try_handshake(addr: SocketAddr) -> std::io::Result<RemoteClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = BytesMut::new();
        encode_hello(&mut hello, VERSION_2);
        stream.write_all(&hello)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let mut ack = [0u8; HELLO_BYTES];
        stream.read_exact(&mut ack)?;
        let negotiated = parse_hello(&ack)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?
            .min(VERSION_2);
        stream.set_read_timeout(None)?;
        // A graceful downgrade (server acked v1) keeps this connection and
        // switches framing; the server has done the same.
        Self::from_stream(stream, negotiated)
    }

    fn from_stream(stream: TcpStream, version: u8) -> std::io::Result<RemoteClient> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(RemoteClient {
            stream,
            version,
            outgoing: BytesMut::with_capacity(16 * 1024),
            reply_decoder: ReplyDecoder::new(),
            v1_decoder: ResponseDecoder::new(),
            pending: VecDeque::new(),
            immediate: VecDeque::new(),
            next_token: 1,
            window: DEFAULT_WINDOW,
            read_buf: vec![0u8; 64 * 1024],
            dead: None,
            retries: 0,
        })
    }

    /// The protocol version this connection negotiated (1 or 2).
    pub fn protocol_version(&self) -> u8 {
        self.version
    }

    /// Operations resubmitted after a `Retry` reply.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Override the recommended pipelined window.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    fn take_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Queue the wire bytes for a logical op.  In v1 mode byte keys are
    /// enveloped client-side and the hash key goes on the wire.
    fn encode_for_wire(&mut self, frame: &OpFrame) {
        if self.version >= VERSION_2 {
            encode_op(&mut self.outgoing, frame);
            return;
        }
        match (&frame.kind, &frame.key) {
            (OpKind::Lookup, key) => cphash_kvproto::encode_lookup(&mut self.outgoing, key.hash()),
            (OpKind::Insert, WireKey::Hash(k)) => {
                cphash_kvproto::encode_insert(&mut self.outgoing, *k, &frame.value)
            }
            (OpKind::Insert, WireKey::Bytes(b)) => cphash_kvproto::encode_insert(
                &mut self.outgoing,
                envelope::hash_key(b),
                &envelope::encode_envelope(b, &frame.value),
            ),
            (OpKind::Resize, key) => {
                // The packed resize key must pass through unmasked.
                let WireKey::Hash(packed) = key else {
                    unreachable!("resize frames carry packed hash keys")
                };
                cphash_kvproto::frame::encode_resize_packed(&mut self.outgoing, *packed);
            }
            (OpKind::Delete, _) => unreachable!("v1 deletes complete client-side"),
            // Stats is v2-only (v1's opcode space is 1..=3); the submit path
            // never queues it on a downgraded connection.
            (OpKind::Stats, _) => unreachable!("v1 connections never carry stats frames"),
        }
    }

    /// Write queued bytes until the socket would block.
    fn flush_outgoing(&mut self) {
        while !self.outgoing.is_empty() && self.dead.is_none() {
            match self.stream.write(&self.outgoing) {
                Ok(0) => self.dead = Some(ErrorKind::WriteZero),
                Ok(n) => {
                    let _ = self.outgoing.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => self.dead = Some(e.kind()),
            }
        }
    }

    /// Read available bytes into the right decoder.
    fn pump_reads(&mut self) {
        while self.dead.is_none() {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => self.dead = Some(ErrorKind::UnexpectedEof),
                Ok(n) => {
                    if self.version >= VERSION_2 {
                        self.reply_decoder.feed(&self.read_buf[..n]);
                    } else {
                        self.v1_decoder.feed(&self.read_buf[..n]);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => self.dead = Some(e.kind()),
            }
        }
    }

    /// Decode replies and resolve them against pending ops in FIFO order.
    fn resolve_replies(&mut self, out: &mut Vec<Completion>) -> usize {
        let mut produced = 0usize;
        loop {
            if self.version >= VERSION_2 {
                let reply = match self.reply_decoder.next_reply() {
                    Ok(Some(reply)) => reply,
                    Ok(None) => break,
                    Err(_) => {
                        self.dead = Some(ErrorKind::InvalidData);
                        break;
                    }
                };
                // Hint the value bytes as early as possible: the copy into
                // a `ValueBytes` below reads every line of the payload, and
                // large replies sit in decoder-buffer memory the hot path
                // has not touched since the socket read landed it.
                prefetch_value_lines(&reply.value);
                let Some(pending) = self.pending.pop_front() else {
                    // A reply with nothing pending: protocol desync.
                    self.dead = Some(ErrorKind::InvalidData);
                    break;
                };
                if reply.status == Status::Retry {
                    // Resubmit transparently; the token survives the trip.
                    self.retries += 1;
                    self.encode_for_wire(&pending.frame);
                    self.pending.push_back(pending);
                    continue;
                }
                let kind = match (pending.frame.kind, reply.status) {
                    (OpKind::Lookup, Status::Ok) => {
                        CompletionKind::LookupHit(ValueBytes::from_slice(&reply.value))
                    }
                    (OpKind::Lookup, Status::Miss) => CompletionKind::LookupMiss,
                    (OpKind::Insert, Status::Ok) => CompletionKind::Inserted,
                    (OpKind::Insert, Status::Err) if reply.code == ErrCode::Capacity => {
                        CompletionKind::InsertFailed
                    }
                    (OpKind::Delete, Status::Ok) => CompletionKind::Deleted(true),
                    (OpKind::Delete, Status::Miss) => CompletionKind::Deleted(false),
                    // Admin replies surface their payload as a hit; only
                    // the blocking admin paths submit resizes and stats.
                    (OpKind::Resize, Status::Ok) | (OpKind::Stats, Status::Ok) => {
                        CompletionKind::LookupHit(ValueBytes::from_slice(&reply.value))
                    }
                    (_, Status::Err) => CompletionKind::Failed(reply.code.into()),
                    _ => CompletionKind::Failed(OpError::Internal),
                };
                out.push(Completion {
                    token: pending.token,
                    kind,
                });
                produced += 1;
            } else {
                let response = match self.v1_decoder.next_response() {
                    Ok(Some(response)) => response,
                    Ok(None) => break,
                    Err(_) => {
                        self.dead = Some(ErrorKind::InvalidData);
                        break;
                    }
                };
                if let Some(value) = &response.value {
                    prefetch_value_lines(value);
                }
                let Some(pending) = self.pending.pop_front() else {
                    self.dead = Some(ErrorKind::InvalidData);
                    break;
                };
                // v1 responses exist only for lookups (and resize, which the
                // blocking admin path consumes before submitting more work).
                let kind = match (&pending.frame.key, response.value) {
                    (_, None) => CompletionKind::LookupMiss,
                    (WireKey::Hash(_), Some(value)) => {
                        CompletionKind::LookupHit(ValueBytes::from_slice(&value))
                    }
                    (WireKey::Bytes(wanted), Some(stored)) => {
                        match envelope::unwrap_matching(&stored, wanted) {
                            Some(value) => CompletionKind::LookupHit(ValueBytes::from_slice(value)),
                            None => CompletionKind::LookupMiss,
                        }
                    }
                };
                out.push(Completion {
                    token: pending.token,
                    kind,
                });
                produced += 1;
            }
        }
        produced
    }
}

/// Hint every cache line a decoded value occupies, so the copy that follows
/// overlaps its misses instead of paying them one line at a time.
#[inline]
fn prefetch_value_lines(bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    let start = bytes.as_ptr() as usize;
    let end = start + bytes.len();
    let mut line = start & !(cphash_cacheline::CACHE_LINE_SIZE - 1);
    while line < end {
        cphash_cacheline::prefetch_read(line as *const u8);
        line += cphash_cacheline::CACHE_LINE_SIZE;
    }
}

impl KvClient for RemoteClient {
    fn backend(&self) -> &'static str {
        if self.version >= VERSION_2 {
            "remote-v2"
        } else {
            "remote-v1"
        }
    }

    fn submit(&mut self, op: KvOp<'_>) -> u64 {
        let token = self.take_token();
        let frame = match op {
            KvOp::Get(KeyRef::Hash(k)) => OpFrame::lookup(k),
            KvOp::Get(KeyRef::Bytes(b)) => OpFrame::lookup_bytes(b.to_vec()),
            KvOp::Insert(KeyRef::Hash(k), v) => OpFrame::insert(k, v.to_vec()),
            KvOp::Insert(KeyRef::Bytes(b), v) => OpFrame::insert_bytes(b.to_vec(), v.to_vec()),
            KvOp::Delete(KeyRef::Hash(k)) => OpFrame::delete(k),
            KvOp::Delete(KeyRef::Bytes(b)) => OpFrame::delete_bytes(b.to_vec()),
        };
        if self.version < VERSION_2 {
            // v1 has no DELETE and answers no INSERT; complete those here.
            match frame.kind {
                OpKind::Delete => {
                    self.immediate.push_back(Completion {
                        token,
                        kind: CompletionKind::Failed(OpError::Unsupported),
                    });
                    return token;
                }
                OpKind::Insert => {
                    self.encode_for_wire(&frame);
                    self.flush_outgoing();
                    self.immediate.push_back(Completion {
                        token,
                        kind: CompletionKind::Inserted,
                    });
                    return token;
                }
                _ => {}
            }
        }
        self.encode_for_wire(&frame);
        self.pending.push_back(PendingRemote { token, frame });
        self.flush_outgoing();
        token
    }

    fn poll_completions(&mut self, out: &mut Vec<Completion>) -> usize {
        let mut produced = 0usize;
        while let Some(c) = self.immediate.pop_front() {
            out.push(c);
            produced += 1;
        }
        self.flush_outgoing();
        self.pump_reads();
        produced += self.resolve_replies(out);
        // A retry resubmission queued above should leave this poll's
        // process, not wait for the next one.
        self.flush_outgoing();
        produced
    }

    fn pending_ops(&self) -> usize {
        self.pending.len() + self.immediate.len()
    }

    fn recommended_window(&self) -> usize {
        self.window
    }

    fn is_alive(&self) -> bool {
        self.dead.is_none()
    }

    fn admin_resize(&mut self, partitions: usize, chunks_per_sec: u32) -> Result<String, KvError> {
        self.blocking_admin(OpFrame::resize_paced(partitions as u64, chunks_per_sec))
    }
}

impl RemoteClient {
    /// Fetch the server's live metrics over the data connection, rendered
    /// as Prometheus text exposition — the same bytes the HTTP stats
    /// endpoint serves.  v2 only: a v1 server has no STATS opcode.
    pub fn fetch_stats(&mut self) -> Result<String, KvError> {
        if self.version < VERSION_2 {
            return Err(KvError::Op(OpError::Unsupported));
        }
        self.blocking_admin(OpFrame::stats())
    }

    /// Drain in-flight work, submit one admin frame, and block for its
    /// reply.  Admin replies can take minutes (a paced resize), so the
    /// wait spins-with-yield politely.
    fn blocking_admin(&mut self, frame: OpFrame) -> Result<String, KvError> {
        let mut buf = Vec::new();
        self.drain_completions(&mut buf)?;
        drop(buf);
        let token = self.take_token();
        self.encode_for_wire(&frame);
        self.pending.push_back(PendingRemote { token, frame });
        let mut out = Vec::new();
        let mut idle: u32 = 0;
        while out.is_empty() {
            if self.poll_completions(&mut out) == 0 {
                if !self.is_alive() {
                    return Err(self.dead.map(KvError::Io).unwrap_or(KvError::Disconnected));
                }
                idle = idle.saturating_add(1);
                if idle > 64 {
                    std::thread::sleep(Duration::from_millis(1));
                } else {
                    std::thread::yield_now();
                }
            }
        }
        match out.remove(0).kind {
            // v2 servers answer Ok with the payload string, or Err{Admin}.
            CompletionKind::LookupHit(v) => Ok(String::from_utf8_lossy(v.as_slice()).into_owned()),
            CompletionKind::Failed(e) => Err(KvError::Op(e)),
            CompletionKind::LookupMiss => Err(KvError::Protocol),
            other => Err(KvError::Op(match other {
                CompletionKind::InsertFailed => OpError::Capacity,
                _ => OpError::Internal,
            })),
        }
    }
}

/// A [`KvClient`] that partitions the key space across several
/// [`RemoteClient`]s — the §7 memcached-comparison client.
pub struct PartitionedClient {
    shards: Vec<RemoteClient>,
    /// Per-shard translation from the shard's token to ours.
    token_maps: Vec<HashMap<u64, u64>>,
    next_token: u64,
    scratch: Vec<Completion>,
}

impl PartitionedClient {
    /// Connect one shard per address (v2 preferred, v1 fallback each).
    pub fn connect(addrs: &[SocketAddr]) -> std::io::Result<PartitionedClient> {
        assert!(!addrs.is_empty(), "need at least one shard");
        let shards = addrs
            .iter()
            .map(|a| RemoteClient::connect(*a))
            .collect::<std::io::Result<Vec<_>>>()?;
        let token_maps = addrs.iter().map(|_| HashMap::new()).collect();
        Ok(PartitionedClient {
            shards,
            token_maps,
            next_token: 1,
            scratch: Vec::with_capacity(256),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to (stable hash partitioning, as the paper's
    /// clients did for memcached).
    fn shard_of(&self, key: &KeyRef<'_>) -> usize {
        (key.hash() % self.shards.len() as u64) as usize
    }
}

impl KvClient for PartitionedClient {
    fn backend(&self) -> &'static str {
        "partitioned-remote"
    }

    fn submit(&mut self, op: KvOp<'_>) -> u64 {
        let shard = match &op {
            KvOp::Get(k) | KvOp::Delete(k) | KvOp::Insert(k, _) => self.shard_of(k),
        };
        let inner = self.shards[shard].submit(op);
        let token = self.next_token;
        self.next_token += 1;
        self.token_maps[shard].insert(inner, token);
        token
    }

    fn poll_completions(&mut self, out: &mut Vec<Completion>) -> usize {
        let mut produced = 0usize;
        for (shard, client) in self.shards.iter_mut().enumerate() {
            self.scratch.clear();
            client.poll_completions(&mut self.scratch);
            for mut completion in self.scratch.drain(..) {
                if let Some(outer) = self.token_maps[shard].remove(&completion.token) {
                    completion.token = outer;
                    out.push(completion);
                    produced += 1;
                }
            }
        }
        produced
    }

    fn pending_ops(&self) -> usize {
        self.shards.iter().map(|s| s.pending_ops()).sum()
    }

    fn recommended_window(&self) -> usize {
        self.shards.iter().map(|s| s.recommended_window()).sum()
    }

    fn is_alive(&self) -> bool {
        self.shards.iter().all(|s| s.is_alive())
    }
}
