//! # CPHash — a cache-partitioned hash table
//!
//! A Rust reproduction of the data structure from Metreveli, Zeldovich and
//! Kaashoek, *CPHash: A Cache-Partitioned Hash Table* (MIT CSAIL TR 2011-051
//! / PPoPP 2012).
//!
//! CPHash is a fixed-capacity, LRU-evicting concurrent hash table designed
//! for large multicore machines.  Instead of protecting shared buckets with
//! locks, it:
//!
//! 1. **partitions** the table, assigning each partition to a *server
//!    thread* pinned to its own hardware thread, so each partition's
//!    buckets, LRU list and allocator stay in that core's cache;
//! 2. has client threads ship operations to the owning server through
//!    **asynchronous message passing over shared-memory ring buffers**,
//!    batching many requests per cache-line transfer;
//! 3. returns **pointers to values** (with reference counting and deferred
//!    frees) so large values are copied by the client, not the server.
//!
//! ## Quick start
//!
//! ```
//! use cphash::{CpHash, CpHashConfig};
//!
//! // Two partitions (server threads), one client handle.
//! let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
//! let client = &mut clients[0];
//!
//! client.insert(42, b"the answer").unwrap();
//! let value = client.get(42).unwrap().expect("key present");
//! assert_eq!(value.as_slice(), b"the answer");
//!
//! drop(clients);
//! table.shutdown();
//! ```
//!
//! For bulk workloads use the pipelined API ([`ClientHandle::submit_lookup`]
//! / [`ClientHandle::submit_insert`] + [`ClientHandle::poll`]), which is
//! what gives CPHash its throughput advantage: requests to all servers stay
//! in flight simultaneously and pack eight-per-cache-line.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod anykey;
pub mod client;
pub mod config;
pub mod control;
pub mod dynamic;
pub mod kv;
mod pipeline;
pub mod protocol;
pub mod remote;
pub mod router;
mod server;
pub mod stats;
pub mod table;

pub use anykey::AnyKeyClient;
pub use client::{ClientHandle, Completion, CompletionKind, OpError, TableError, ValueBytes};
pub use config::{BucketLayout, CpHashConfig, MigrationPacing, ServerPipeline, DEFAULT_BATCH_SIZE};
pub use control::ControlHandle;
pub use dynamic::{Recommendation, ServerLoadController};
pub use kv::{KeyRef, KvClient, KvError, KvOp};
pub use protocol::{MigrationBatch, MigrationStep, OpCode, Request, Response};
pub use remote::{PartitionedClient, RemoteClient};
pub use router::{EpochRouter, RouterSnapshot, TransitionError};
pub use stats::{ServerStats, TableSnapshot};
pub use table::CpHash;

// Re-export the vocabulary types callers need alongside the table.
pub use cphash_hashcore::{EvictionPolicy, PartitionStats, MAX_KEY};
pub use cphash_perfmon::BatchStats;
