//! The CPHash table handle: spawns server threads, wires up message lanes,
//! and hands out client handles.

use cphash_sync::atomic::plain::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cphash_channel::{duplex, RingConfig};
use cphash_hashcore::{Partition, PartitionConfig, PartitionStats};
use parking_lot::Mutex;

use crate::client::ClientHandle;
use crate::config::CpHashConfig;
use crate::control::ControlHandle;
use crate::router::EpochRouter;
use crate::server::ServerThread;
use crate::stats::{ServerStats, TableSnapshot};

/// A running CPHash table: one pinned server thread per partition, plus the
/// shared-memory message lanes connecting them to the client handles.
///
/// When `max_partitions` exceeds the initial partition count, the extra
/// server threads are spawned up front (idle-polling empty lanes) so the
/// table can be re-partitioned live: the shared [`EpochRouter`] decides which
/// servers own keys, and the `cphash-migrate` coordinator moves keys between
/// them through the [`ControlHandle`].
///
/// Dropping the table (or calling [`CpHash::shutdown`]) stops the server
/// threads and releases the partitions.  Client handles created from this
/// table become inert once the servers stop (operations return
/// [`crate::TableError::ServerGone`]).
pub struct CpHash {
    config: CpHashConfig,
    stop: Arc<AtomicBool>,
    servers: Vec<JoinHandle<()>>,
    server_stats: Vec<Arc<ServerStats>>,
    partition_stats: Vec<Arc<Mutex<PartitionStats>>>,
    router: Arc<EpochRouter>,
    control: Mutex<Option<ControlHandle>>,
}

impl CpHash {
    /// Build the table and its client handles.
    ///
    /// The number of client handles is fixed at construction time (as in the
    /// paper, where the client thread count is a benchmark parameter): every
    /// client/server pair gets its own pair of message rings, so servers
    /// need to know all their clients up front.  One extra, hidden lane per
    /// server belongs to the migration control plane.
    pub fn new(config: CpHashConfig) -> (CpHash, Vec<ClientHandle>) {
        config.validate();
        let ring = RingConfig::with_capacity(config.ring_capacity);
        let spawned = config.spawned_partitions();
        let router = Arc::new(EpochRouter::new(
            config.partitions,
            config.migration_chunks,
            spawned,
        ));

        // lane_matrix[s][c] = server s's endpoint for client c; the last
        // "client" slot is the control plane.
        let lane_owners = config.clients + 1;
        let mut server_lanes: Vec<Vec<_>> = (0..spawned).map(|_| Vec::new()).collect();
        let mut client_lanes: Vec<Vec<_>> = (0..lane_owners).map(|_| Vec::new()).collect();
        for client_lane_list in client_lanes.iter_mut() {
            for server_lane_list in server_lanes.iter_mut() {
                let (client_end, server_end) = duplex(ring);
                client_lane_list.push(client_end);
                server_lane_list.push(server_end);
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut servers = Vec::with_capacity(spawned);
        let mut server_stats = Vec::with_capacity(spawned);
        let mut partition_stats = Vec::with_capacity(spawned);

        for (index, lanes) in server_lanes.into_iter().enumerate() {
            let stats = Arc::new(ServerStats::new());
            let pstats = Arc::new(Mutex::new(PartitionStats::default()));
            let partition = Partition::new(PartitionConfig {
                buckets: config.buckets_per_partition,
                capacity_bytes: config.partition_capacity(),
                eviction: config.eviction,
                seed: config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9),
                migration_chunks: config.migration_chunks,
                layout: config.bucket_layout,
            });
            let thread = ServerThread {
                index,
                partition,
                lanes,
                pin: config.server_pins.get(index).copied(),
                stop: Arc::clone(&stop),
                stats: Arc::clone(&stats),
                partition_stats: Arc::clone(&pstats),
                router: Arc::clone(&router),
                capacity_total: config.capacity_bytes,
                executor: crate::pipeline::executor_for(config.pipeline),
                batch_size: config.batch_size,
            };
            let handle = std::thread::Builder::new()
                .name(format!("cphash-server-{index}"))
                .spawn(move || thread.run())
                .expect("spawning a server thread");
            servers.push(handle);
            server_stats.push(stats);
            partition_stats.push(pstats);
        }

        let mut client_lanes = client_lanes.into_iter();
        let clients = (&mut client_lanes)
            .take(config.clients)
            .map(|lanes| ClientHandle::new(lanes, config.ring_capacity, Arc::clone(&router)))
            .collect();
        let control_lanes = client_lanes.next().expect("control lane set exists");

        (
            CpHash {
                config,
                stop,
                servers,
                server_stats,
                partition_stats,
                control: Mutex::new(Some(ControlHandle::new(control_lanes, Arc::clone(&router)))),
                router,
            },
            clients,
        )
    }

    /// Convenience constructor for the common case.
    pub fn with_partitions(partitions: usize, clients: usize) -> (CpHash, Vec<ClientHandle>) {
        Self::new(CpHashConfig::new(partitions, clients))
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> &CpHashConfig {
        &self.config
    }

    /// Number of *active* partitions (the target count while a migration is
    /// in flight).
    pub fn partitions(&self) -> usize {
        self.router.active_partitions()
    }

    /// Number of server threads actually spawned (`max_partitions`).
    pub fn spawned_partitions(&self) -> usize {
        self.server_stats.len()
    }

    /// The shared routing table.
    pub fn router(&self) -> &Arc<EpochRouter> {
        &self.router
    }

    /// Take the migration control handle. Returns `None` after the first
    /// call — there is exactly one control plane per table, typically owned
    /// by a `cphash-migrate::RepartitionCoordinator`.
    pub fn take_control(&self) -> Option<ControlHandle> {
        self.control.lock().take()
    }

    /// Per-server runtime statistics (live, lock-free), one entry per
    /// *spawned* server thread.
    pub fn server_stats(&self) -> &[Arc<ServerStats>] {
        &self.server_stats
    }

    /// Aggregate runtime snapshot across the currently active servers.
    pub fn snapshot(&self) -> TableSnapshot {
        let active = self.router.active_partitions().min(self.server_stats.len());
        TableSnapshot::aggregate(&self.server_stats[..active])
    }

    /// Aggregate partition statistics (hits, evictions, …).  Refreshed
    /// periodically by the server threads and finally at shutdown.
    pub fn partition_stats(&self) -> PartitionStats {
        let mut total = PartitionStats::default();
        for p in &self.partition_stats {
            total.merge(&p.lock());
        }
        total
    }

    /// An owning sampler of [`CpHash::partition_stats`] for metrics
    /// registries: it clones the shared per-server cells, so it stays
    /// valid (freezing at the final published values) even after the
    /// table shuts down.
    pub fn partition_stats_sampler(&self) -> impl Fn() -> PartitionStats + Send + Sync + 'static {
        let cells = self.partition_stats.clone();
        move || {
            let mut total = PartitionStats::default();
            for p in &cells {
                total.merge(&p.lock());
            }
            total
        }
    }

    /// Stop all server threads and wait for them to exit.  Safe to call
    /// more than once; dropping the table calls it implicitly.
    pub fn shutdown(&mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        for handle in self.servers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CpHash {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl core::fmt::Debug for CpHash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CpHash")
            .field("partitions", &self.partitions())
            .field("spawned", &self.server_stats.len())
            .field("clients", &self.config.clients)
            .field("capacity_bytes", &self.config.capacity_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{CompletionKind, TableError};
    use cphash_hashcore::EvictionPolicy;

    #[test]
    fn basic_insert_lookup_delete() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        let client = &mut clients[0];
        assert!(client.insert(1, b"hello").unwrap());
        assert!(client.insert(2, b"world").unwrap());
        assert_eq!(client.get(1).unwrap().unwrap().as_slice(), b"hello");
        assert_eq!(client.get(2).unwrap().unwrap().as_slice(), b"world");
        assert!(client.get(3).unwrap().is_none());
        assert!(client.delete(1).unwrap());
        assert!(!client.delete(1).unwrap());
        assert!(client.get(1).unwrap().is_none());
        let snap = table.snapshot();
        assert!(snap.operations >= 7);
        table.shutdown();
    }

    #[test]
    fn values_larger_than_inline_threshold() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        let client = &mut clients[0];
        let big = vec![0xABu8; 1000];
        assert!(client.insert(42, &big).unwrap());
        let got = client.get(42).unwrap().unwrap();
        assert_eq!(got.as_slice(), big.as_slice());
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn overwrite_replaces_value() {
        let (mut table, mut clients) = CpHash::with_partitions(4, 1);
        let client = &mut clients[0];
        client.insert(9, b"first").unwrap();
        client.insert(9, b"second").unwrap();
        assert_eq!(client.get(9).unwrap().unwrap().as_slice(), b"second");
        drop(clients);
        table.shutdown();
        // Partition statistics are published (at the latest) at shutdown.
        let stats = table.partition_stats();
        assert!(stats.inserts >= 2);
        assert_eq!(stats.replacements, 1);
    }

    #[test]
    fn pipelined_batch_of_operations() {
        let (mut table, mut clients) = CpHash::with_partitions(4, 1);
        let client = &mut clients[0];
        const N: u64 = 2_000;
        let mut insert_tokens = Vec::new();
        for key in 0..N {
            insert_tokens.push(client.submit_insert(key, &key.to_le_bytes()));
        }
        let mut completions = Vec::new();
        client.drain(&mut completions).unwrap();
        assert_eq!(completions.len(), N as usize);
        assert!(completions
            .iter()
            .all(|c| c.kind == CompletionKind::Inserted));

        let mut lookup_tokens = Vec::new();
        for key in 0..N {
            lookup_tokens.push((key, client.submit_lookup(key)));
        }
        completions.clear();
        client.drain(&mut completions).unwrap();
        assert_eq!(completions.len(), N as usize);
        // Every lookup must hit and return its own key as the value.
        for (key, token) in lookup_tokens {
            let c = completions
                .iter()
                .find(|c| c.token == token)
                .expect("completion for token");
            match &c.kind {
                CompletionKind::LookupHit(v) => {
                    assert_eq!(v.as_slice(), key.to_le_bytes());
                }
                other => panic!("key {key} completed as {other:?}"),
            }
        }
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn multiple_clients_share_the_table() {
        let (mut table, clients) = CpHash::with_partitions(2, 4);
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, mut client)| {
                std::thread::spawn(move || {
                    let base = (i as u64) * 10_000;
                    for key in base..base + 500 {
                        assert!(client.insert(key, &key.to_le_bytes()).unwrap());
                    }
                    for key in base..base + 500 {
                        let v = client.get(key).unwrap().expect("own key present");
                        assert_eq!(v.as_slice(), key.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Partition statistics are guaranteed up to date after shutdown.
        table.shutdown();
        let stats = table.partition_stats();
        assert!(stats.inserts >= 2_000);
    }

    #[test]
    fn capacity_bound_triggers_eviction() {
        let config = CpHashConfig::new(2, 1).with_capacity(1024, 8);
        let (mut table, mut clients) = CpHash::new(config);
        let client = &mut clients[0];
        for key in 0..1_000u64 {
            assert!(client.insert(key, &key.to_le_bytes()).unwrap());
        }
        // The table holds at most 1024 bytes of values; old keys are gone.
        let stats_hits_possible: usize = (0..1_000u64)
            .filter(|&k| client.get(k).unwrap().is_some())
            .count();
        assert!(
            stats_hits_possible <= 128,
            "at most capacity/value_size keys survive"
        );
        assert!(stats_hits_possible > 0, "the most recent keys survive");
        let pstats = table.partition_stats();
        assert!(pstats.evictions > 0);
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn random_eviction_policy_works_end_to_end() {
        let config = CpHashConfig::new(2, 1)
            .with_capacity(512, 8)
            .with_eviction(EvictionPolicy::Random);
        let (mut table, mut clients) = CpHash::new(config);
        let client = &mut clients[0];
        for key in 0..500u64 {
            assert!(client.insert(key, &key.to_le_bytes()).unwrap());
        }
        let survivors = (0..500u64)
            .filter(|&k| client.get(k).unwrap().is_some())
            .count();
        assert!(survivors <= 64);
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn operations_after_shutdown_report_server_gone() {
        let (mut table, mut clients) = CpHash::with_partitions(1, 1);
        table.shutdown();
        let client = &mut clients[0];
        assert_eq!(client.get(5).unwrap_err(), TableError::ServerGone);
    }

    #[test]
    fn snapshot_reports_utilization_and_pinning() {
        let (mut table, mut clients) = CpHash::with_partitions(2, 1);
        clients[0].insert(1, b"x").unwrap();
        // Give the servers a moment to accumulate idle iterations.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let snap = table.snapshot();
        assert_eq!(snap.servers, 2);
        assert!(snap.mean_utilization >= 0.0 && snap.mean_utilization <= 1.0);
        drop(clients);
        table.shutdown();
    }

    #[test]
    fn elastic_table_spawns_extra_idle_servers() {
        let config = CpHashConfig::new(2, 1).with_max_partitions(4);
        let (mut table, mut clients) = CpHash::new(config);
        assert_eq!(table.partitions(), 2);
        assert_eq!(table.server_stats().len(), 4);
        assert_eq!(
            table.snapshot().servers,
            2,
            "snapshot covers active servers only"
        );
        // The control plane exists exactly once.
        let control = table.take_control().expect("control handle");
        assert!(table.take_control().is_none());
        assert_eq!(control.servers(), 4);
        // Ordinary operation is unaffected by the idle servers.
        let client = &mut clients[0];
        for key in 0..100u64 {
            assert!(client.insert(key, &key.to_le_bytes()).unwrap());
        }
        for key in 0..100u64 {
            assert_eq!(
                client.get(key).unwrap().unwrap().as_slice(),
                key.to_le_bytes()
            );
        }
        drop(control);
        drop(clients);
        table.shutdown();
    }
}
