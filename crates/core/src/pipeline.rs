//! The server's data-operation pipeline: scalar baseline and the staged
//! batch + prefetch executor.
//!
//! The paper's headline mechanism is that a server thread drains a *batch*
//! of requests from its per-client rings and software-prefetches the hash
//! bucket for every request before touching any of them, so the batch's
//! DRAM misses overlap instead of serializing (§3.4, §6.2).  This module
//! implements that as a strategy behind one trait:
//!
//! * [`ScalarExecutor`] — the pre-batching baseline: hash, touch memory and
//!   reply one operation at a time;
//! * [`StagedExecutor`] — the paper pipeline: *prepare* (hash) every
//!   operation of the batch, prefetch each one's bucket, then execute them
//!   all and reply as one ring batch.  Under the default tagged inline
//!   bucket layout the staging pass is pure address arithmetic — the hint
//!   targets the bucket's own cache line, which holds the key tags and
//!   element refs of the common case, so staging never reads table memory
//!   and one prefetched line usually resolves the whole probe.
//!
//! Both produce byte-identical responses for identical request streams —
//! `tests/pipeline_equivalence.rs` holds that property under random
//! operation mixes and batch sizes — because the staging pass is pure
//! arithmetic plus cache hints: every decision (migration diverts included)
//! still happens at execute time, in request order.

use cphash_hashcore::{migration_chunk, partition_for_key, BucketRef, Partition};
use cphash_perfmon::trace::{trace_enabled, TraceStage};
use cphash_perfmon::{BatchCounters, StageSpan};
use std::collections::HashMap;

use crate::config::ServerPipeline;
use crate::protocol::{MigrationStep, Response};
use crate::router::{EpochRouter, RouterSnapshot};

/// The kind of a client data operation (the response-bearing subset of the
/// wire opcodes; control messages never enter the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DataOpKind {
    /// Key lookup.
    Lookup,
    /// Key insert (the `size` field carries the value size).
    Insert,
    /// Key delete.
    Delete,
}

/// One decoded data operation, ready for staged execution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DataOp {
    pub kind: DataOpKind,
    pub key: u64,
    /// Value size in bytes (inserts only; 0 otherwise).
    pub size: u64,
}

/// Per-server migration bookkeeping. Entries are validated lazily against
/// the router snapshot (same transition, chunk not yet past the watermark),
/// so stale entries are inert and purged opportunistically.
#[derive(Default)]
pub(crate) struct MigrationState {
    /// Chunks this server has extracted and handed off in the current
    /// transition: requests for keys that left are redirected to their new
    /// owner until the watermark covers the chunk.
    pub outgoing: HashMap<usize, MigrationStep>,
    /// Announced inbound chunks not yet absorbed: requests for keys that
    /// are still in flight towards this server are answered "retry here".
    pub incoming: HashMap<usize, MigrationStep>,
    /// A `MigrateOut` whose extraction is blocked by in-flight inserts:
    /// (control lane index, step). Retried after every `Ready`.
    pub draining: Option<(usize, MigrationStep)>,
}

/// Whether a migration-state entry still describes the live transition.
pub(crate) fn step_is_current(step: &MigrationStep, chunk: usize, snap: &RouterSnapshot) -> bool {
    snap.in_transition()
        && snap.old_partitions == step.old_partitions
        && snap.new_partitions == step.new_partitions
        && chunk >= snap.watermark
}

/// Everything an executor needs to run one batch of data operations:
/// disjoint borrows of the owning server thread's state.
pub(crate) struct OpCtx<'a> {
    pub partition: &'a mut Partition,
    pub router: &'a EpochRouter,
    /// The server's partition index.
    pub index: usize,
    pub migration: &'a mut MigrationState,
}

impl OpCtx<'_> {
    /// Decide whether a data operation on `key` must be redirected instead
    /// of served here. Returns the partition to retry at (possibly this
    /// one, meaning "ask again shortly").
    fn divert(&mut self, key: u64, is_insert: bool) -> Option<usize> {
        let chunks = self.router.chunks();
        let snap = self.router.snapshot();
        let owner = snap.route(key, chunks);
        if self.migration.incoming.is_empty()
            && self.migration.outgoing.is_empty()
            && self.migration.draining.is_none()
        {
            // Steady state: serve what we own, bounce what we don't (a
            // stale in-flight request routed under an old mapping).
            return (owner != self.index).then_some(owner);
        }
        let chunk = migration_chunk(key, chunks);
        // An announced inbound chunk must be checked *before* the primary
        // ownership rule: pre-watermark, an arriving key still routes to
        // its old owner, so an operation the old owner bounced here would
        // otherwise be bounced straight back (a ping-pong that only ends at
        // the watermark). Holding it here instead lets it complete as soon
        // as `MigrateIn` lands.
        if let Some(step) = self.migration.incoming.get(&chunk) {
            if step_is_current(step, chunk, &snap) {
                if partition_for_key(key, step.new_partitions) == self.index
                    && partition_for_key(key, step.old_partitions) != self.index
                {
                    // The key may be inside a batch that has not been
                    // absorbed yet; the client must ask again until
                    // `MigrateIn` lands.
                    return Some(self.index);
                }
            } else {
                self.migration.incoming.remove(&chunk);
            }
        }
        if owner != self.index {
            // Routed here under a mapping that no longer applies (stale
            // in-flight request): bounce to the current owner.
            return Some(owner);
        }
        if let Some(step) = self.migration.outgoing.get(&chunk) {
            if step_is_current(step, chunk, &snap) {
                let new_owner = partition_for_key(key, step.new_partitions);
                if new_owner != self.index {
                    // Extracted and handed off: the new owner has (or will
                    // have) the key before the client's retry arrives there.
                    return Some(new_owner);
                }
            } else {
                self.migration.outgoing.remove(&chunk);
            }
        }
        if is_insert {
            if let Some((_, step)) = self.migration.draining {
                if step.chunk == chunk && partition_for_key(key, step.new_partitions) != self.index
                {
                    // A new insert of a leaving key would keep extending the
                    // drain; hold the client off until extraction happens.
                    return Some(self.index);
                }
            }
        }
        None
    }

    /// Execute one data operation, with or without a prepared bucket
    /// reference, producing its response.  This is the single source of
    /// operation semantics for both pipeline strategies.
    fn execute(&mut self, op: &DataOp, prepared: Option<BucketRef>) -> Response {
        match op.kind {
            DataOpKind::Lookup => match self.divert(op.key, false) {
                Some(dest) => Response::retry(dest),
                None => {
                    let hit = match prepared {
                        Some(prep) => self.partition.lookup_prepared(prep),
                        None => self.partition.lookup(op.key),
                    };
                    match hit {
                        Some(hit) => {
                            Response::with_value(hit.value.addr(), hit.id, hit.value.len())
                        }
                        None => Response::MISS,
                    }
                }
            },
            DataOpKind::Insert => match self.divert(op.key, true) {
                Some(dest) => Response::retry(dest),
                None => {
                    let reservation = match prepared {
                        Some(prep) => self.partition.insert_prepared(prep, op.size as usize),
                        None => self.partition.insert(op.key, op.size as usize),
                    };
                    match reservation {
                        Ok(reservation) => Response::with_value(
                            reservation.value.addr(),
                            reservation.id,
                            op.size as usize,
                        ),
                        Err(_) => Response::MISS,
                    }
                }
            },
            DataOpKind::Delete => match self.divert(op.key, false) {
                Some(dest) => Response::retry(dest),
                None => {
                    let found = match prepared {
                        Some(prep) => self.partition.delete_prepared(prep),
                        None => self.partition.delete(op.key),
                    };
                    if found {
                        Response::FOUND
                    } else {
                        Response::MISS
                    }
                }
            },
        }
    }
}

/// A strategy for executing one batch of data operations, appending exactly
/// one response per operation, in order.
pub(crate) trait BatchExecutor: Send {
    /// Execute `ops` against the context, pushing responses onto `replies`.
    fn execute(
        &mut self,
        ctx: &mut OpCtx<'_>,
        ops: &[DataOp],
        replies: &mut Vec<Response>,
        counters: &BatchCounters,
    );

    /// Whether replies should be published to the ring as one batch (one
    /// index publish) rather than message-at-a-time.
    fn batched_replies(&self) -> bool;
}

/// The pre-batching baseline: hash, execute and account one operation at a
/// time (the ring still hands us drained slices, but nothing is staged).
pub(crate) struct ScalarExecutor;

impl BatchExecutor for ScalarExecutor {
    fn execute(
        &mut self,
        ctx: &mut OpCtx<'_>,
        ops: &[DataOp],
        replies: &mut Vec<Response>,
        _counters: &BatchCounters,
    ) {
        let span = StageSpan::begin(TraceStage::Execute);
        for op in ops {
            let response = ctx.execute(op, None);
            replies.push(response);
        }
        span.finish(ops.len() as u32);
    }

    fn batched_replies(&self) -> bool {
        false
    }
}

/// The staged pipeline: prepare (hash) the whole batch, prefetch every
/// operation's bucket, then execute the batch in order.
///
/// By the time operation *i* executes, the prefetches for operations
/// *i+1..n* are in flight — the memory-level parallelism the scalar loop
/// never exposes because each miss blocks the next hash computation.
pub(crate) struct StagedExecutor {
    /// Whether the staging pass issues prefetches (disabled for the
    /// batched-only ablation arm).
    prefetch: bool,
    /// Prepared bucket references, reused across batches.
    refs: Vec<BucketRef>,
}

impl StagedExecutor {
    pub(crate) fn new(prefetch: bool) -> Self {
        StagedExecutor {
            prefetch,
            refs: Vec::with_capacity(256),
        }
    }
}

impl BatchExecutor for StagedExecutor {
    fn execute(
        &mut self,
        ctx: &mut OpCtx<'_>,
        ops: &[DataOp],
        replies: &mut Vec<Response>,
        counters: &BatchCounters,
    ) {
        // Stage 1: pure arithmetic + cache hints, no table memory touched.
        self.refs.clear();
        let mut prefetched = 0u64;
        if trace_enabled() {
            // Traced path: prepare and prefetch run as separate passes so
            // each gets its own cycle-stamped span.  Responses stay
            // byte-identical (staging is pure arithmetic + hints); only the
            // prefetch overlap differs slightly, and only while tracing.
            let span = StageSpan::begin(TraceStage::Prepare);
            for op in ops {
                self.refs.push(ctx.partition.prepare(op.key));
            }
            span.finish(ops.len() as u32);
            if self.prefetch {
                let span = StageSpan::begin(TraceStage::Prefetch);
                for prep in self.refs.iter() {
                    if ctx.partition.prefetch_prepared(prep) {
                        prefetched += 1;
                    }
                }
                span.finish(ops.len() as u32);
            }
            let span = StageSpan::begin(TraceStage::Execute);
            for (op, prep) in ops.iter().zip(self.refs.iter()) {
                let response = ctx.execute(op, Some(*prep));
                replies.push(response);
            }
            span.finish(ops.len() as u32);
            counters.note_batch(ops.len() as u64, prefetched);
            return;
        }
        for op in ops {
            let prep = ctx.partition.prepare(op.key);
            if self.prefetch && ctx.partition.prefetch_prepared(&prep) {
                prefetched += 1;
            }
            self.refs.push(prep);
        }
        // Stage 2: execute in request order; early operations overlap with
        // the still-in-flight prefetches of later ones.  (A deeper staging
        // pass — re-reading each fetched head to prefetch its LRU
        // neighbors, `Partition::prefetch_neighbors` — wins on
        // cache-resident tables but *loses* on DRAM-resident ones, where
        // re-reading the heads stalls the staging pass itself; see the
        // `prefetch-deep` arm of `ablate_prefetch`.  The robust single
        // prefetch stage is what ships.)
        for (op, prep) in ops.iter().zip(self.refs.iter()) {
            let response = ctx.execute(op, Some(*prep));
            replies.push(response);
        }
        counters.note_batch(ops.len() as u64, prefetched);
    }

    fn batched_replies(&self) -> bool {
        true
    }
}

/// Build the executor for a configured pipeline kind.
pub(crate) fn executor_for(pipeline: ServerPipeline) -> Box<dyn BatchExecutor> {
    match pipeline {
        ServerPipeline::Scalar => Box::new(ScalarExecutor),
        ServerPipeline::Batched => Box::new(StagedExecutor::new(false)),
        ServerPipeline::BatchedPrefetch => Box::new(StagedExecutor::new(true)),
    }
}
