//! The epoch-versioned routing table shared by clients, servers and the
//! repartition coordinator.
//!
//! CPHash assigns keys to partitions with a pure function of the key
//! (`partition_for_key`).  To re-partition a *live* table, two layouts must
//! coexist while keys move: the key space is cut into migration chunks
//! (`migration_chunk`, a pure function of the key's top hash bits) and a
//! single **watermark** records how far the move has progressed — chunks
//! below the watermark route with the new partition count, chunks at or
//! above it with the old count.
//!
//! The whole routing state packs into one `AtomicU64`
//! (`epoch:8 | watermark:24 | new:16 | old:16`), so a route decision is one
//! relaxed atomic load and two pure hash computations: no locks anywhere on
//! the data path, exactly in the spirit of the paper's lock-free message
//! rings.  Server threads additionally consult their local migration state
//! for chunks that are mid-flight (extracted but not yet published), and
//! answer with *retry* responses that bounce the operation to the partition
//! that owns the key now.

use cphash_sync::atomic::{AtomicU64, Ordering};

use cphash_hashcore::{migration_chunk, partition_for_key};

/// A consistent view of the routing state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// Partition count before the in-progress transition (equals `new` when
    /// no transition is running).
    pub old_partitions: usize,
    /// Partition count after the in-progress transition.
    pub new_partitions: usize,
    /// Chunks `< watermark` route with `new_partitions`; the rest with
    /// `old_partitions`.
    pub watermark: usize,
    /// Transition counter (wraps at 256; diagnostic only).
    pub epoch: u8,
}

impl RouterSnapshot {
    /// Whether a transition is in progress in this snapshot.
    pub fn in_transition(&self) -> bool {
        self.old_partitions != self.new_partitions
    }

    /// The partition owning `key` under this snapshot, for `chunks` total
    /// migration chunks.
    pub fn route(&self, key: u64, chunks: usize) -> usize {
        if migration_chunk(key, chunks) < self.watermark {
            partition_for_key(key, self.new_partitions)
        } else {
            partition_for_key(key, self.old_partitions)
        }
    }
}

/// Errors from starting a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionError {
    /// Another transition has not finished yet.
    InProgress,
    /// The requested partition count is zero or exceeds the table's spawned
    /// server threads.
    OutOfRange {
        /// The rejected partition count.
        requested: usize,
        /// Largest legal count (the table's `max_partitions`).
        max: usize,
    },
}

impl core::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransitionError::InProgress => f.write_str("a re-partitioning is already in progress"),
            TransitionError::OutOfRange { requested, max } => {
                write!(f, "partition count {requested} outside 1..={max}")
            }
        }
    }
}

impl std::error::Error for TransitionError {}

const OLD_SHIFT: u32 = 0;
const NEW_SHIFT: u32 = 16;
const WATERMARK_SHIFT: u32 = 32;
const EPOCH_SHIFT: u32 = 56;
const FIELD_MASK: u64 = 0xFFFF;
const WATERMARK_MASK: u64 = 0xFF_FFFF;

/// The shared routing table (see module docs).
#[derive(Debug)]
pub struct EpochRouter {
    state: AtomicU64,
    chunks: usize,
    max_partitions: usize,
}

fn pack(old: usize, new: usize, watermark: usize, epoch: u8) -> u64 {
    debug_assert!(old <= FIELD_MASK as usize && new <= FIELD_MASK as usize);
    debug_assert!(watermark <= WATERMARK_MASK as usize);
    ((epoch as u64) << EPOCH_SHIFT)
        | ((watermark as u64) << WATERMARK_SHIFT)
        | ((new as u64) << NEW_SHIFT)
        | ((old as u64) << OLD_SHIFT)
}

impl EpochRouter {
    /// A router for a table that starts with `partitions` active partitions,
    /// migrates in `chunks` chunks (a power of two), and may grow up to
    /// `max_partitions`.
    pub fn new(partitions: usize, chunks: usize, max_partitions: usize) -> Self {
        assert!(
            chunks.is_power_of_two() && chunks <= cphash_hashcore::MAX_MIGRATION_CHUNKS,
            "chunk count unsupported by migration_chunk's 16 hash bits"
        );
        assert!(partitions >= 1 && partitions <= max_partitions);
        assert!(max_partitions <= FIELD_MASK as usize);
        EpochRouter {
            state: AtomicU64::new(pack(partitions, partitions, chunks, 0)),
            chunks,
            max_partitions,
        }
    }

    /// Number of migration chunks the key space is cut into.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Largest partition count this router (and its table) supports.
    pub fn max_partitions(&self) -> usize {
        self.max_partitions
    }

    /// A consistent snapshot of the routing state.
    pub fn snapshot(&self) -> RouterSnapshot {
        let bits = self.state.load(Ordering::Acquire);
        RouterSnapshot {
            old_partitions: ((bits >> OLD_SHIFT) & FIELD_MASK) as usize,
            new_partitions: ((bits >> NEW_SHIFT) & FIELD_MASK) as usize,
            watermark: ((bits >> WATERMARK_SHIFT) & WATERMARK_MASK) as usize,
            epoch: (bits >> EPOCH_SHIFT) as u8,
        }
    }

    /// The partition that owns `key` right now.
    pub fn route(&self, key: u64) -> usize {
        self.snapshot().route(key, self.chunks)
    }

    /// The target partition count (the active count once no transition is
    /// running).
    pub fn active_partitions(&self) -> usize {
        self.snapshot().new_partitions
    }

    /// Whether a transition is currently in progress.
    pub fn in_transition(&self) -> bool {
        self.snapshot().in_transition()
    }

    /// Begin a transition to `new_partitions`, resetting the watermark to
    /// zero. Fails if a transition is already running or the count is out of
    /// range. Returns the snapshot *before* the transition.
    pub fn begin_transition(
        &self,
        new_partitions: usize,
    ) -> Result<RouterSnapshot, TransitionError> {
        if new_partitions == 0 || new_partitions > self.max_partitions {
            return Err(TransitionError::OutOfRange {
                requested: new_partitions,
                max: self.max_partitions,
            });
        }
        loop {
            let bits = self.state.load(Ordering::Acquire);
            let snap = RouterSnapshot {
                old_partitions: ((bits >> OLD_SHIFT) & FIELD_MASK) as usize,
                new_partitions: ((bits >> NEW_SHIFT) & FIELD_MASK) as usize,
                watermark: ((bits >> WATERMARK_SHIFT) & WATERMARK_MASK) as usize,
                epoch: (bits >> EPOCH_SHIFT) as u8,
            };
            if snap.in_transition() || snap.watermark != self.chunks {
                return Err(TransitionError::InProgress);
            }
            let next = pack(
                snap.old_partitions,
                new_partitions,
                0,
                snap.epoch.wrapping_add(1),
            );
            if self
                .state
                .compare_exchange(bits, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(snap);
            }
        }
    }

    /// Publish migration progress: chunks below `watermark` now route with
    /// the new partition count. Reaching `chunks` completes the transition
    /// (old collapses to new).
    pub fn advance_watermark(&self, watermark: usize) {
        debug_assert!(watermark <= self.chunks);
        loop {
            let bits = self.state.load(Ordering::Acquire);
            let old = ((bits >> OLD_SHIFT) & FIELD_MASK) as usize;
            let new = ((bits >> NEW_SHIFT) & FIELD_MASK) as usize;
            let current = ((bits >> WATERMARK_SHIFT) & WATERMARK_MASK) as usize;
            let epoch = (bits >> EPOCH_SHIFT) as u8;
            debug_assert!(watermark >= current, "watermark only moves forward");
            let next = if watermark == self.chunks {
                pack(new, new, self.chunks, epoch)
            } else {
                pack(old, new, watermark, epoch)
            };
            if self
                .state
                .compare_exchange(bits, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Abandon an in-progress transition by restoring a single partition
    /// count (used when a server dies mid-migration; keys already moved stay
    /// moved, so `resolved` must be the count that owns every key — only
    /// safe when no chunk was mid-flight).
    pub fn force_complete(&self, resolved: usize) {
        let snap = self.snapshot();
        self.state.store(
            pack(resolved, resolved, self.chunks, snap.epoch.wrapping_add(1)),
            Ordering::Release,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_routes_like_partition_for_key() {
        let router = EpochRouter::new(4, 64, 8);
        assert_eq!(router.active_partitions(), 4);
        assert!(!router.in_transition());
        for key in 0..1_000u64 {
            assert_eq!(router.route(key), partition_for_key(key, 4));
        }
    }

    #[test]
    fn transition_splits_routing_at_the_watermark() {
        let router = EpochRouter::new(2, 64, 8);
        router.begin_transition(4).unwrap();
        assert!(router.in_transition());
        // Watermark zero: everything still routes with the old count.
        for key in 0..1_000u64 {
            assert_eq!(router.route(key), partition_for_key(key, 2));
        }
        router.advance_watermark(32);
        for key in 0..1_000u64 {
            let expected = if migration_chunk(key, 64) < 32 {
                partition_for_key(key, 4)
            } else {
                partition_for_key(key, 2)
            };
            assert_eq!(router.route(key), expected);
        }
        router.advance_watermark(64);
        assert!(!router.in_transition());
        assert_eq!(router.active_partitions(), 4);
        for key in 0..1_000u64 {
            assert_eq!(router.route(key), partition_for_key(key, 4));
        }
    }

    #[test]
    fn concurrent_transitions_are_rejected() {
        let router = EpochRouter::new(2, 64, 8);
        let before = router.begin_transition(4).unwrap();
        assert_eq!(before.new_partitions, 2);
        assert_eq!(router.begin_transition(6), Err(TransitionError::InProgress));
        router.advance_watermark(64);
        router.begin_transition(6).unwrap();
        router.advance_watermark(64);
        assert_eq!(router.active_partitions(), 6);
    }

    #[test]
    fn out_of_range_counts_are_rejected() {
        let router = EpochRouter::new(2, 64, 8);
        assert!(matches!(
            router.begin_transition(0),
            Err(TransitionError::OutOfRange { .. })
        ));
        assert!(matches!(
            router.begin_transition(9),
            Err(TransitionError::OutOfRange {
                requested: 9,
                max: 8
            })
        ));
        assert!(format!("{}", router.begin_transition(9).unwrap_err()).contains("outside"));
    }

    #[test]
    fn epoch_increments_per_transition() {
        let router = EpochRouter::new(1, 64, 4);
        let e0 = router.snapshot().epoch;
        router.begin_transition(2).unwrap();
        router.advance_watermark(64);
        assert_eq!(router.snapshot().epoch, e0.wrapping_add(1));
        router.force_complete(2);
        assert_eq!(router.snapshot().epoch, e0.wrapping_add(2));
    }
}
