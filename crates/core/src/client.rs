//! The client handle: routes operations to the owning server thread and
//! manages the asynchronous request pipeline.
//!
//! "Applications use CPHASH by having client threads that communicate with
//! the server threads and send operations using message passing" (§3).  The
//! key to CPHash's throughput is that this communication is *asynchronous*:
//! a client queues batches of requests to many servers and keeps working
//! while they are served (§3.4), which both hides communication latency and
//! lets several messages share each cache-line transfer.
//!
//! [`ClientHandle`] exposes both styles:
//!
//! * a **pipelined API** — [`ClientHandle::submit_lookup`] /
//!   [`ClientHandle::submit_insert`] / [`ClientHandle::submit_delete`] queue
//!   operations and [`ClientHandle::poll`] collects [`Completion`]s as
//!   servers answer; this is what the benchmarks and CPSERVER use;
//! * a **synchronous API** — [`ClientHandle::get`], [`ClientHandle::insert`],
//!   [`ClientHandle::delete`] — implemented on top of the pipeline, for
//!   straightforward callers (the quickstart example, tests).

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use cphash_channel::DuplexClient;
use cphash_hashcore::MAX_KEY;
use cphash_perfmon::trace::TraceStage;
use cphash_perfmon::StageSpan;

use crate::protocol::{encode, Request, Response};
use crate::router::EpochRouter;

/// Upper bound on outstanding response-bearing operations per lane, as a
/// fraction of the ring capacity.  Keeping this below the response-ring
/// capacity guarantees the client/server pair can never deadlock with both
/// rings full.
const OUTSTANDING_FRACTION_OF_RING: usize = 4;

/// Errors surfaced by the client API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The server thread for the key's partition has shut down.
    ServerGone,
    /// The key uses more than 60 bits.
    KeyTooLarge,
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::ServerGone => f.write_str("server thread has shut down"),
            TableError::KeyTooLarge => f.write_str("keys are limited to 60 bits"),
        }
    }
}

impl std::error::Error for TableError {}

/// Value bytes returned by a completed lookup.  Values up to 16 bytes are
/// stored inline (the microbenchmark's 8-byte values never allocate);
/// larger values are heap-allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueBytes {
    /// Small value stored inline.
    Inline {
        /// Number of valid bytes in `data`.
        len: u8,
        /// The bytes (only the first `len` are meaningful).
        data: [u8; 16],
    },
    /// Larger value on the heap.
    Heap(Vec<u8>),
}

impl ValueBytes {
    /// Build from a byte slice.
    pub fn from_slice(bytes: &[u8]) -> ValueBytes {
        if bytes.len() <= 16 {
            let mut data = [0u8; 16];
            data[..bytes.len()].copy_from_slice(bytes);
            ValueBytes::Inline {
                len: bytes.len() as u8,
                data,
            }
        } else {
            ValueBytes::Heap(bytes.to_vec())
        }
    }

    /// View the bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ValueBytes::Inline { len, data } => &data[..*len as usize],
            ValueBytes::Heap(v) => v.as_slice(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Is the value empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why an operation failed with [`CompletionKind::Failed`].  Mirrors the
/// wire protocol's `Err{code}` (`cphash_kvproto::ErrCode`) so remote and
/// in-process backends report failures through one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The table could not make room.
    Capacity,
    /// The backend does not support this operation (e.g. DELETE over a v1
    /// connection).
    Unsupported,
    /// The admin path rejected or could not complete the request.
    Admin,
    /// Internal backend error.
    Internal,
    /// A wire error code this client does not know.
    Other(u8),
}

impl From<cphash_kvproto::ErrCode> for OpError {
    fn from(code: cphash_kvproto::ErrCode) -> OpError {
        use cphash_kvproto::ErrCode;
        match code {
            ErrCode::Capacity => OpError::Capacity,
            ErrCode::Unsupported => OpError::Unsupported,
            ErrCode::Admin => OpError::Admin,
            ErrCode::None | ErrCode::Internal => OpError::Internal,
            ErrCode::Other(b) => OpError::Other(b),
        }
    }
}

impl core::fmt::Display for OpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OpError::Capacity => f.write_str("out of capacity"),
            OpError::Unsupported => f.write_str("operation unsupported by this backend"),
            OpError::Admin => f.write_str("admin error"),
            OpError::Internal => f.write_str("internal error"),
            OpError::Other(b) => write!(f, "error code {b}"),
        }
    }
}

/// Outcome of one pipelined operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionKind {
    /// Lookup found the key; the value bytes were copied out.
    LookupHit(ValueBytes),
    /// Lookup did not find the key.
    LookupMiss,
    /// Insert completed (value copied and published).
    Inserted,
    /// Insert failed (value larger than the partition, or the partition is
    /// full of referenced elements).
    InsertFailed,
    /// Delete completed; the payload says whether the key was present.
    Deleted(bool),
    /// The operation failed outright (remote backends: a typed wire error).
    Failed(OpError),
}

/// A completed pipelined operation: the token returned by the submit call
/// plus its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Token returned by the corresponding `submit_*` call.
    pub token: u64,
    /// What happened.
    pub kind: CompletionKind,
}

/// One queued operation awaiting its response (per lane, FIFO). The key is
/// kept so a *retry* response (the owning partition changed under live
/// re-partitioning) can resubmit the operation to its new owner.
enum Pending {
    Lookup {
        token: u64,
        key: u64,
    },
    Insert {
        token: u64,
        key: u64,
        value: ValueBytes,
    },
    Delete {
        token: u64,
        key: u64,
    },
}

/// What applying a response to a pending operation produced.
enum Applied {
    /// The operation finished.
    Done(Completion),
    /// The key's owner moved; resubmit the operation to partition `dest`.
    Resubmit { dest: usize, pending: Pending },
}

/// Cheap fixed hasher for the per-key write-order map.  The map is
/// client-local and keyed by `u64`, so SipHash's DoS resistance buys
/// nothing on this hot path; one splitmix-style mix is plenty.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; the map only ever hashes u64 keys.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_u64(&mut self, mut x: u64) {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.0 = x ^ (x >> 31);
    }
}

type WriteOrderMap = HashMap<u64, VecDeque<Pending>, BuildHasherDefault<KeyHasher>>;

/// Per-server communication lane and its bookkeeping.
struct Lane {
    channel: DuplexClient<u64, Response>,
    /// Request words not yet accepted by the ring.
    outgoing: VecDeque<u64>,
    /// Response-bearing operations in flight, in request order.
    pending: VecDeque<Pending>,
}

impl Lane {
    fn new(channel: DuplexClient<u64, Response>) -> Self {
        Lane {
            channel,
            outgoing: VecDeque::new(),
            pending: VecDeque::new(),
        }
    }
}

/// A client handle bound to one CPHash table.
///
/// Handles are independent (each owns its own message lanes), `Send`, and
/// intended to be used by exactly one application thread at a time — in the
/// paper's deployment, one per client hardware thread.
pub struct ClientHandle {
    lanes: Vec<Lane>,
    router: Arc<EpochRouter>,
    next_token: u64,
    outstanding: usize,
    max_outstanding_per_lane: usize,
    /// Completions produced while waiting inside the synchronous API, kept
    /// for the next `poll`.
    stashed: VecDeque<Completion>,
    /// Scratch buffer for draining responses.
    resp_buf: Vec<Response>,
    /// Operations redirected by retry responses during live
    /// re-partitioning (diagnostic counter).
    retries: u64,
    /// Per-key write ordering. A key present in this map has exactly one
    /// response-bearing *write* (insert/delete) in flight; the queue holds
    /// later writes to the same key, dispatched one at a time as their
    /// predecessors complete.  Without this, a write that a mid-migration
    /// server bounces with a retry response could be resubmitted *after* a
    /// later pipelined write to the same key that was routed straight to the
    /// new owner — silently reinstating the older value (see
    /// `tests/pipeline_reorder.rs`).  Lookups are not serialized: the
    /// pipelined API makes no read-after-write promise, and holding reads
    /// back would penalize hot keys.
    write_order: WriteOrderMap,
    /// Writes held back (at least once) to preserve per-key write order
    /// (diagnostic counter).
    deferred_writes: u64,
    /// Byte-string keys of lookups submitted through the [`crate::kv::KvClient`]
    /// trait, by token: their raw completions carry the §8.2 envelope and
    /// are translated (collision check included) by the trait's poll.
    pub(crate) anykey_gets: HashMap<u64, Vec<u8>>,
}

impl ClientHandle {
    pub(crate) fn new(
        lanes: Vec<DuplexClient<u64, Response>>,
        ring_capacity: usize,
        router: Arc<EpochRouter>,
    ) -> Self {
        ClientHandle {
            lanes: lanes.into_iter().map(Lane::new).collect(),
            router,
            next_token: 1,
            outstanding: 0,
            max_outstanding_per_lane: (ring_capacity / OUTSTANDING_FRACTION_OF_RING).max(8),
            stashed: VecDeque::new(),
            resp_buf: Vec::with_capacity(256),
            retries: 0,
            write_order: WriteOrderMap::default(),
            deferred_writes: 0,
            anykey_gets: HashMap::new(),
        }
    }

    /// Are all server threads still alive?
    pub fn servers_alive(&self) -> bool {
        self.lanes.iter().all(|l| l.channel.is_server_alive())
    }

    /// Number of *active* partitions in the table (the target count while a
    /// re-partitioning is in flight).
    pub fn partitions(&self) -> usize {
        self.router.active_partitions()
    }

    /// The partition that owns `key` right now — exposed so applications
    /// (CPSERVER) can group work by destination server. During a live
    /// re-partitioning the answer follows the shared epoch router.
    pub fn partition_of(&self, key: u64) -> usize {
        self.router.route(key & MAX_KEY)
    }

    /// Operations that were redirected to another partition by live
    /// re-partitioning since this handle was created.
    pub fn migration_retries(&self) -> u64 {
        self.retries
    }

    /// Writes that were held back to preserve per-key write ordering since
    /// this handle was created (each deferred write counts once).
    pub fn write_deferrals(&self) -> u64 {
        self.deferred_writes
    }

    /// Number of submitted operations whose completion has not yet been
    /// returned by [`ClientHandle::poll`].
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// A soft bound on how many operations should be left outstanding before
    /// calling [`ClientHandle::poll`]; derived from the ring capacity
    /// (the paper uses ~1,000 outstanding requests per client, §6.1).
    pub fn recommended_window(&self) -> usize {
        self.max_outstanding_per_lane * self.lanes.len() / 2
    }

    // ------------------------------------------------------------------
    // Pipelined API
    // ------------------------------------------------------------------

    /// Queue a lookup. Returns the token its [`Completion`] will carry.
    pub fn submit_lookup(&mut self, key: u64) -> u64 {
        let key = key & MAX_KEY;
        let token = self.take_token();
        let lane_idx = self.partition_of(key);
        let (w0, _) = encode(&Request::Lookup { key });
        let lane = &mut self.lanes[lane_idx];
        lane.pending.push_back(Pending::Lookup { token, key });
        lane.outgoing.push_back(w0);
        self.outstanding += 1;
        self.make_progress_if_backlogged(lane_idx);
        token
    }

    /// Queue an insert of `value` under `key`.
    pub fn submit_insert(&mut self, key: u64, value: &[u8]) -> u64 {
        let key = key & MAX_KEY;
        let token = self.take_token();
        self.submit_write(
            key,
            Pending::Insert {
                token,
                key,
                value: ValueBytes::from_slice(value),
            },
        );
        token
    }

    /// Queue a delete.
    pub fn submit_delete(&mut self, key: u64) -> u64 {
        let key = key & MAX_KEY;
        let token = self.take_token();
        self.submit_write(key, Pending::Delete { token, key });
        token
    }

    /// Queue a write, holding it back if an earlier write to the same key is
    /// still in flight (see the `write_order` field).
    fn submit_write(&mut self, key: u64, pending: Pending) {
        self.outstanding += 1;
        match self.write_order.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut in_flight) => {
                in_flight.get_mut().push_back(pending);
                self.deferred_writes += 1;
                return;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(VecDeque::new());
            }
        }
        let lane_idx = self.partition_of(key);
        self.dispatch(lane_idx, pending);
        self.make_progress_if_backlogged(lane_idx);
    }

    /// Push queued requests towards the servers and collect any completions
    /// into `out`.  Returns the number of completions appended.
    ///
    /// This is non-blocking: if no responses have arrived yet it simply
    /// returns 0.
    pub fn poll(&mut self, out: &mut Vec<Completion>) -> usize {
        let before = out.len();
        while let Some(c) = self.stashed.pop_front() {
            out.push(c);
        }
        let mut resubmissions: Vec<(usize, Pending)> = Vec::new();
        let mut finished_writes: Vec<u64> = Vec::new();
        for lane_idx in 0..self.lanes.len() {
            Self::pump_lane(
                &mut self.lanes[lane_idx],
                &mut self.resp_buf,
                &mut self.outstanding,
                out,
                &mut resubmissions,
                &mut finished_writes,
            );
        }
        // Operations bounced by a mid-migration server: re-encode them onto
        // the owning partition's lane (they keep their token, so callers
        // never observe the redirect).
        for (dest, pending) in resubmissions {
            self.retries += 1;
            self.dispatch(dest, pending);
        }
        self.release_deferred_writes(&finished_writes);
        out.len() - before
    }

    /// Queue an operation on a destination lane (fresh submissions, retry
    /// resubmissions and released deferred writes all funnel through here).
    fn dispatch(&mut self, dest: usize, pending: Pending) {
        let dest = dest.min(self.lanes.len() - 1);
        let lane = &mut self.lanes[dest];
        let (w0, w1) = match &pending {
            Pending::Lookup { key, .. } => encode(&Request::Lookup { key: *key }),
            Pending::Insert { key, value, .. } => encode(&Request::Insert {
                key: *key,
                size: value.len() as u64,
            }),
            Pending::Delete { key, .. } => encode(&Request::Delete { key: *key }),
        };
        lane.pending.push_back(pending);
        lane.outgoing.push_back(w0);
        if let Some(w1) = w1 {
            lane.outgoing.push_back(w1);
        }
    }

    /// For every completed write, either dispatch the next deferred write to
    /// the key's *current* owner or clear the key's in-flight marker.
    fn release_deferred_writes(&mut self, finished: &[u64]) {
        for &key in finished {
            let next = match self.write_order.get_mut(&key) {
                Some(queue) => queue.pop_front(),
                None => continue,
            };
            match next {
                Some(pending) => {
                    let dest = self.partition_of(key);
                    self.dispatch(dest, pending);
                }
                None => {
                    self.write_order.remove(&key);
                }
            }
        }
    }

    /// Publish every queued request to the servers immediately (partial
    /// cache lines included).  `poll` does this as part of pumping; an
    /// explicit flush is useful right before a quiet period.
    pub fn flush(&mut self) {
        for lane in &mut self.lanes {
            Self::push_outgoing(lane);
            lane.channel.flush();
        }
    }

    /// Block (spinning) until every outstanding operation has completed,
    /// appending completions to `out` (including any completions stashed by
    /// earlier synchronous calls).
    pub fn drain(&mut self, out: &mut Vec<Completion>) -> Result<(), TableError> {
        let mut idle: u32 = 0;
        loop {
            let produced = self.poll(out);
            if self.outstanding == 0 {
                return Ok(());
            }
            if produced == 0 {
                if self.lanes.iter().any(|l| !l.channel.is_server_alive()) {
                    return Err(TableError::ServerGone);
                }
                idle = idle.saturating_add(1);
                if idle > 128 {
                    // On oversubscribed hosts the server may need our core.
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            } else {
                idle = 0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Synchronous convenience API (built on the pipeline)
    // ------------------------------------------------------------------

    /// Look up `key`, returning its value bytes if present.
    pub fn get(&mut self, key: u64) -> Result<Option<ValueBytes>, TableError> {
        let token = self.submit_lookup(key);
        match self.wait_for(token)? {
            CompletionKind::LookupHit(v) => Ok(Some(v)),
            CompletionKind::LookupMiss => Ok(None),
            other => unreachable!("lookup completed as {other:?}"),
        }
    }

    /// Look up `key` and copy its value into `out`. Returns `true` on a hit.
    pub fn lookup(&mut self, key: u64, out: &mut Vec<u8>) -> Result<bool, TableError> {
        match self.get(key)? {
            Some(v) => {
                out.clear();
                out.extend_from_slice(v.as_slice());
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Insert `value` under `key`. Returns `false` if the table could not
    /// make room (value larger than a partition, or everything pinned).
    pub fn insert(&mut self, key: u64, value: &[u8]) -> Result<bool, TableError> {
        let token = self.submit_insert(key, value);
        match self.wait_for(token)? {
            CompletionKind::Inserted => Ok(true),
            CompletionKind::InsertFailed => Ok(false),
            other => unreachable!("insert completed as {other:?}"),
        }
    }

    /// Remove `key`. Returns whether it was present.
    pub fn delete(&mut self, key: u64) -> Result<bool, TableError> {
        let token = self.submit_delete(key);
        match self.wait_for(token)? {
            CompletionKind::Deleted(found) => Ok(found),
            other => unreachable!("delete completed as {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn take_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// If a lane has accumulated a deep backlog, push requests and drain
    /// responses so the rings never overflow no matter how many operations
    /// the caller queues between polls.
    fn make_progress_if_backlogged(&mut self, lane_idx: usize) {
        if self.lanes[lane_idx].pending.len() < self.max_outstanding_per_lane {
            return;
        }
        let mut spill = Vec::new();
        let mut resubmissions = Vec::new();
        let mut finished_writes = Vec::new();
        Self::pump_lane(
            &mut self.lanes[lane_idx],
            &mut self.resp_buf,
            &mut self.outstanding,
            &mut spill,
            &mut resubmissions,
            &mut finished_writes,
        );
        self.stashed.extend(spill);
        for (dest, pending) in resubmissions {
            self.retries += 1;
            self.dispatch(dest, pending);
        }
        self.release_deferred_writes(&finished_writes);
    }

    /// Wait (spinning) for a specific token, stashing every other completion
    /// for later `poll` calls.
    fn wait_for(&mut self, token: u64) -> Result<CompletionKind, TableError> {
        // The wanted completion may already have been stashed by an earlier
        // synchronous call.
        if let Some(pos) = self.stashed.iter().position(|c| c.token == token) {
            return Ok(self.stashed.remove(pos).expect("position valid").kind);
        }
        let mut buf = Vec::new();
        let mut idle: u32 = 0;
        loop {
            buf.clear();
            let produced = self.poll(&mut buf);
            let mut found = None;
            for c in buf.drain(..) {
                if c.token == token {
                    found = Some(c.kind);
                } else {
                    self.stashed.push_back(c);
                }
            }
            if let Some(kind) = found {
                return Ok(kind);
            }
            if self.lanes.iter().any(|l| !l.channel.is_server_alive()) {
                return Err(TableError::ServerGone);
            }
            if produced == 0 {
                idle = idle.saturating_add(1);
                if idle > 128 {
                    // On oversubscribed hosts the server may need our core.
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            } else {
                idle = 0;
            }
        }
    }

    /// Move outgoing words into the ring (stopping when it is full) and
    /// publish them.
    fn push_outgoing(lane: &mut Lane) {
        if lane.outgoing.is_empty() {
            return;
        }
        let span = StageSpan::begin(TraceStage::RingEnqueue);
        let mut pushed = 0u32;
        while let Some(&word) = lane.outgoing.front() {
            match lane.channel.try_send(word) {
                Ok(()) => {
                    lane.outgoing.pop_front();
                    pushed += 1;
                }
                Err(_) => break,
            }
        }
        span.finish(pushed);
    }

    /// One round of progress on one lane: send queued requests, flush, drain
    /// responses, process them (which may queue follow-up Ready/Decref
    /// messages), and send those too.  Retry responses do not complete their
    /// operation; they are collected into `resubmissions` for the caller to
    /// re-route.
    fn pump_lane(
        lane: &mut Lane,
        resp_buf: &mut Vec<Response>,
        outstanding: &mut usize,
        out: &mut Vec<Completion>,
        resubmissions: &mut Vec<(usize, Pending)>,
        finished_writes: &mut Vec<u64>,
    ) {
        Self::push_outgoing(lane);
        lane.channel.flush();

        resp_buf.clear();
        if lane.channel.recv_batch(resp_buf, usize::MAX) == 0 {
            return;
        }
        // Batched value prefetch: every hit in this response batch carries
        // a pointer whose lines the loop below will read (lookup value copy)
        // or write (insert value copy).  Hint them all first — every line of
        // the value, not just the first — so the copies' DRAM misses overlap
        // — the client-side mirror of the server's staged bucket prefetch.
        for response in resp_buf.iter() {
            if response.has_value() {
                let start = response.addr as usize;
                let end = start + response.value_size().max(1);
                let mut line = start & !(cphash_cacheline::CACHE_LINE_SIZE - 1);
                while line < end {
                    cphash_cacheline::prefetch_read(line as *const u8);
                    line += cphash_cacheline::CACHE_LINE_SIZE;
                }
            }
        }
        for response in resp_buf.drain(..) {
            let pending = lane
                .pending
                .pop_front()
                .expect("server sent a response with nothing pending");
            let write_key = match &pending {
                Pending::Insert { key, .. } | Pending::Delete { key, .. } => Some(*key),
                Pending::Lookup { .. } => None,
            };
            match Self::complete(lane, pending, response) {
                Applied::Done(completion) => {
                    *outstanding -= 1;
                    out.push(completion);
                    if let Some(key) = write_key {
                        finished_writes.push(key);
                    }
                }
                Applied::Resubmit { dest, pending } => {
                    resubmissions.push((dest, pending));
                }
            }
        }
        // Follow-up messages (Ready/Decref) generated above.
        Self::push_outgoing(lane);
        lane.channel.flush();
    }

    /// Apply a response to its pending operation, producing the completion
    /// (or a resubmission) and queueing any follow-up protocol message.
    fn complete(lane: &mut Lane, pending: Pending, response: Response) -> Applied {
        if response.is_retry() {
            return Applied::Resubmit {
                dest: response.retry_destination(),
                pending,
            };
        }
        Applied::Done(match pending {
            Pending::Lookup { token, .. } => {
                if response.has_value() {
                    // SAFETY: the server incremented the element's reference
                    // count before responding, and READY values are never
                    // written again, so reading `value_size` bytes at `addr`
                    // is valid until we send the Decref below.
                    let bytes = unsafe {
                        core::slice::from_raw_parts(
                            response.addr as *const u8,
                            response.value_size(),
                        )
                    };
                    let value = ValueBytes::from_slice(bytes);
                    let (w0, _) = encode(&Request::Decref {
                        id: response.element_id(),
                    });
                    lane.outgoing.push_back(w0);
                    Completion {
                        token,
                        kind: CompletionKind::LookupHit(value),
                    }
                } else {
                    Completion {
                        token,
                        kind: CompletionKind::LookupMiss,
                    }
                }
            }
            Pending::Insert { token, value, .. } => {
                if response.has_value() {
                    // SAFETY: the server allocated `value_size` bytes at
                    // `addr` for this reservation and will not read or free
                    // them until it processes the Ready message we queue
                    // below; we are the only writer.
                    unsafe {
                        core::ptr::copy_nonoverlapping(
                            value.as_slice().as_ptr(),
                            response.addr as *mut u8,
                            value.len().min(response.value_size()),
                        );
                    }
                    let (w0, _) = encode(&Request::Ready {
                        id: response.element_id(),
                    });
                    lane.outgoing.push_back(w0);
                    Completion {
                        token,
                        kind: CompletionKind::Inserted,
                    }
                } else {
                    Completion {
                        token,
                        kind: CompletionKind::InsertFailed,
                    }
                }
            }
            Pending::Delete { token, .. } => Completion {
                token,
                kind: CompletionKind::Deleted(response.is_hit()),
            },
        })
    }
}

impl core::fmt::Debug for ClientHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClientHandle")
            .field("lanes", &self.lanes.len())
            .field("outstanding", &self.outstanding)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bytes_inline_and_heap() {
        let small = ValueBytes::from_slice(&[1, 2, 3]);
        assert!(matches!(small, ValueBytes::Inline { len: 3, .. }));
        assert_eq!(small.as_slice(), &[1, 2, 3]);
        assert_eq!(small.len(), 3);
        assert!(!small.is_empty());

        let empty = ValueBytes::from_slice(&[]);
        assert!(empty.is_empty());

        let big = ValueBytes::from_slice(&[7u8; 100]);
        assert!(matches!(big, ValueBytes::Heap(_)));
        assert_eq!(big.len(), 100);
    }

    #[test]
    fn errors_display() {
        assert!(format!("{}", TableError::ServerGone).contains("shut down"));
        assert!(format!("{}", TableError::KeyTooLarge).contains("60 bits"));
    }
}
