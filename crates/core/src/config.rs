//! CPHash table configuration.

use cphash_affinity::{HwThreadId, Topology};
use cphash_hashcore::EvictionPolicy;

/// Configuration for a [`crate::CpHash`] table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpHashConfig {
    /// Number of partitions = number of server threads (§3.1: "one partition
    /// for each hardware thread that runs a server thread").
    pub partitions: usize,
    /// Number of client handles the table creates.
    pub clients: usize,
    /// Total byte budget across all partitions (`None` = unbounded). Each
    /// partition gets an equal share — "In CPHASH all partitions are of
    /// equal size for simplicity" (§3.1).
    pub capacity_bytes: Option<usize>,
    /// Buckets per partition. Default sizes the table for roughly one
    /// element per bucket given 8-byte values and the byte budget.
    pub buckets_per_partition: usize,
    /// Eviction policy (LRU by default, Random for the §6.3 variant).
    pub eviction: EvictionPolicy,
    /// Message-ring capacity per client/server lane, in 8-byte words.
    pub ring_capacity: usize,
    /// Hardware threads to pin server threads to, one per partition.
    /// Empty = do not pin (tests, small machines).
    pub server_pins: Vec<HwThreadId>,
    /// Seed used for partition-local randomness (random eviction).
    pub seed: u64,
    /// Upper bound on the partition count the table can be re-partitioned
    /// to at runtime. The table spawns this many server threads up front
    /// (threads beyond the active count idle-poll their empty lanes); `0`
    /// means "equal to `partitions`", i.e. a statically-sized table.
    pub max_partitions: usize,
    /// Number of migration chunks the key space is cut into for live
    /// re-partitioning (a power of two). More chunks mean smaller, more
    /// frequent migration steps.
    pub migration_chunks: usize,
}

impl Default for CpHashConfig {
    fn default() -> Self {
        CpHashConfig {
            partitions: 4,
            clients: 1,
            capacity_bytes: None,
            buckets_per_partition: 1024,
            eviction: EvictionPolicy::Lru,
            ring_capacity: 4096,
            server_pins: Vec::new(),
            seed: 0xC0FF_EE00,
            max_partitions: 0,
            migration_chunks: 64,
        }
    }
}

impl CpHashConfig {
    /// A config with `partitions` server threads and `clients` client
    /// handles, unbounded capacity.
    pub fn new(partitions: usize, clients: usize) -> Self {
        CpHashConfig {
            partitions,
            clients,
            ..Default::default()
        }
    }

    /// Set the total capacity budget (split evenly across partitions) and
    /// derive a bucket count targeting ~1 element per bucket for 8-byte
    /// values, as the paper's benchmark does.
    pub fn with_capacity(mut self, capacity_bytes: usize, typical_value_bytes: usize) -> Self {
        self.capacity_bytes = Some(capacity_bytes);
        let elements = capacity_bytes / typical_value_bytes.max(1);
        self.buckets_per_partition = (elements / self.partitions.max(1))
            .next_power_of_two()
            .max(8);
        self
    }

    /// Set the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Pin server threads to the second hardware thread of each core, as in
    /// the paper's §6.1 placement, using the given topology.
    pub fn with_paper_placement(mut self, topo: &Topology) -> Self {
        self.server_pins = (0..self.partitions)
            .map(|i| {
                let core = cphash_affinity::CoreId(i % topo.total_cores());
                topo.hw_thread(core, (topo.threads_per_core - 1).min(1))
            })
            .collect();
        self
    }

    /// Allow live re-partitioning up to `max_partitions` server threads.
    pub fn with_max_partitions(mut self, max_partitions: usize) -> Self {
        self.max_partitions = max_partitions;
        self
    }

    /// The number of server threads the table spawns: `max_partitions`,
    /// defaulting to the initial `partitions` when unset.
    pub fn spawned_partitions(&self) -> usize {
        self.max_partitions.max(self.partitions)
    }

    /// Per-partition byte budget.
    pub fn partition_capacity(&self) -> Option<usize> {
        self.capacity_bytes
            .map(|total| (total / self.partitions.max(1)).max(64))
    }

    /// Validate the configuration, panicking with a clear message on
    /// nonsensical values.
    pub fn validate(&self) {
        assert!(self.partitions > 0, "CPHash needs at least one partition");
        assert!(self.clients > 0, "CPHash needs at least one client");
        assert!(self.ring_capacity >= 64, "ring capacity unreasonably small");
        assert!(
            self.server_pins.is_empty() || self.server_pins.len() >= self.partitions,
            "server_pins must be empty or provide one hardware thread per partition"
        );
        assert!(
            self.migration_chunks.is_power_of_two()
                && self.migration_chunks <= cphash_hashcore::MAX_MIGRATION_CHUNKS,
            "migration_chunks must be a power of two, at most {}",
            cphash_hashcore::MAX_MIGRATION_CHUNKS
        );
        assert!(
            self.max_partitions == 0 || self.max_partitions >= self.partitions,
            "max_partitions must be 0 (static) or at least the initial partition count"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        CpHashConfig::default().validate();
    }

    #[test]
    fn capacity_splits_evenly() {
        let c = CpHashConfig::new(8, 2).with_capacity(1 << 20, 8);
        assert_eq!(c.partition_capacity(), Some(131_072));
        // 1 MiB / 8 B = 131072 elements over 8 partitions → 16384 buckets.
        assert_eq!(c.buckets_per_partition, 16_384);
        c.validate();
    }

    #[test]
    fn paper_placement_pins_one_server_per_core_sibling() {
        let topo = Topology::paper_machine();
        let c = CpHashConfig::new(80, 80).with_paper_placement(&topo);
        assert_eq!(c.server_pins.len(), 80);
        // Server i is pinned to the SMT sibling of core i (CPU 80+i).
        assert_eq!(c.server_pins[0], HwThreadId(80));
        assert_eq!(c.server_pins[79], HwThreadId(159));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two, at most")]
    fn oversized_chunk_counts_rejected() {
        CpHashConfig {
            migration_chunks: 1 << 17,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        CpHashConfig {
            partitions: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "one hardware thread per partition")]
    fn wrong_pin_count_rejected() {
        CpHashConfig {
            partitions: 4,
            server_pins: vec![HwThreadId(0)],
            ..Default::default()
        }
        .validate();
    }
}
