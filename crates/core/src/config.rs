//! CPHash table configuration.

use cphash_affinity::{HwThreadId, PlacementPlan, Role, ThreadAssignment, Topology};
use cphash_hashcore::EvictionPolicy;

pub use cphash_hashcore::BucketLayout;

/// How the repartition coordinator paces chunk hand-offs during a live
/// resize (see `cphash-migrate`'s `MigrationPacer`).
///
/// Lives here (not in `cphash-migrate`) so that table-level configuration —
/// `CpHashConfig`, CPSERVER's config, benchmark harnesses — can carry the
/// knob without depending on the migration crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MigrationPacing {
    /// Hand chunks off back-to-back (PR 1 behaviour): fastest transition,
    /// deepest foreground-throughput dip.
    #[default]
    Unpaced,
    /// Token bucket: at most `chunks_per_sec` chunk hand-offs per second,
    /// spreading the migration cost over time at an operator-chosen rate.
    Rate {
        /// Chunk hand-offs per second (must be positive).
        chunks_per_sec: f64,
    },
    /// Feedback mode: start at `chunks_per_sec` and sample the
    /// per-partition inbound queue depth between hand-offs — halving the
    /// rate while servers are falling behind (`depth > high_depth`) and
    /// recovering it while they are keeping up (`depth < low_depth`).
    Feedback {
        /// Initial (and maximum) chunk hand-offs per second.
        chunks_per_sec: f64,
        /// Queue depth (words drained per server loop iteration) above
        /// which the pacer backs off.
        high_depth: f64,
        /// Queue depth below which the pacer speeds back up.
        low_depth: f64,
    },
    /// Feedback on *client-observed latency*: the same
    /// halve-on-pressure / recover-when-clear controller as
    /// [`MigrationPacing::Feedback`], but the signal sampled between
    /// hand-offs is a request-latency p99 (microseconds) from a
    /// `cphash_perfmon::SharedLatencyWindow` instead of the server queue
    /// depth — tracking what applications actually feel rather than how
    /// deep the inbound rings run.
    FeedbackLatency {
        /// Initial (and maximum) chunk hand-offs per second.
        chunks_per_sec: f64,
        /// Windowed request p99, in microseconds, above which the pacer
        /// backs off.
        high_p99_us: f64,
        /// Windowed request p99 below which the pacer speeds back up.
        low_p99_us: f64,
    },
}

impl MigrationPacing {
    /// A sensible feedback configuration: back off when servers drain more
    /// than half a lane batch per iteration, recover below an eighth.
    pub fn feedback(chunks_per_sec: f64) -> Self {
        MigrationPacing::Feedback {
            chunks_per_sec,
            high_depth: 128.0,
            low_depth: 32.0,
        }
    }

    /// A sensible latency-feedback configuration: back off while the
    /// windowed request p99 exceeds 2 ms, recover below 500 µs.
    pub fn latency_feedback(chunks_per_sec: f64) -> Self {
        MigrationPacing::FeedbackLatency {
            chunks_per_sec,
            high_p99_us: 2_000.0,
            low_p99_us: 500.0,
        }
    }

    /// Validate the pacing parameters, panicking on nonsense.
    pub fn validate(&self) {
        match *self {
            MigrationPacing::Unpaced => {}
            MigrationPacing::Rate { chunks_per_sec } => {
                assert!(
                    chunks_per_sec > 0.0 && chunks_per_sec.is_finite(),
                    "chunks_per_sec must be positive and finite"
                );
            }
            MigrationPacing::Feedback {
                chunks_per_sec,
                high_depth,
                low_depth,
            } => {
                assert!(
                    chunks_per_sec > 0.0 && chunks_per_sec.is_finite(),
                    "chunks_per_sec must be positive and finite"
                );
                assert!(
                    low_depth >= 0.0 && high_depth >= low_depth,
                    "feedback thresholds must satisfy 0 <= low_depth <= high_depth"
                );
            }
            MigrationPacing::FeedbackLatency {
                chunks_per_sec,
                high_p99_us,
                low_p99_us,
            } => {
                assert!(
                    chunks_per_sec > 0.0 && chunks_per_sec.is_finite(),
                    "chunks_per_sec must be positive and finite"
                );
                assert!(
                    low_p99_us >= 0.0 && high_p99_us >= low_p99_us,
                    "feedback thresholds must satisfy 0 <= low_p99_us <= high_p99_us"
                );
            }
        }
    }
}

/// How a server thread processes the data operations it drains from its
/// client lanes.
///
/// The default is the paper's mechanism: drain a batch, *prepare* (hash)
/// every operation and software-prefetch its bucket chain, then execute the
/// whole batch — so the DRAM misses of a batch overlap instead of
/// serializing, and the ring is synchronized once per batch rather than
/// once per message.  The alternatives exist for ablation
/// (`ablate_prefetch`) and as an escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerPipeline {
    /// Process one message at a time, replying as each completes (the
    /// pre-batching baseline).
    Scalar,
    /// Stage batches (prepare all, execute all, reply as one ring batch)
    /// but issue no prefetches — isolates the synchronization-amortization
    /// effect.
    Batched,
    /// Stage batches *and* prefetch every operation's bucket chain before
    /// executing — the full paper mechanism, and the default.
    #[default]
    BatchedPrefetch,
}

impl ServerPipeline {
    /// Parse a pipeline name (`scalar` | `batched` | `prefetch`, the
    /// spelling `cpserverd --pipeline` and `CPHASH_PIPELINE` accept).
    pub fn parse(name: &str) -> Result<ServerPipeline, String> {
        match name {
            "scalar" => Ok(ServerPipeline::Scalar),
            "batched" => Ok(ServerPipeline::Batched),
            "prefetch" | "batched-prefetch" => Ok(ServerPipeline::BatchedPrefetch),
            other => Err(format!(
                "unknown pipeline {other:?} (expected scalar|batched|prefetch)"
            )),
        }
    }

    /// Canonical name (round-trips through [`ServerPipeline::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServerPipeline::Scalar => "scalar",
            ServerPipeline::Batched => "batched",
            ServerPipeline::BatchedPrefetch => "prefetch",
        }
    }

    /// The default pipeline, overridable with `CPHASH_PIPELINE`
    /// (unparseable values fall back to the built-in default so a typo
    /// cannot take a server down).
    pub fn from_env() -> ServerPipeline {
        match std::env::var("CPHASH_PIPELINE") {
            Ok(name) => ServerPipeline::parse(&name).unwrap_or_default(),
            Err(_) => ServerPipeline::default(),
        }
    }
}

impl core::fmt::Display for ServerPipeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The built-in default pipeline depth (operations staged per batch).
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// The default pipeline depth, overridable with `CPHASH_BATCH_SIZE`
/// (unparseable or zero values fall back to [`DEFAULT_BATCH_SIZE`]).
pub fn batch_size_from_env() -> usize {
    std::env::var("CPHASH_BATCH_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_BATCH_SIZE)
}

/// One partition's share of a global byte budget split over `partitions`
/// partitions (with a small floor so a share is never useless).  Both the
/// table constructor and the live capacity re-split during re-partitioning
/// use this rule, so resizing never changes the table-wide budget.
pub fn split_capacity(total: Option<usize>, partitions: usize) -> Option<usize> {
    total.map(|bytes| (bytes / partitions.max(1)).max(64))
}

/// Configuration for a [`crate::CpHash`] table.
#[derive(Debug, Clone, PartialEq)]
pub struct CpHashConfig {
    /// Number of partitions = number of server threads (§3.1: "one partition
    /// for each hardware thread that runs a server thread").
    pub partitions: usize,
    /// Number of client handles the table creates.
    pub clients: usize,
    /// Total byte budget across all partitions (`None` = unbounded). Each
    /// partition gets an equal share — "In CPHASH all partitions are of
    /// equal size for simplicity" (§3.1).
    pub capacity_bytes: Option<usize>,
    /// Buckets per partition. Default sizes the table for roughly one
    /// element per bucket given 8-byte values and the byte budget.
    pub buckets_per_partition: usize,
    /// Eviction policy (LRU by default, Random for the §6.3 variant).
    pub eviction: EvictionPolicy,
    /// Message-ring capacity per client/server lane, in 8-byte words.
    pub ring_capacity: usize,
    /// Hardware threads to pin server threads to, one per partition.
    /// Empty = do not pin (tests, small machines).
    pub server_pins: Vec<HwThreadId>,
    /// Seed used for partition-local randomness (random eviction).
    pub seed: u64,
    /// Upper bound on the partition count the table can be re-partitioned
    /// to at runtime. The table spawns this many server threads up front
    /// (threads beyond the active count idle-poll their empty lanes); `0`
    /// means "equal to `partitions`", i.e. a statically-sized table.
    pub max_partitions: usize,
    /// Number of migration chunks the key space is cut into for live
    /// re-partitioning (a power of two). More chunks mean smaller, more
    /// frequent migration steps.
    pub migration_chunks: usize,
    /// Default pacing for live re-partitioning (the coordinator may be
    /// given a different pacer per resize; this is what table-level tooling
    /// such as CPSERVER starts from).
    pub migration_pacing: MigrationPacing,
    /// How server threads process drained operations (staged batch
    /// pipeline with prefetch by default; see [`ServerPipeline`]).
    pub pipeline: ServerPipeline,
    /// Pipeline depth: how many data operations a server stages
    /// (hash + prefetch) before executing them.  1 degenerates to
    /// per-operation processing within the batched code path.
    pub batch_size: usize,
    /// Bucket memory layout inside each partition: tagged inline cache
    /// lines (the default) or the paper's bare chain heads.  Overridable
    /// with `CPHASH_BUCKET_LAYOUT` for A/B runs (see [`BucketLayout`]).
    pub bucket_layout: BucketLayout,
}

impl Default for CpHashConfig {
    fn default() -> Self {
        CpHashConfig {
            partitions: 4,
            clients: 1,
            capacity_bytes: None,
            buckets_per_partition: 1024,
            eviction: EvictionPolicy::Lru,
            ring_capacity: 4096,
            server_pins: Vec::new(),
            seed: 0xC0FF_EE00,
            max_partitions: 0,
            migration_chunks: 64,
            migration_pacing: MigrationPacing::Unpaced,
            pipeline: ServerPipeline::from_env(),
            batch_size: batch_size_from_env(),
            bucket_layout: BucketLayout::from_env(),
        }
    }
}

impl CpHashConfig {
    /// A config with `partitions` server threads and `clients` client
    /// handles, unbounded capacity.
    pub fn new(partitions: usize, clients: usize) -> Self {
        CpHashConfig {
            partitions,
            clients,
            ..Default::default()
        }
    }

    /// Set the total capacity budget (split evenly across partitions) and
    /// derive a bucket count targeting ~1 element per bucket for 8-byte
    /// values, as the paper's benchmark does.
    pub fn with_capacity(mut self, capacity_bytes: usize, typical_value_bytes: usize) -> Self {
        self.capacity_bytes = Some(capacity_bytes);
        let elements = capacity_bytes / typical_value_bytes.max(1);
        self.buckets_per_partition = (elements / self.partitions.max(1))
            .next_power_of_two()
            .max(8);
        self
    }

    /// Set the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Pin server threads to the second hardware thread of each core, as in
    /// the paper's §6.1 placement, using the given topology.
    pub fn with_paper_placement(mut self, topo: &Topology) -> Self {
        self.server_pins = (0..self.partitions)
            .map(|i| {
                let core = cphash_affinity::CoreId(i % topo.total_cores());
                topo.hw_thread(core, (topo.threads_per_core - 1).min(1))
            })
            .collect();
        self
    }

    /// Allow live re-partitioning up to `max_partitions` server threads.
    pub fn with_max_partitions(mut self, max_partitions: usize) -> Self {
        self.max_partitions = max_partitions;
        self
    }

    /// Apply the server assignments of a [`PlacementPlan`] as
    /// `server_pins`, in server-index order.  The plan must provide at
    /// least one server assignment per spawnable server thread
    /// ([`CpHashConfig::spawned_partitions`]), so that partitions activated
    /// by a later live grow are pinned too — not just the initial set.
    pub fn with_placement_plan(mut self, plan: &PlacementPlan) -> Self {
        let mut pins: Vec<(usize, HwThreadId)> = plan
            .assignments
            .iter()
            .filter(|a| a.role == Role::Server)
            .map(|a| (a.index, a.hw_thread))
            .collect();
        pins.sort_by_key(|(index, _)| *index);
        assert!(
            pins.len() >= self.spawned_partitions(),
            "placement plan covers {} servers but the table can grow to {}",
            pins.len(),
            self.spawned_partitions()
        );
        self.server_pins = pins.into_iter().map(|(_, hw)| hw).collect();
        self
    }

    /// NUMA-aware placement for elastic tables: build a plan with one
    /// server assignment per *spawnable* thread — grown partitions included
    /// — walking the topology's cores in socket order (second SMT sibling,
    /// as in §6.1), and wire it into `server_pins`.  Partition memory is
    /// first-touch allocated by its own server thread, so pinning the
    /// thread that a grow will activate is what keeps the new partition's
    /// memory local to its socket.
    pub fn with_numa_placement(self, topo: &Topology) -> Self {
        let spawned = self.spawned_partitions();
        let assignments = (0..spawned)
            .map(|index| {
                let core = cphash_affinity::CoreId(index % topo.total_cores());
                ThreadAssignment {
                    role: Role::Server,
                    index,
                    hw_thread: topo.hw_thread(core, (topo.threads_per_core - 1).min(1)),
                }
            })
            .collect();
        let plan = PlacementPlan {
            label: format!("numa-elastic-{spawned}-servers"),
            assignments,
        };
        self.with_placement_plan(&plan)
    }

    /// The number of server threads the table spawns: `max_partitions`,
    /// defaulting to the initial `partitions` when unset.
    pub fn spawned_partitions(&self) -> usize {
        self.max_partitions.max(self.partitions)
    }

    /// Per-partition byte budget at the initial partition count.
    pub fn partition_capacity(&self) -> Option<usize> {
        self.partition_capacity_for(self.partitions)
    }

    /// Per-partition share of the global byte budget when `partitions`
    /// server threads are active.  Live re-partitioning re-splits the
    /// budget with this same rule (see [`split_capacity`]), so the
    /// table-wide budget stays fixed as the partition count changes.
    pub fn partition_capacity_for(&self, partitions: usize) -> Option<usize> {
        split_capacity(self.capacity_bytes, partitions)
    }

    /// Set the default migration pacing.
    pub fn with_migration_pacing(mut self, pacing: MigrationPacing) -> Self {
        self.migration_pacing = pacing;
        self
    }

    /// Select the server pipeline (scalar / batched / batched+prefetch).
    pub fn with_pipeline(mut self, pipeline: ServerPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Set the pipeline depth (operations staged per batch; must be ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Select the bucket layout (tagged inline lines / bare chain heads).
    pub fn with_bucket_layout(mut self, layout: BucketLayout) -> Self {
        self.bucket_layout = layout;
        self
    }

    /// Validate the configuration, panicking with a clear message on
    /// nonsensical values.
    pub fn validate(&self) {
        assert!(self.partitions > 0, "CPHash needs at least one partition");
        assert!(self.clients > 0, "CPHash needs at least one client");
        assert!(self.ring_capacity >= 64, "ring capacity unreasonably small");
        assert!(
            self.server_pins.is_empty() || self.server_pins.len() >= self.partitions,
            "server_pins must be empty or provide one hardware thread per partition"
        );
        assert!(
            self.migration_chunks.is_power_of_two()
                && self.migration_chunks <= cphash_hashcore::MAX_MIGRATION_CHUNKS,
            "migration_chunks must be a power of two, at most {}",
            cphash_hashcore::MAX_MIGRATION_CHUNKS
        );
        assert!(
            self.max_partitions == 0 || self.max_partitions >= self.partitions,
            "max_partitions must be 0 (static) or at least the initial partition count"
        );
        assert!(self.batch_size >= 1, "batch_size must be at least 1");
        self.migration_pacing.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        CpHashConfig::default().validate();
    }

    #[test]
    fn capacity_splits_evenly() {
        let c = CpHashConfig::new(8, 2).with_capacity(1 << 20, 8);
        assert_eq!(c.partition_capacity(), Some(131_072));
        // 1 MiB / 8 B = 131072 elements over 8 partitions → 16384 buckets.
        assert_eq!(c.buckets_per_partition, 16_384);
        c.validate();
    }

    #[test]
    fn numa_placement_pins_grown_servers_too() {
        let topo = Topology::paper_machine();
        // Table starts at 4 partitions but can grow to 16: all 16 spawnable
        // server threads must get a pin, so a live grow lands new
        // partitions on pre-placed threads.
        let c = CpHashConfig::new(4, 4)
            .with_max_partitions(16)
            .with_numa_placement(&topo);
        assert_eq!(c.server_pins.len(), 16);
        c.validate();
        // Server i sits on the SMT sibling of core i (paper §6.1 shape).
        for (i, pin) in c.server_pins.iter().enumerate() {
            assert_eq!(topo.core_of_hw_thread(*pin), cphash_affinity::CoreId(i));
        }
        // The grown servers (indices 4..16) spread across sockets rather
        // than piling onto socket 0.
        let sockets: std::collections::HashSet<usize> = c.server_pins[4..]
            .iter()
            .map(|hw| topo.socket_of_hw_thread(*hw).0)
            .collect();
        assert!(sockets.len() > 1, "grown pins span sockets: {sockets:?}");
    }

    #[test]
    fn placement_plan_wires_server_assignments_in_index_order() {
        let topo = Topology::paper_machine();
        let cores: Vec<usize> = (0..8).collect();
        let plan = PlacementPlan::cphash_paired(&topo, &cores);
        let c = CpHashConfig::new(8, 8).with_placement_plan(&plan);
        assert_eq!(c.server_pins.len(), 8);
        for (i, pin) in c.server_pins.iter().enumerate() {
            let expected = plan
                .assignments
                .iter()
                .find(|a| a.role == Role::Server && a.index == i)
                .unwrap()
                .hw_thread;
            assert_eq!(*pin, expected);
        }
        c.validate();
    }

    #[test]
    #[should_panic(expected = "placement plan covers")]
    fn short_placement_plan_is_rejected() {
        let topo = Topology::paper_machine();
        let cores: Vec<usize> = (0..4).collect();
        let plan = PlacementPlan::cphash_paired(&topo, &cores);
        // 4 server assignments cannot cover a table that grows to 8.
        let _ = CpHashConfig::new(4, 1)
            .with_max_partitions(8)
            .with_placement_plan(&plan);
    }

    #[test]
    fn paper_placement_pins_one_server_per_core_sibling() {
        let topo = Topology::paper_machine();
        let c = CpHashConfig::new(80, 80).with_paper_placement(&topo);
        assert_eq!(c.server_pins.len(), 80);
        // Server i is pinned to the SMT sibling of core i (CPU 80+i).
        assert_eq!(c.server_pins[0], HwThreadId(80));
        assert_eq!(c.server_pins[79], HwThreadId(159));
        c.validate();
    }

    #[test]
    fn capacity_resplits_for_any_partition_count() {
        let c = CpHashConfig::new(2, 1).with_capacity(1 << 20, 8);
        assert_eq!(c.partition_capacity(), Some(1 << 19));
        assert_eq!(c.partition_capacity_for(4), Some(1 << 18));
        assert_eq!(c.partition_capacity_for(8), Some(1 << 17));
        // The share never collapses below the 64-byte floor.
        assert_eq!(
            CpHashConfig::new(1, 1)
                .with_capacity(128, 8)
                .partition_capacity_for(1024),
            Some(64)
        );
    }

    #[test]
    fn pacing_validation_accepts_sane_configs() {
        MigrationPacing::Unpaced.validate();
        MigrationPacing::Rate {
            chunks_per_sec: 100.0,
        }
        .validate();
        MigrationPacing::feedback(500.0).validate();
        CpHashConfig::new(2, 1)
            .with_migration_pacing(MigrationPacing::feedback(250.0))
            .validate();
    }

    #[test]
    fn pipeline_names_round_trip_and_validate() {
        for pipeline in [
            ServerPipeline::Scalar,
            ServerPipeline::Batched,
            ServerPipeline::BatchedPrefetch,
        ] {
            assert_eq!(ServerPipeline::parse(pipeline.as_str()), Ok(pipeline));
            assert_eq!(format!("{pipeline}"), pipeline.as_str());
        }
        assert_eq!(
            ServerPipeline::parse("batched-prefetch"),
            Ok(ServerPipeline::BatchedPrefetch)
        );
        assert!(ServerPipeline::parse("warp-speed").is_err());
        CpHashConfig::new(2, 1)
            .with_pipeline(ServerPipeline::Scalar)
            .with_batch_size(1)
            .validate();
    }

    #[test]
    fn bucket_layout_names_round_trip_and_validate() {
        for layout in [BucketLayout::Chain, BucketLayout::Inline] {
            assert_eq!(BucketLayout::parse(layout.as_str()), Ok(layout));
            assert_eq!(format!("{layout}"), layout.as_str());
        }
        assert!(BucketLayout::parse("robin-hood").is_err());
        CpHashConfig::new(2, 1)
            .with_bucket_layout(BucketLayout::Chain)
            .validate();
    }

    #[test]
    #[should_panic(expected = "batch_size must be at least 1")]
    fn zero_batch_size_rejected() {
        CpHashConfig::new(2, 1).with_batch_size(0).validate();
    }

    #[test]
    fn latency_feedback_pacing_validates() {
        MigrationPacing::latency_feedback(500.0).validate();
        CpHashConfig::new(2, 1)
            .with_migration_pacing(MigrationPacing::FeedbackLatency {
                chunks_per_sec: 100.0,
                high_p99_us: 1_000.0,
                low_p99_us: 100.0,
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "low_p99_us <= high_p99_us")]
    fn inverted_latency_thresholds_rejected() {
        MigrationPacing::FeedbackLatency {
            chunks_per_sec: 10.0,
            high_p99_us: 1.0,
            low_p99_us: 2.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_pacing_rejected() {
        MigrationPacing::Rate {
            chunks_per_sec: 0.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "low_depth <= high_depth")]
    fn inverted_feedback_thresholds_rejected() {
        MigrationPacing::Feedback {
            chunks_per_sec: 10.0,
            high_depth: 1.0,
            low_depth: 2.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "power of two, at most")]
    fn oversized_chunk_counts_rejected() {
        CpHashConfig {
            migration_chunks: 1 << 17,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        CpHashConfig {
            partitions: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "one hardware thread per partition")]
    fn wrong_pin_count_rejected() {
        CpHashConfig {
            partitions: 4,
            server_pins: vec![HwThreadId(0)],
            ..Default::default()
        }
        .validate();
    }
}
