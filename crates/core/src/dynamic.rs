//! Dynamic adjustment of the server-thread count (paper §8.1, future work).
//!
//! The paper proposes, as future work, "an algorithm that dynamically
//! decides on how many cores to use for the server threads, depending on
//! the workload", and notes that in their experiments the split was chosen
//! statically.  This module implements the *decision* half of that
//! algorithm as a standalone controller: it watches the utilization of the
//! running server threads (the same counters §6.2 reports — busy vs. idle
//! polling iterations) and recommends growing or shrinking the server set.
//!
//! The *actuation* half lives in the `cphash-migrate` crate: its
//! `RepartitionCoordinator` consumes a [`Recommendation`] and re-partitions
//! the **live** table — migrating keys chunk by chunk through the epoch
//! router ([`crate::EpochRouter`]) with no lost or duplicated keys and no
//! restart.  The `ablate_dynamic_servers` benchmark runs the full closed
//! loop: measure utilization, recommend, apply live, repeat.

use std::sync::Arc;

use crate::stats::ServerStats;

/// Hysteresis-bounded utilization controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerLoadController {
    /// Grow the server set when mean utilization exceeds this.
    pub high_watermark: f64,
    /// Shrink the server set when mean utilization falls below this.
    pub low_watermark: f64,
    /// Never recommend fewer servers than this.
    pub min_servers: usize,
    /// Never recommend more servers than this.
    pub max_servers: usize,
    /// Fractional step per adjustment (0.25 = ±25 % of the current count).
    pub step: f64,
}

impl Default for ServerLoadController {
    fn default() -> Self {
        ServerLoadController {
            // §6.2 measured 59 % utilization at the chosen 80/80 split and
            // found it close to optimal; recommend growth only when servers
            // are clearly saturated and shrink only when clearly idle.
            high_watermark: 0.85,
            low_watermark: 0.35,
            min_servers: 1,
            max_servers: 1024,
            step: 0.25,
        }
    }
}

/// A recommendation produced by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Keep the current number of server threads.
    Keep(usize),
    /// Grow to the given number of server threads.
    Grow(usize),
    /// Shrink to the given number of server threads.
    Shrink(usize),
}

impl Recommendation {
    /// The recommended server count, whatever the direction.
    pub fn servers(&self) -> usize {
        match *self {
            Recommendation::Keep(n) | Recommendation::Grow(n) | Recommendation::Shrink(n) => n,
        }
    }
}

impl ServerLoadController {
    /// Recommend a server count given live per-server statistics.
    pub fn recommend(&self, stats: &[Arc<ServerStats>], current: usize) -> Recommendation {
        let utilization = if stats.is_empty() {
            0.0
        } else {
            stats.iter().map(|s| s.utilization()).sum::<f64>() / stats.len() as f64
        };
        self.recommend_for_utilization(utilization, current)
    }

    /// Recommend a server count for a given mean utilization (pure function,
    /// used by tests and by offline what-if analysis).
    pub fn recommend_for_utilization(&self, utilization: f64, current: usize) -> Recommendation {
        let current = current.clamp(self.min_servers, self.max_servers);
        let delta = ((current as f64 * self.step).round() as usize).max(1);
        if utilization > self.high_watermark && current < self.max_servers {
            Recommendation::Grow((current + delta).min(self.max_servers))
        } else if utilization < self.low_watermark && current > self.min_servers {
            Recommendation::Shrink(current.saturating_sub(delta).max(self.min_servers))
        } else {
            Recommendation::Keep(current)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn stats_with_utilization(busy: u64, idle: u64) -> Arc<ServerStats> {
        let s = Arc::new(ServerStats::new());
        s.busy_iterations.store(busy, Ordering::Relaxed);
        s.idle_iterations.store(idle, Ordering::Relaxed);
        s
    }

    #[test]
    fn saturated_servers_trigger_growth() {
        let c = ServerLoadController::default();
        let stats = vec![
            stats_with_utilization(95, 5),
            stats_with_utilization(90, 10),
        ];
        let r = c.recommend(&stats, 8);
        assert_eq!(r, Recommendation::Grow(10));
        assert_eq!(r.servers(), 10);
    }

    #[test]
    fn idle_servers_trigger_shrink() {
        let c = ServerLoadController::default();
        let stats = vec![stats_with_utilization(10, 90); 4];
        assert_eq!(c.recommend(&stats, 8), Recommendation::Shrink(6));
    }

    #[test]
    fn paper_operating_point_is_kept() {
        // 59 % utilization (the §6.2 measurement) sits inside the hysteresis
        // band, so the controller keeps the static split the paper chose.
        let c = ServerLoadController::default();
        assert_eq!(
            c.recommend_for_utilization(0.59, 80),
            Recommendation::Keep(80)
        );
    }

    #[test]
    fn bounds_are_respected() {
        let c = ServerLoadController {
            min_servers: 2,
            max_servers: 8,
            ..Default::default()
        };
        assert_eq!(
            c.recommend_for_utilization(0.99, 8),
            Recommendation::Keep(8)
        );
        assert_eq!(
            c.recommend_for_utilization(0.01, 2),
            Recommendation::Keep(2)
        );
        assert_eq!(c.recommend_for_utilization(0.99, 7).servers(), 8);
        assert_eq!(c.recommend_for_utilization(0.01, 3).servers(), 2);
    }

    #[test]
    fn empty_stats_mean_idle() {
        let c = ServerLoadController::default();
        assert_eq!(c.recommend(&[], 4), Recommendation::Shrink(3));
    }
}
