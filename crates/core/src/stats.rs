//! Shared runtime statistics for a CPHash table.

use cphash_sync::atomic::plain::{AtomicBool, AtomicU64, Ordering};

use cphash_affinity::PinOutcome;
use cphash_perfmon::{BatchCounters, BatchStats};

/// Counters one server thread updates while running; read by the table
/// handle, the dynamic-server controller and the benchmark reports.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests (protocol messages) processed.
    pub messages: AtomicU64,
    /// Hash-table operations completed (lookup/insert/delete).
    pub operations: AtomicU64,
    /// Loop iterations that found at least one message.
    pub busy_iterations: AtomicU64,
    /// Loop iterations that found every queue empty ("the rest of the time
    /// is spent polling idle buffers", §6.2).
    pub idle_iterations: AtomicU64,
    /// Whether the server thread managed to pin itself to its assigned
    /// hardware thread.
    pub pinned: AtomicBool,
    /// Whether the server thread has exited its loop.
    pub stopped: AtomicBool,
    /// Keys this server exported during live re-partitioning.
    pub keys_migrated_out: AtomicU64,
    /// Keys this server absorbed during live re-partitioning.
    pub keys_migrated_in: AtomicU64,
    /// Request words drained from this server's lanes in its most recent
    /// loop iteration — a live sample of the inbound queue depth.  The
    /// migration pacer's feedback mode reads this to decide whether the
    /// server is falling behind while chunks are being handed off.
    pub queue_depth: AtomicU64,
    /// Batch-pipeline counters (staged rounds, their occupancy, prefetches
    /// issued) — all zero while the server runs the scalar pipeline.
    pub batch: BatchCounters,
}

impl ServerStats {
    /// New zeroed stats block.
    pub fn new() -> Self {
        ServerStats::default()
    }

    pub(crate) fn record_pin(&self, outcome: PinOutcome) {
        self.pinned.store(outcome.is_pinned(), Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
    }

    /// Fraction of loop iterations that found work, in `[0, 1]` — the
    /// utilization figure §6.2 reports as "server threads spend 59% of the
    /// time processing … the rest is spent polling idle buffers".
    pub fn utilization(&self) -> f64 {
        let busy = self.busy_iterations.load(Ordering::Relaxed) as f64; // relaxed: diagnostic snapshot; tearing across counters is fine
        let idle = self.idle_iterations.load(Ordering::Relaxed) as f64; // relaxed: diagnostic snapshot; tearing across counters is fine
        if busy + idle == 0.0 {
            0.0
        } else {
            busy / (busy + idle)
        }
    }

    /// Messages processed so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Operations completed so far.
    pub fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Whether the server pinned successfully.
    pub fn is_pinned(&self) -> bool {
        self.pinned.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Whether the server has exited.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Most recent inbound queue-depth sample (words drained in one loop
    /// iteration).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
    }

    /// Snapshot of this server's batch-pipeline counters.
    pub fn batch_stats(&self) -> BatchStats {
        self.batch.snapshot()
    }
}

/// A snapshot of the whole table's activity, aggregated over servers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TableSnapshot {
    /// Total protocol messages processed by all servers.
    pub messages: u64,
    /// Total hash-table operations completed by all servers.
    pub operations: u64,
    /// Mean server utilization in `[0, 1]`.
    pub mean_utilization: f64,
    /// Number of server threads that are actually pinned.
    pub pinned_servers: usize,
    /// Number of server threads.
    pub servers: usize,
    /// Merged batch-pipeline counters across the servers.
    pub batch: BatchStats,
}

impl TableSnapshot {
    /// Aggregate a set of per-server stats blocks.
    pub fn aggregate(stats: &[std::sync::Arc<ServerStats>]) -> TableSnapshot {
        let mut snap = TableSnapshot {
            servers: stats.len(),
            ..Default::default()
        };
        let mut util_sum = 0.0;
        for s in stats {
            snap.messages += s.messages();
            snap.operations += s.operations();
            util_sum += s.utilization();
            snap.batch.merge(&s.batch_stats());
            if s.is_pinned() {
                snap.pinned_servers += 1;
            }
        }
        if !stats.is_empty() {
            snap.mean_utilization = util_sum / stats.len() as f64;
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn utilization_math() {
        let s = ServerStats::new();
        assert_eq!(s.utilization(), 0.0);
        s.busy_iterations.store(59, Ordering::Relaxed);
        s.idle_iterations.store(41, Ordering::Relaxed);
        assert!((s.utilization() - 0.59).abs() < 1e-12);
    }

    #[test]
    fn aggregation_sums_and_averages() {
        let a = Arc::new(ServerStats::new());
        let b = Arc::new(ServerStats::new());
        a.messages.store(10, Ordering::Relaxed);
        b.messages.store(30, Ordering::Relaxed);
        a.operations.store(5, Ordering::Relaxed);
        b.operations.store(15, Ordering::Relaxed);
        a.busy_iterations.store(1, Ordering::Relaxed);
        a.idle_iterations.store(1, Ordering::Relaxed);
        b.busy_iterations.store(3, Ordering::Relaxed);
        b.idle_iterations.store(1, Ordering::Relaxed);
        a.pinned.store(true, Ordering::Relaxed);
        let snap = TableSnapshot::aggregate(&[a, b]);
        assert_eq!(snap.messages, 40);
        assert_eq!(snap.operations, 20);
        assert_eq!(snap.servers, 2);
        assert_eq!(snap.pinned_servers, 1);
        assert!((snap.mean_utilization - 0.625).abs() < 1e-12);
    }

    #[test]
    fn record_pin_reflects_outcome() {
        let s = ServerStats::new();
        s.record_pin(PinOutcome::Refused);
        assert!(!s.is_pinned());
        s.record_pin(PinOutcome::Pinned(cphash_affinity::HwThreadId(0)));
        assert!(s.is_pinned());
    }
}
