//! Torture tests for the CPHash client/server protocol: heavily pipelined,
//! multi-client, mixed workloads with deletes and overwrites, checking that
//! every completion is accounted for and that lookup results are always
//! values that were actually written for that key.

use std::collections::HashSet;

use cphash::{CompletionKind, CpHash, CpHashConfig, EvictionPolicy};

/// Deterministic per-thread operation stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn pipelined_mixed_workload_accounts_for_every_submission() {
    let (mut table, clients) = CpHash::new(CpHashConfig::new(3, 3));
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            std::thread::spawn(move || {
                let mut rng = Rng(0x1000 + i as u64);
                let mut submitted = HashSet::new();
                let mut completed = HashSet::new();
                let mut completions = Vec::new();
                for _ in 0..30_000u32 {
                    let r = rng.next();
                    let key = r % 4_096;
                    let token = match r % 10 {
                        0..=3 => client.submit_insert(key, &(key ^ 0xABCD).to_le_bytes()),
                        4..=8 => client.submit_lookup(key),
                        _ => client.submit_delete(key),
                    };
                    assert!(submitted.insert(token), "token reused");
                    if client.outstanding() >= 512 {
                        completions.clear();
                        client.poll(&mut completions);
                        for c in &completions {
                            assert!(completed.insert(c.token), "duplicate completion");
                            if let CompletionKind::LookupHit(v) = &c.kind {
                                let value = u64::from_le_bytes(v.as_slice().try_into().unwrap());
                                let original = value ^ 0xABCD;
                                assert!(
                                    original < 4_096,
                                    "value was never written by any thread: {value:#x}"
                                );
                            }
                        }
                    }
                }
                completions.clear();
                client.drain(&mut completions).unwrap();
                for c in &completions {
                    assert!(completed.insert(c.token), "duplicate completion");
                }
                assert_eq!(
                    submitted, completed,
                    "every submission completes exactly once"
                );
                submitted.len()
            })
        })
        .collect();
    let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, 3 * 30_000);
    table.shutdown();
    let stats = table.partition_stats();
    assert!(stats.lookups > 0 && stats.inserts > 0 && stats.deletes > 0);
}

#[test]
fn overwrites_are_atomic_from_the_readers_point_of_view() {
    // One writer continuously overwrites a small set of keys with
    // self-describing values; several readers must never observe a torn or
    // stale-beyond-overwrite value (each value embeds its key).
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 3));
    let mut writer = clients.pop().unwrap();
    let readers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            std::thread::spawn(move || {
                let mut rng = Rng(0xFACE);
                let mut hits = 0u64;
                for _ in 0..40_000u32 {
                    let key = rng.next() % 64;
                    if let Some(value) = client.get(key).unwrap() {
                        let bytes = value.as_slice();
                        assert_eq!(bytes.len(), 16, "value length is stable");
                        let embedded_key = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                        let generation = u64::from_le_bytes(bytes[8..].try_into().unwrap());
                        assert_eq!(embedded_key, key, "value belongs to a different key");
                        assert!(generation < 1_000_000);
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();

    for generation in 0..30_000u64 {
        let key = generation % 64;
        let mut value = [0u8; 16];
        value[..8].copy_from_slice(&key.to_le_bytes());
        value[8..].copy_from_slice(&generation.to_le_bytes());
        assert!(writer.insert(key, &value).unwrap());
    }
    let total_hits: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(
        total_hits > 0,
        "readers should observe some of the writer's values"
    );
    table.shutdown();
}

#[test]
fn eviction_churn_with_random_policy_and_tiny_partitions() {
    let (mut table, mut clients) = CpHash::new(
        CpHashConfig::new(4, 1)
            .with_capacity(2_048, 8)
            .with_eviction(EvictionPolicy::Random),
    );
    let client = &mut clients[0];
    let mut completions = Vec::new();
    for key in 0..50_000u64 {
        client.submit_insert(key, &key.to_le_bytes());
        client.submit_lookup(key.saturating_sub(100));
        // Bound the outstanding window *blockingly*: an unacknowledged burst
        // larger than the (tiny) table pins every slot in NOT-READY state —
        // on a single-CPU host the client can queue tens of thousands of
        // inserts before the servers ever run, and the churn turns into
        // mass insert failure instead of mass eviction.
        while client.outstanding() >= 128 {
            completions.clear();
            if client.poll(&mut completions) == 0 {
                std::thread::yield_now();
            }
        }
    }
    completions.clear();
    client.drain(&mut completions).unwrap();
    drop(clients);
    table.shutdown();
    let stats = table.partition_stats();
    assert!(
        stats.evictions > 40_000,
        "tiny capacity must force constant eviction"
    );
    // Under this extreme configuration (64 slots per partition, hundreds of
    // outstanding lookups pinning elements) some inserts may legitimately
    // fail with OutOfMemory while everything evictable is pinned; what must
    // hold is that they are the exception, not the rule.
    assert!(
        stats.failed_inserts < stats.inserts / 10,
        "failed inserts {} out of {}",
        stats.failed_inserts,
        stats.inserts
    );
}

#[test]
fn tables_with_one_partition_and_many_clients_still_serialize_correctly() {
    // Degenerate shape: a single server thread serving four pipelined
    // clients — every operation funnels through one partition.
    let (mut table, clients) = CpHash::new(CpHashConfig::new(1, 4));
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            std::thread::spawn(move || {
                let base = i as u64 * 100_000;
                for key in base..base + 3_000 {
                    assert!(client.insert(key, &key.to_le_bytes()).unwrap());
                }
                for key in base..base + 3_000 {
                    assert_eq!(
                        client
                            .get(key)
                            .unwrap()
                            .expect("own key present")
                            .as_slice(),
                        key.to_le_bytes()
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snapshot = table.snapshot();
    assert_eq!(snapshot.servers, 1);
    assert!(snapshot.operations >= 4 * 6_000);
    table.shutdown();
}
