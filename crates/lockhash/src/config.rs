//! LockHash configuration.

use cphash_hashcore::{BucketLayout, EvictionPolicy};
use cphash_sync::LockKind;

/// Configuration for a [`crate::LockHash`] table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockHashConfig {
    /// Number of partitions, each with its own lock and LRU list.  The paper
    /// uses 4,096, "which we experimentally determined to be optimal".
    pub partitions: usize,
    /// Total byte budget across all partitions (`None` = unbounded).
    pub capacity_bytes: Option<usize>,
    /// Buckets per partition.
    pub buckets_per_partition: usize,
    /// Eviction policy.  Under [`EvictionPolicy::Random`] no LRU lists are
    /// maintained, mirroring §6.3 (the paper additionally switches to
    /// per-bucket locks in that mode; configure more, smaller partitions to
    /// model that granularity).
    pub eviction: EvictionPolicy,
    /// Lock algorithm protecting each partition (spinlock in the paper;
    /// ticket / Anderson for the lock ablation).
    pub lock_kind: LockKind,
    /// Seed for partition-local randomness.
    pub seed: u64,
    /// Bucket memory layout (tagged inline lines by default; overridable
    /// per process with `CPHASH_BUCKET_LAYOUT`).
    pub bucket_layout: BucketLayout,
}

impl Default for LockHashConfig {
    fn default() -> Self {
        LockHashConfig {
            partitions: 4096,
            capacity_bytes: None,
            buckets_per_partition: 64,
            eviction: EvictionPolicy::Lru,
            lock_kind: LockKind::Spin,
            seed: 0xBA5E_BA11,
            bucket_layout: BucketLayout::from_env(),
        }
    }
}

impl LockHashConfig {
    /// A config with the given number of partitions, unbounded capacity.
    pub fn new(partitions: usize) -> Self {
        LockHashConfig {
            partitions,
            ..Default::default()
        }
    }

    /// Set the total capacity and derive a bucket count targeting ~1 element
    /// per bucket for values of `typical_value_bytes`.
    pub fn with_capacity(mut self, capacity_bytes: usize, typical_value_bytes: usize) -> Self {
        self.capacity_bytes = Some(capacity_bytes);
        let elements = capacity_bytes / typical_value_bytes.max(1);
        self.buckets_per_partition = (elements / self.partitions.max(1))
            .next_power_of_two()
            .max(8);
        self
    }

    /// Set the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Set the lock algorithm.
    pub fn with_lock_kind(mut self, lock_kind: LockKind) -> Self {
        self.lock_kind = lock_kind;
        self
    }

    /// Select the bucket layout (tagged inline lines / bare chain heads).
    pub fn with_bucket_layout(mut self, layout: BucketLayout) -> Self {
        self.bucket_layout = layout;
        self
    }

    /// Per-partition byte budget.
    pub fn partition_capacity(&self) -> Option<usize> {
        self.capacity_bytes
            .map(|total| (total / self.partitions.max(1)).max(64))
    }

    /// Validate, panicking on nonsense.
    pub fn validate(&self) {
        assert!(self.partitions > 0, "LockHash needs at least one partition");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = LockHashConfig::default();
        assert_eq!(c.partitions, 4096);
        assert_eq!(c.lock_kind, LockKind::Spin);
        assert_eq!(c.eviction, EvictionPolicy::Lru);
        c.validate();
    }

    #[test]
    fn capacity_and_bucket_derivation() {
        let c = LockHashConfig::new(16).with_capacity(1 << 20, 8);
        assert_eq!(c.partition_capacity(), Some(65_536));
        assert_eq!(c.buckets_per_partition, 8192);
    }

    #[test]
    fn builders_compose() {
        let c = LockHashConfig::new(8)
            .with_eviction(EvictionPolicy::Random)
            .with_lock_kind(LockKind::Anderson);
        assert_eq!(c.eviction, EvictionPolicy::Random);
        assert_eq!(c.lock_kind, LockKind::Anderson);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        LockHashConfig::new(0).validate();
    }
}
