//! LOCKHASH — the fine-grained-locking baseline from the CPHash paper.
//!
//! "To evaluate the performance and scalability of CPHASH, we created
//! LOCKSERVER, which does not use message passing. It supports the same
//! protocol, but uses a shared-memory style hash table, which we name
//! LOCKHASH, with fine-grained locks. To make the comparison fair, LOCKHASH
//! also has n LRU lists instead of 1 global one, by dividing the hash table
//! into n partitions. Each partition is protected by a lock" (§4.2), and
//! "LOCKHASH uses 160 hardware threads that perform hash-table operations on
//! a 4,096-way partitioned hash table to avoid lock contention" (§1).
//!
//! Exactly as in the paper (§5), LOCKHASH reuses the same partition code as
//! CPHash ([`cphash_hashcore::Partition`]); the only difference is that
//! callers acquire a per-partition spinlock and run the operation on their
//! own thread instead of shipping it to a server thread.  That makes the
//! CPHash-vs-LockHash comparison a comparison of *communication strategy*,
//! not of hash-table engineering.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod table;

pub use config::LockHashConfig;
pub use table::LockHash;

pub use cphash_hashcore::{BucketLayout, EvictionPolicy, PartitionStats};
pub use cphash_sync::LockKind;
