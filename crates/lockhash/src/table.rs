//! The LockHash table: an array of spinlock-protected partitions.

use core::cell::UnsafeCell;

use cphash_hashcore::{partition_for_key, Partition, PartitionConfig, PartitionStats, MAX_KEY};
use cphash_sync::{LockStats, LockTable};

use crate::config::LockHashConfig;

/// A thread-safe, fixed-capacity hash table built from `n` independently
/// locked partitions (see the crate docs).
///
/// All methods take `&self`; each operation acquires exactly one partition
/// lock, performs the operation with the same partition code CPHash uses,
/// updates that partition's LRU list, and releases the lock — the sequence
/// §4.2 describes for LOCKSERVER's client threads.
pub struct LockHash {
    locks: LockTable,
    partitions: Vec<UnsafeCell<Partition>>,
    config: LockHashConfig,
}

// SAFETY: every access to a partition goes through `with_partition`, which
// holds that partition's lock in the `LockTable` for the duration of the
// access, so no two threads ever touch the same `Partition` concurrently.
unsafe impl Sync for LockHash {}
unsafe impl Send for LockHash {}

impl LockHash {
    /// Build a table from a configuration.
    pub fn new(config: LockHashConfig) -> Self {
        config.validate();
        let locks = LockTable::new(config.partitions, config.lock_kind);
        let partitions = (0..config.partitions)
            .map(|i| {
                UnsafeCell::new(Partition::new(PartitionConfig {
                    buckets: config.buckets_per_partition,
                    capacity_bytes: config.partition_capacity(),
                    eviction: config.eviction,
                    seed: config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                    // LockHash never migrates; a single chunk keeps the
                    // membership index to one list with no per-key cost.
                    migration_chunks: 1,
                    // Defaults to the CPHASH_BUCKET_LAYOUT environment
                    // escape hatch so A/B comparisons hold the layout fixed.
                    layout: config.bucket_layout,
                }))
            })
            .collect();
        LockHash {
            locks,
            partitions,
            config,
        }
    }

    /// Build with the paper's defaults (4,096 partitions, spinlocks, LRU).
    pub fn with_partitions(partitions: usize) -> Self {
        Self::new(LockHashConfig::new(partitions))
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> &LockHashConfig {
        &self.config
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Run `f` on the partition owning `key`, holding its lock.
    #[inline]
    fn with_partition<R>(&self, key: u64, f: impl FnOnce(&mut Partition) -> R) -> R {
        let index = partition_for_key(key, self.partitions.len());
        let _guard = self.locks.lock(index);
        // SAFETY: the guard gives us exclusive access to partition `index`
        // (see the Sync impl comment).
        let partition = unsafe { &mut *self.partitions[index].get() };
        f(partition)
    }

    /// Look up `key`, copying its value into `out`.  Returns `true` on a
    /// hit.  The copy happens while holding the partition lock, so the
    /// reference-count round trip stays inside one critical section.
    pub fn lookup(&self, key: u64, out: &mut Vec<u8>) -> bool {
        let key = key & MAX_KEY;
        self.with_partition(key, |p| p.lookup_copy(key, out))
    }

    /// Look up `key`, returning the value as a fresh vector.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.lookup(key, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Insert `value` under `key`.  Returns `false` if the partition could
    /// not make room.
    pub fn insert(&self, key: u64, value: &[u8]) -> bool {
        let key = key & MAX_KEY;
        self.with_partition(key, |p| p.insert_copy(key, value).is_ok())
    }

    /// Remove `key`. Returns whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        let key = key & MAX_KEY;
        self.with_partition(key, |p| p.delete(key))
    }

    /// Does the table currently hold `key`?
    pub fn contains(&self, key: u64) -> bool {
        let key = key & MAX_KEY;
        self.with_partition(key, |p| p.contains(key))
    }

    /// Total number of elements across all partitions.
    ///
    /// Takes every partition lock in turn, so the result is only a snapshot
    /// under concurrent mutation.
    pub fn len(&self) -> usize {
        self.fold_partitions(0usize, |acc, p| acc + p.len())
    }

    /// Returns `true` when no partition holds any element.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of value storage in use across all partitions.
    pub fn bytes_in_use(&self) -> usize {
        self.fold_partitions(0usize, |acc, p| acc + p.bytes_in_use())
    }

    /// Aggregate partition statistics across the table.
    pub fn stats(&self) -> PartitionStats {
        self.fold_partitions(PartitionStats::default(), |mut acc, p| {
            acc.merge(&p.stats());
            acc
        })
    }

    /// Lock-acquisition statistics (contention ratio etc.).
    pub fn lock_stats(&self) -> &LockStats {
        self.locks.stats()
    }

    fn fold_partitions<A>(&self, init: A, mut f: impl FnMut(A, &Partition) -> A) -> A {
        let mut acc = init;
        for index in 0..self.partitions.len() {
            let _guard = self.locks.lock(index);
            // SAFETY: as in `with_partition`.
            let partition = unsafe { &*self.partitions[index].get() };
            acc = f(acc, partition);
        }
        acc
    }
}

impl core::fmt::Debug for LockHash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LockHash")
            .field("partitions", &self.partitions.len())
            .field("lock_kind", &self.config.lock_kind)
            .field("eviction", &self.config.eviction)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_hashcore::EvictionPolicy;
    use cphash_sync::LockKind;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn single_threaded_basic_operations() {
        let table = LockHash::with_partitions(8);
        assert!(table.insert(1, b"one"));
        assert!(table.insert(2, b"two"));
        assert_eq!(table.get(1).as_deref(), Some(&b"one"[..]));
        assert_eq!(table.get(2).as_deref(), Some(&b"two"[..]));
        assert_eq!(table.get(3), None);
        assert!(table.contains(1));
        assert!(table.delete(1));
        assert!(!table.delete(1));
        assert!(!table.contains(1));
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        assert!(table.bytes_in_use() > 0);
    }

    #[test]
    fn matches_a_reference_hashmap_single_threaded() {
        let table = LockHash::with_partitions(16);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        // Deterministic pseudo-random operation mix.
        let mut state = 0x1357_9BDFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let r = next();
            let key = r % 512;
            match r % 10 {
                0..=4 => {
                    let value = (r % 1000).to_le_bytes().to_vec();
                    assert!(table.insert(key, &value));
                    reference.insert(key, value);
                }
                5..=8 => {
                    assert_eq!(table.get(key), reference.get(&key).cloned(), "key {key}");
                }
                _ => {
                    assert_eq!(table.delete(key), reference.remove(&key).is_some());
                }
            }
        }
        assert_eq!(table.len(), reference.len());
    }

    #[test]
    fn concurrent_disjoint_keys_are_all_preserved() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        let table = Arc::new(LockHash::with_partitions(64));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    let base = t * 1_000_000;
                    for k in base..base + PER_THREAD {
                        assert!(table.insert(k, &k.to_le_bytes()));
                    }
                    for k in base..base + PER_THREAD {
                        assert_eq!(table.get(k).unwrap(), k.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.len() as u64, THREADS * PER_THREAD);
        assert!(table.lock_stats().acquisitions() > 0);
    }

    #[test]
    fn concurrent_same_keys_never_corrupt_values() {
        // All threads fight over the same small key range with full-value
        // writes; every read must observe one of the values some thread
        // wrote for that key (8 bytes, equal to the key or its negation).
        const THREADS: u64 = 8;
        let table = Arc::new(LockHash::with_partitions(4));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let key = i % 16;
                        if t % 2 == 0 {
                            table.insert(key, &key.to_le_bytes());
                        } else {
                            table.insert(key, &(!key).to_le_bytes());
                        }
                        if let Some(v) = table.get(key) {
                            let got = u64::from_le_bytes(v.try_into().unwrap());
                            assert!(
                                got == key || got == !key,
                                "torn value for key {key}: {got:#x}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn capacity_is_enforced_across_partitions() {
        let table = LockHash::new(LockHashConfig::new(4).with_capacity(4096, 8));
        for key in 0..10_000u64 {
            table.insert(key, &key.to_le_bytes());
        }
        assert!(table.bytes_in_use() <= 4096);
        assert!(table.stats().evictions > 0);
        assert!(table.len() <= 512);
    }

    #[test]
    fn random_eviction_and_alternative_locks_work() {
        for kind in [LockKind::Spin, LockKind::Ticket, LockKind::Anderson] {
            let table = LockHash::new(
                LockHashConfig::new(8)
                    .with_capacity(1024, 8)
                    .with_eviction(EvictionPolicy::Random)
                    .with_lock_kind(kind),
            );
            for key in 0..1_000u64 {
                table.insert(key, &key.to_le_bytes());
            }
            assert!(table.len() <= 128, "lock kind {kind:?}");
            assert!(table.stats().evictions > 0);
        }
    }

    #[test]
    fn lock_contention_is_visible_in_stats() {
        let table = Arc::new(LockHash::with_partitions(1)); // force contention
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    for k in 0..5_000u64 {
                        table.insert(k % 100, &k.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = table.lock_stats();
        assert_eq!(stats.acquisitions(), 4 * 5_000);
        // With a single partition and four writers some contention is
        // essentially guaranteed.
        assert!(stats.contended() > 0);
    }
}
