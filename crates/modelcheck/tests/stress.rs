//! Real-thread ordering-stress tests mirroring each model-check suite.
//!
//! The model checker (`src/suites.rs`) proves the protocols correct over
//! every interleaving of a *small* closed scenario under the simulated
//! memory model.  These tests run the same protocols big and hot on actual
//! OS threads — 4+ threads, tens of thousands of operations, randomized
//! yields to perturb the schedule — so the invariants are also exercised
//! under whatever weak-memory reordering the host hardware really does.
//!
//! They compile only in the normal (non-model) configuration: under
//! `--cfg cphash_model` the atomics facade is the single-threaded model
//! runtime and real `std::thread` concurrency would be meaningless.

#![cfg(not(cphash_model))]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use cphash::EpochRouter;
use cphash_alloc::{class_for_size, SlabAllocator};
use cphash_channel::{ring, RingConfig, SingleSlotChannel};
use cphash_sync::{ArrayLock, ModelUnsafeCell, RawLock, RawSpinLock, TicketLock};

/// A tiny xorshift PRNG so each thread can perturb its own schedule
/// deterministically (no external crates, no global state).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Yield the OS scheduler slot roughly once per 13 calls.  Frequent
    /// yields matter on small machines: with one hardware thread a spin
    /// loop burns its whole quantum before the peer can run at all.
    fn maybe_yield(&mut self) {
        if self.next().is_multiple_of(13) {
            thread::yield_now();
        }
    }
}

/// Mirror of `check_ring_transfer`: two independent producer/consumer
/// pairs (4 threads) stream tens of thousands of messages through small
/// rings, forcing constant wrap-around.  Every message must arrive exactly
/// once, in order.
#[test]
fn ring_transfer_stress() {
    const PER_PAIR: u64 = 20_000;
    let mut joins = Vec::new();
    for pair in 0..2u64 {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(8));
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0x9E37_79B9 + pair);
            let msgs: Vec<u64> = (0..PER_PAIR).collect();
            let mut sent = 0usize;
            while sent < msgs.len() {
                let n = tx.push_batch(&msgs[sent..(sent + 16).min(msgs.len())]);
                sent += n;
                if n == 0 {
                    cphash_sync::spin_hint();
                }
                rng.maybe_yield();
            }
        }));
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0xDEAD_BEEF + pair);
            let mut expected = 0u64;
            let mut out = Vec::new();
            while expected < PER_PAIR {
                out.clear();
                if rx.pop_batch(&mut out, 32) == 0 {
                    cphash_sync::spin_hint();
                }
                for &v in &out {
                    assert_eq!(v, expected, "ring lost, duplicated or reordered a slot");
                    expected += 1;
                }
                rng.maybe_yield();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

/// Mirror of `check_single_slot_rpc`: two client/server pairs (4 threads)
/// run thousands of round trips through the EMPTY→REQUEST→RESPONSE state
/// machine; every response must match its request.
#[test]
fn single_slot_rpc_stress() {
    const CALLS: u64 = 10_000;
    let mut joins = Vec::new();
    for pair in 0..2u64 {
        let ch = SingleSlotChannel::<u64, u64>::new();
        let server = ch.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_server = Arc::clone(&stop);
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0x5151_5151 + pair);
            while !stop_server.load(Ordering::Relaxed) {
                if !server.try_serve(|x| x.wrapping_mul(3) + 1) {
                    // An idle spin must hand the core over, not burn its
                    // quantum: on a one-core box the client cannot run
                    // (and produce a request) until we are descheduled.
                    thread::yield_now();
                }
                rng.maybe_yield();
            }
        }));
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0xC0FF_EE00 + pair);
            for i in 0..CALLS {
                while !ch.try_send_request(i) {
                    thread::yield_now();
                }
                let resp = loop {
                    if let Some(resp) = ch.try_take_response() {
                        break resp;
                    }
                    thread::yield_now();
                };
                assert_eq!(resp, i.wrapping_mul(3) + 1, "RPC answered wrong call");
                rng.maybe_yield();
            }
            stop.store(true, Ordering::Relaxed);
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

/// Mirror of `check_router_watermark_monotonic`: one coordinator cycles
/// the router through repeated full transitions while three observers
/// snapshot continuously.  Within one epoch the watermark never moves
/// backwards, counts stay in range, and a complete snapshot is never
/// still in transition.
#[test]
fn router_watermark_stress() {
    const CHUNKS: usize = 8;
    let router = Arc::new(EpochRouter::new(1, CHUNKS, 16));
    let done = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();
    for observer in 0..3u64 {
        let router = Arc::clone(&router);
        let done = Arc::clone(&done);
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0xABCD_EF01 + observer);
            let mut prev = router.snapshot();
            while !done.load(Ordering::Relaxed) {
                let snap = router.snapshot();
                assert!(snap.old_partitions >= 1 && snap.new_partitions <= 16);
                assert!(snap.watermark <= CHUNKS);
                if snap.watermark == CHUNKS {
                    assert!(!snap.in_transition(), "complete snapshot still split");
                }
                if snap.epoch == prev.epoch {
                    assert!(
                        snap.watermark >= prev.watermark,
                        "watermark moved backwards within an epoch"
                    );
                }
                prev = snap;
                rng.maybe_yield();
            }
        }));
    }
    let mut rng = XorShift::new(0x1234_5678);
    for round in 0..50usize {
        let target = [2usize, 4, 8, 16, 1][round % 5];
        router.begin_transition(target).unwrap();
        for w in 1..=CHUNKS {
            router.advance_watermark(w);
            rng.maybe_yield();
        }
        let snap = router.snapshot();
        assert_eq!(snap.new_partitions, target);
        assert!(!snap.in_transition());
    }
    done.store(true, Ordering::Relaxed);
    for j in joins {
        j.join().unwrap();
    }
}

/// Mirror of `check_slab_remote_freelist`: three pusher threads return
/// blocks to the owner's Treiber stack while the owner drains
/// concurrently.  Every block must come back exactly once and re-allocate
/// without any address being handed out twice.
#[test]
fn slab_remote_freelist_stress() {
    const BLOCKS: usize = 300;
    let mut alloc = SlabAllocator::unbounded();
    let mut handles: Vec<_> = (0..BLOCKS).map(|_| alloc.allocate(64).unwrap()).collect();
    let addrs: HashSet<_> = handles.iter().map(|h| h.addr()).collect();
    assert_eq!(addrs.len(), BLOCKS, "allocator handed an address out twice");

    let mut joins = Vec::new();
    for pusher in 0..3u64 {
        let list = Arc::clone(alloc.remote_list());
        let mine: Vec<_> = handles.split_off(handles.len() - BLOCKS / 3);
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0xFEED_FACE + pusher);
            for h in mine {
                list.push(h).unwrap();
                rng.maybe_yield();
            }
        }));
    }
    assert!(handles.is_empty(), "block count must divide evenly");

    let class = class_for_size(64);
    let mut reclaimed = 0usize;
    let mut rng = XorShift::new(0x0BAD_CAFE);
    while reclaimed < BLOCKS {
        reclaimed += alloc.reclaim_remote_class(class);
        rng.maybe_yield();
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(reclaimed, BLOCKS, "a pushed block vanished or doubled");
    assert_eq!(alloc.stats().outstanding(), 0);

    let again: Vec<_> = (0..BLOCKS).map(|_| alloc.allocate(64).unwrap()).collect();
    let again_addrs: HashSet<_> = again.iter().map(|h| h.addr()).collect();
    assert_eq!(
        again_addrs.len(),
        BLOCKS,
        "double-alloc of a reclaimed block"
    );
    assert_eq!(again_addrs, addrs, "reclaim fabricated or leaked a block");
    for h in again {
        alloc.free(h);
    }
}

/// Mirror of `check_mutual_exclusion`: four threads hammer one counter
/// under the lock; the total must be exact.
fn lock_mutex_stress<L: RawLock + Send + Sync + 'static>(lock: L) {
    const THREADS: u64 = 4;
    const INCREMENTS: u64 = 10_000;
    let shared = Arc::new((lock, ModelUnsafeCell::new(0u64)));
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let shared = Arc::clone(&shared);
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0xA5A5_0000 + t);
            for _ in 0..INCREMENTS {
                shared.0.raw_lock();
                shared.1.with_mut(|p| {
                    // SAFETY: exclusive by mutual exclusion of the lock —
                    // exactly the property under test; the model-check
                    // suite proves it for the small bound, this hammers it.
                    unsafe { *p += 1 }
                });
                shared.0.raw_unlock();
                rng.maybe_yield();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let total = shared.1.with(|p| {
        // SAFETY: all writers joined; no concurrent access remains.
        unsafe { *p }
    });
    assert_eq!(
        total,
        THREADS * INCREMENTS,
        "lost increment — mutual exclusion broken"
    );
}

#[test]
fn spinlock_mutex_stress() {
    lock_mutex_stress(RawSpinLock::default());
}

#[test]
fn ticket_mutex_stress() {
    lock_mutex_stress(TicketLock::default());
}

#[test]
fn anderson_mutex_stress() {
    lock_mutex_stress(ArrayLock::with_slots(8));
}

/// Mirror of `check_ticket_fifo`: while the main thread holds the lock,
/// four waiters enqueue in a known order (each spawn gated on the queue
/// depth observing the previous one).  After the release they must
/// acquire in exactly that order.
#[test]
fn ticket_fifo_stress() {
    let shared = Arc::new((TicketLock::default(), ModelUnsafeCell::new(Vec::new())));
    shared.0.raw_lock();
    let mut joins = Vec::new();
    for id in 1..=4u32 {
        let shared_w = Arc::clone(&shared);
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0x7777_0000 + u64::from(id));
            rng.maybe_yield();
            shared_w.0.raw_lock();
            shared_w.1.with_mut(|p| {
                // SAFETY: guarded by the lock just acquired.
                unsafe { (*p).push(id) }
            });
            shared_w.0.raw_unlock();
        }));
        // The holder's ticket plus one per waiter spawned so far.
        while shared.0.queue_depth() < 1 + id {
            cphash_sync::spin_hint();
        }
    }
    shared.0.raw_unlock();
    for j in joins {
        j.join().unwrap();
    }
    let order = shared.1.with(|p| {
        // SAFETY: all writers joined; read-only now.
        unsafe { (*p).clone() }
    });
    assert_eq!(
        order,
        vec![1, 2, 3, 4],
        "ticket lock let a newer ticket overtake"
    );
}

/// Mirror of `check_anderson_fifo`, same gated-enqueue shape with the
/// array lock's `tickets_taken` as the observation point.
#[test]
fn anderson_fifo_stress() {
    let shared = Arc::new((ArrayLock::with_slots(8), ModelUnsafeCell::new(Vec::new())));
    shared.0.raw_lock();
    let mut joins = Vec::new();
    for id in 1..=4u32 {
        let shared_w = Arc::clone(&shared);
        joins.push(thread::spawn(move || {
            let mut rng = XorShift::new(0x8888_0000 + u64::from(id));
            rng.maybe_yield();
            shared_w.0.raw_lock();
            shared_w.1.with_mut(|p| {
                // SAFETY: guarded by the lock just acquired.
                unsafe { (*p).push(id) }
            });
            shared_w.0.raw_unlock();
        }));
        while shared.0.tickets_taken() < 1 + id as usize {
            cphash_sync::spin_hint();
        }
    }
    shared.0.raw_unlock();
    for j in joins {
        j.join().unwrap();
    }
    let order = shared.1.with(|p| {
        // SAFETY: all writers joined; read-only now.
        unsafe { (*p).clone() }
    });
    assert_eq!(
        order,
        vec![1, 2, 3, 4],
        "array lock let a later waiter overtake"
    );
}
