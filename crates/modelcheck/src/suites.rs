//! The model-check suites for the repo's concurrency cores.
//!
//! Each function builds one small, closed concurrent scenario over the real
//! shipped types (`cphash-channel` rings and single-slot channels, the
//! `cphash-core` epoch router, the `cphash-alloc` remote free list, the
//! `cphash-sync` lock family) and hands it to the vendored loom-style
//! explorer, which enumerates every interleaving of the tracked atomic
//! operations at these bounds.  The returned [`Report`] carries the
//! execution count and, on failure, a [`loom::Violation`] with the exact
//! schedule — feed it to [`loom::Builder::replay`] to re-run that one
//! interleaving under a debugger.
//!
//! Everything here compiles only under `RUSTFLAGS="--cfg cphash_model"`,
//! which swaps the `cphash_sync::atomic` facade from std atomics to the
//! tracked model types.  Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg cphash_model" cargo test -p cphash-modelcheck
//! ```

use std::sync::Arc;

use cphash::EpochRouter;
use cphash_alloc::{class_for_size, SlabAllocator};
use cphash_channel::{ring, RingConfig, SingleSlotChannel};
use cphash_sync::{ArrayLock, ModelUnsafeCell, RawLock, RawSpinLock, TicketLock};
use loom::{Builder, Report};

/// A builder with suite-appropriate bounds: exhaustive, but with a branch
/// guard high enough that none of the scenarios below ever trips it.
fn builder() -> Builder {
    Builder::new()
}

/// SPSC ring: three messages through a two-slot ring (forced wrap-around),
/// producer publishing with `push_batch`/`flush`, consumer draining with
/// `pop_batch`.  Asserts no message is lost, duplicated, or reordered on
/// any interleaving.
pub fn check_ring_transfer() -> Report {
    builder().explore(|| {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(2));
        let handle = loom::thread::spawn(move || {
            let msgs = [1u64, 2, 3];
            let mut sent = 0;
            while sent < msgs.len() {
                let n = tx.push_batch(&msgs[sent..]);
                sent += n;
                if n == 0 {
                    cphash_sync::spin_hint();
                }
            }
        });
        let mut got: Vec<u64> = Vec::new();
        let mut out: Vec<u64> = Vec::new();
        while got.len() < 3 {
            out.clear();
            if rx.pop_batch(&mut out, 4) == 0 {
                cphash_sync::spin_hint();
            }
            got.extend_from_slice(&out);
        }
        assert_eq!(got, [1, 2, 3], "ring lost, duplicated or reordered");
        handle.join().unwrap();
    })
}

/// The seeded-bug regression, broken half: publish the write index with
/// `Relaxed` (`flush_weak_for_modelcheck`) instead of `Release`.  The
/// checker must catch the consumer's unsynchronized slot read as a data
/// race on the schedule where the store lands before the load.
pub fn check_ring_seeded_bug() -> Report {
    builder().explore(seeded_bug_scenario)
}

/// Replay one exact schedule of the seeded-bug scenario (as printed in the
/// violation from [`check_ring_seeded_bug`]).  Returns the reproduced
/// violation — the race must re-fire deterministically on its schedule.
pub fn replay_ring_seeded_bug(schedule: &[usize]) -> Option<loom::Violation> {
    builder().replay(schedule, seeded_bug_scenario)
}

fn seeded_bug_scenario() {
    // A high flush threshold keeps push_batch/try_push from publishing
    // on their own; the weak flush below is the only publication.
    let cfg = RingConfig {
        capacity: 4,
        flush_threshold: Some(64),
    };
    let (mut tx, mut rx) = ring::<u64>(cfg);
    let handle = loom::thread::spawn(move || {
        tx.try_push(7).unwrap();
        tx.flush_weak_for_modelcheck();
    });
    if let Some(v) = rx.try_pop() {
        assert_eq!(v, 7);
    }
    handle.join().unwrap();
}

/// The seeded-bug regression, shipped half: the identical protocol with the
/// real `flush()` (Release publish) is clean.  The state space is exactly
/// countable at these bounds: the producer thread performs two tracked
/// stores (the `flush` publish and the drop-time `producer_alive` flag) and
/// the consumer one tracked load, so the load lands in one of exactly three
/// positions — three executions, all explored.
pub fn check_ring_shipped_flush() -> Report {
    builder().explore(|| {
        let cfg = RingConfig {
            capacity: 4,
            flush_threshold: Some(64),
        };
        let (mut tx, mut rx) = ring::<u64>(cfg);
        let handle = loom::thread::spawn(move || {
            tx.try_push(7).unwrap();
            tx.flush();
        });
        if let Some(v) = rx.try_pop() {
            assert_eq!(v, 7);
        }
        handle.join().unwrap();
    })
}

/// Single-slot channel: one full RPC round trip, client calling from a
/// model thread, server polling `try_serve`.  Asserts the response matches
/// on every interleaving (the EMPTY→REQUEST→RESPONSE→EMPTY state machine
/// hands the two slots back and forth race-free).
pub fn check_single_slot_rpc() -> Report {
    builder().explore(|| {
        let ch = SingleSlotChannel::<u64, u64>::new();
        let client = ch.clone();
        let handle = loom::thread::spawn(move || {
            assert_eq!(client.call(5), 6);
        });
        let mut served = false;
        while !served {
            served = ch.try_serve(|x| x + 1);
            if !served {
                cphash_sync::spin_hint();
            }
        }
        handle.join().unwrap();
    })
}

/// Epoch router: a coordinator runs a full 2-chunk transition while an
/// observer snapshots concurrently.  Asserts that within one epoch the
/// watermark never moves backwards, counts stay in range, and a completed
/// snapshot (`watermark == chunks`) is never in transition.
pub fn check_router_watermark_monotonic() -> Report {
    builder().explore(|| {
        let router = Arc::new(EpochRouter::new(1, 2, 2));
        let r2 = Arc::clone(&router);
        let coordinator = loom::thread::spawn(move || {
            r2.begin_transition(2).unwrap();
            r2.advance_watermark(1);
            r2.advance_watermark(2);
        });
        let mut prev = router.snapshot();
        for _ in 0..2 {
            let snap = router.snapshot();
            assert!(snap.old_partitions >= 1 && snap.new_partitions <= 2);
            assert!(snap.watermark <= 2);
            if snap.watermark == 2 {
                assert!(!snap.in_transition(), "complete snapshot still split");
            }
            if snap.epoch == prev.epoch {
                assert!(
                    snap.watermark >= prev.watermark,
                    "watermark moved backwards within an epoch"
                );
            }
            prev = snap;
        }
        coordinator.join().unwrap();
        let done = router.snapshot();
        assert_eq!(done.new_partitions, 2);
        assert!(!done.in_transition());
    })
}

/// Remote free list: two model threads push blocks of the same class onto
/// the owner's Treiber stack while the owner drains concurrently with
/// `reclaim_remote`.  Asserts every pushed block is reclaimed exactly once
/// and the next allocations reuse them without double-handing any address.
pub fn check_slab_remote_freelist() -> Report {
    builder().explore(|| {
        let mut alloc = SlabAllocator::unbounded();
        let h1 = alloc.allocate(64).unwrap();
        let h2 = alloc.allocate(64).unwrap();
        let pushed = [h1.addr(), h2.addr()];
        let (r1, r2) = (
            Arc::clone(alloc.remote_list()),
            Arc::clone(alloc.remote_list()),
        );
        let t1 = loom::thread::spawn(move || r1.push(h1).unwrap());
        let t2 = loom::thread::spawn(move || r2.push(h2).unwrap());
        // Drain concurrently with the pushes: the pop-all swap interleaves
        // with the push CAS loops on every possible schedule.  Target the
        // one class in play — the full-sweep `reclaim_remote` would add
        // NUM_CLASSES tracked swaps per spin and explode the state space.
        let class = class_for_size(64);
        let mut reclaimed = 0usize;
        while reclaimed < 2 {
            reclaimed += alloc.reclaim_remote_class(class);
            if reclaimed < 2 {
                cphash_sync::spin_hint();
            }
        }
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(reclaimed, 2, "a pushed block vanished or doubled");
        assert_eq!(alloc.stats().remote_reclaims, 2);
        assert_eq!(alloc.stats().outstanding(), 0);
        // The reclaimed blocks are back on the local free list (LIFO top):
        // re-allocating must hand out both addresses, each exactly once.
        let a1 = alloc.allocate(64).unwrap();
        let a2 = alloc.allocate(64).unwrap();
        assert_ne!(a1.addr(), a2.addr(), "double-alloc of a reclaimed block");
        assert!(pushed.contains(&a1.addr()) && pushed.contains(&a2.addr()));
        assert!(!alloc.remote_list().has_pending(class));
        alloc.free(a1);
        alloc.free(a2);
    })
}

/// Mutual exclusion for any [`RawLock`]: two threads increment a shared
/// cell under the lock; the model's race detector proves the critical
/// sections never overlap and the final count is exact.
pub fn check_mutual_exclusion<L: RawLock + 'static>() -> Report {
    builder().explore(|| {
        let shared = Arc::new((L::default(), ModelUnsafeCell::new(0u64)));
        let s2 = Arc::clone(&shared);
        let handle = loom::thread::spawn(move || {
            s2.0.raw_lock();
            s2.1.with_mut(|p| {
                // SAFETY: model-checked — the lock must make this access
                // exclusive on every explored schedule.
                unsafe { *p += 1 }
            });
            s2.0.raw_unlock();
        });
        shared.0.raw_lock();
        shared.1.with_mut(|p| {
            // SAFETY: as above.
            unsafe { *p += 1 }
        });
        shared.0.raw_unlock();
        handle.join().unwrap();
        shared.0.raw_lock();
        let total = shared.1.with(|p| {
            // SAFETY: read under the lock after both writers finished.
            unsafe { *p }
        });
        shared.0.raw_unlock();
        assert_eq!(total, 2, "lost increment — mutual exclusion broken");
    })
}

/// Mutual exclusion for the TTAS spinlock.
pub fn check_spinlock_mutex() -> Report {
    check_mutual_exclusion::<RawSpinLock>()
}

/// Mutual exclusion for the ticket lock.
pub fn check_ticket_mutex() -> Report {
    check_mutual_exclusion::<TicketLock>()
}

/// Mutual exclusion for Anderson's array lock.
pub fn check_anderson_mutex() -> Report {
    check_mutual_exclusion::<ArrayLock>()
}

/// FIFO hand-off for the ticket lock: while the main thread holds the
/// lock, a waiter enqueues (observed via `queue_depth`); after the release
/// the waiter must acquire before the main thread can re-acquire, on every
/// interleaving.
pub fn check_ticket_fifo() -> Report {
    builder().explore(|| {
        let shared = Arc::new((TicketLock::default(), ModelUnsafeCell::new(Vec::new())));
        shared.0.raw_lock();
        let s2 = Arc::clone(&shared);
        let waiter = loom::thread::spawn(move || {
            s2.0.raw_lock();
            s2.1.with_mut(|p| {
                // SAFETY: guarded by the lock just acquired.
                unsafe { (*p).push(1u32) }
            });
            s2.0.raw_unlock();
        });
        // Wait until the waiter holds the older ticket...
        while shared.0.queue_depth() < 2 {
            cphash_sync::spin_hint();
        }
        // ...then release and immediately contend again with a newer one.
        shared.0.raw_unlock();
        shared.0.raw_lock();
        shared.1.with_mut(|p| {
            // SAFETY: guarded by the lock just acquired.
            unsafe { (*p).push(2u32) }
        });
        shared.0.raw_unlock();
        waiter.join().unwrap();
        let order = shared.1.with(|p| {
            // SAFETY: both writers joined/finished; read-only now.
            unsafe { (*p).clone() }
        });
        assert_eq!(order, vec![1, 2], "ticket lock let a newer ticket overtake");
    })
}

/// FIFO hand-off for Anderson's array lock, same shape as the ticket
/// suite; enqueueing is observed via `tickets_taken`.
pub fn check_anderson_fifo() -> Report {
    builder().explore(|| {
        let shared = Arc::new((ArrayLock::with_slots(4), ModelUnsafeCell::new(Vec::new())));
        shared.0.raw_lock();
        let s2 = Arc::clone(&shared);
        let waiter = loom::thread::spawn(move || {
            s2.0.raw_lock();
            s2.1.with_mut(|p| {
                // SAFETY: guarded by the lock just acquired.
                unsafe { (*p).push(1u32) }
            });
            s2.0.raw_unlock();
        });
        while shared.0.tickets_taken() < 2 {
            cphash_sync::spin_hint();
        }
        shared.0.raw_unlock();
        shared.0.raw_lock();
        shared.1.with_mut(|p| {
            // SAFETY: guarded by the lock just acquired.
            unsafe { (*p).push(2u32) }
        });
        shared.0.raw_unlock();
        waiter.join().unwrap();
        let order = shared.1.with(|p| {
            // SAFETY: both writers joined/finished; read-only now.
            unsafe { (*p).clone() }
        });
        assert_eq!(order, vec![1, 2], "array lock let a later waiter overtake");
    })
}
