//! Model-check suites for the CPHash concurrency cores.
//!
//! The suites only compile when the atomics facade is in model mode:
//!
//! ```sh
//! RUSTFLAGS="--cfg cphash_model" cargo test -p cphash-modelcheck
//! ```
//!
//! Without the cfg this crate is an empty shell (so plain workspace builds
//! and `cargo test -q` never pay the model-checking cost).

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(cphash_model)]
pub mod suites;

#[cfg(all(test, cphash_model))]
mod tests {
    use crate::suites;

    fn assert_clean(report: loom::Report, what: &str) {
        if let Some(v) = &report.violation {
            panic!("{what} reported a violation:\n{v}");
        }
        assert!(report.executions >= 2, "{what} explored too little");
    }

    #[test]
    fn ring_transfer_no_lost_or_duplicated_slots() {
        assert_clean(suites::check_ring_transfer(), "ring transfer");
    }

    #[test]
    fn ring_seeded_relaxed_publish_is_caught() {
        let report = suites::check_ring_seeded_bug();
        let v = report
            .violation
            .expect("the weakened Relaxed publish must be flagged");
        assert!(
            v.message.contains("data race"),
            "expected a data race, got: {}",
            v.message
        );
        assert!(!v.schedule.is_empty(), "violation must carry a schedule");
        // The schedule must replay: pinning the scheduler to it has to
        // reproduce the same race deterministically, first try.  Compare
        // messages modulo the cell address (re-allocated per run).
        let replayed = suites::replay_ring_seeded_bug(&v.schedule)
            .expect("the recorded schedule failed to reproduce the race");
        let stem = |m: &str| m.split('@').next().unwrap().to_string();
        assert_eq!(stem(&replayed.message), stem(&v.message));
    }

    #[test]
    fn ring_shipped_flush_is_clean_and_exhaustive() {
        let report = suites::check_ring_shipped_flush();
        if let Some(v) = &report.violation {
            panic!("shipped flush flagged:\n{v}");
        }
        // The producer performs two tracked stores (flush publish + drop
        // flag), the consumer one tracked load: the load lands in exactly
        // one of three positions, and all three must have been explored.
        assert_eq!(report.executions, 3, "exploration was not exhaustive");
    }

    #[test]
    fn single_slot_rpc_round_trip() {
        assert_clean(suites::check_single_slot_rpc(), "single-slot RPC");
    }

    #[test]
    fn router_watermark_is_monotonic() {
        assert_clean(
            suites::check_router_watermark_monotonic(),
            "router watermark",
        );
    }

    #[test]
    fn slab_remote_freelist_no_double_alloc() {
        assert_clean(suites::check_slab_remote_freelist(), "remote free list");
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        assert_clean(suites::check_spinlock_mutex(), "spinlock mutex");
    }

    #[test]
    fn ticket_lock_mutual_exclusion() {
        assert_clean(suites::check_ticket_mutex(), "ticket mutex");
    }

    #[test]
    fn anderson_lock_mutual_exclusion() {
        assert_clean(suites::check_anderson_mutex(), "anderson mutex");
    }

    #[test]
    fn ticket_lock_is_fifo() {
        assert_clean(suites::check_ticket_fifo(), "ticket FIFO");
    }

    #[test]
    fn anderson_lock_is_fifo() {
        assert_clean(suites::check_anderson_fifo(), "anderson FIFO");
    }
}
