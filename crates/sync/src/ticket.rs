//! FIFO ticket lock.
//!
//! Included as the intermediate point between the unfair spinlock LOCKHASH
//! uses and Anderson's array lock: a ticket lock is fair (FIFO) and has a
//! single-word release, but all waiters spin on the *same* grant word, so
//! every release invalidates every waiter's cache line.  The lock-ablation
//! benchmark uses it to show why the paper stuck with the plain spinlock at
//! 4,096-way partitioning.

use crate::atomic::{AtomicU32, Ordering};

use crate::{Backoff, RawLock};

/// A fair, FIFO ticket lock.
///
/// `next` hands out tickets; `grant` shows which ticket currently owns the
/// lock. A thread acquires by taking a ticket and spinning until the grant
/// counter reaches it.
#[derive(Default)]
pub struct TicketLock {
    next: AtomicU32,
    grant: AtomicU32,
}

impl TicketLock {
    /// Create an unlocked ticket lock.
    pub const fn new() -> Self {
        TicketLock {
            next: AtomicU32::new(0),
            grant: AtomicU32::new(0),
        }
    }

    /// Number of threads currently waiting (approximate, for stats).
    pub fn queue_depth(&self) -> u32 {
        // relaxed: approximate stats snapshot; both counters are advisory here.
        let next = self.next.load(Ordering::Relaxed);
        // relaxed: see above.
        let grant = self.grant.load(Ordering::Relaxed);
        next.wrapping_sub(grant)
    }

    /// Returns `true` if some thread holds the lock.
    pub fn is_locked(&self) -> bool {
        self.queue_depth() != 0
    }
}

impl RawLock for TicketLock {
    #[inline]
    fn raw_lock(&self) {
        // relaxed: taking a ticket orders nothing; the grant spin below is
        // the acquire edge.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.grant.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
    }

    #[inline]
    fn raw_try_lock(&self) -> bool {
        // relaxed: a stale read only makes try_lock fail; the CAS below is
        // the acquire edge.
        let grant = self.grant.load(Ordering::Relaxed);
        // Only succeed if no one is waiting and we can atomically take the
        // next ticket matching the grant.
        self.next
            .compare_exchange(
                grant,
                grant.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed, // relaxed: failure just retries; CAS success is the acquire edge
            )
            .is_ok()
    }

    #[inline]
    fn raw_unlock(&self) {
        // Only the holder calls this, so a plain add is fine.
        self.grant.fetch_add(1, Ordering::Release);
    }

    fn name() -> &'static str {
        "ticket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_unlock_cycles() {
        let lock = TicketLock::new();
        assert!(!lock.is_locked());
        lock.raw_lock();
        assert!(lock.is_locked());
        lock.raw_unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_respects_holder() {
        let lock = TicketLock::new();
        assert!(lock.raw_try_lock());
        assert!(!lock.raw_try_lock());
        lock.raw_unlock();
        assert!(lock.raw_try_lock());
        lock.raw_unlock();
    }

    #[test]
    fn queue_depth_counts_waiters() {
        let lock = TicketLock::new();
        lock.raw_lock();
        assert_eq!(lock.queue_depth(), 1);
        lock.raw_unlock();
        assert_eq!(lock.queue_depth(), 0);
    }

    #[test]
    fn contended_increments_are_exact() {
        const THREADS: usize = 8;
        const ITERS: u64 = 5_000;
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        lock.raw_lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.raw_unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }
}
