//! Test-and-test-and-set spinlock — the lock LOCKHASH actually uses.

use crate::atomic::{AtomicBool, Ordering};
use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};

use crate::{Backoff, RawLock};

/// A test-and-test-and-set spinlock.
///
/// The uncontended fast path is a single atomic swap on one cache line —
/// "one cache miss to acquire and no cache misses to release" in the paper's
/// accounting — which is why LOCKHASH prefers it over scalable queue locks
/// when the number of partitions (4,096) is large enough to keep contention
/// low.
///
/// The contended path first spins on a plain load (keeping the line in
/// shared state) and only retries the swap when the lock looks free, with
/// exponential backoff to bound coherence traffic.
#[derive(Default)]
pub struct RawSpinLock {
    locked: AtomicBool,
}

impl RawSpinLock {
    /// Create an unlocked spinlock.
    pub const fn new() -> Self {
        RawSpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Returns `true` if the lock is currently held by some thread.
    #[inline]
    pub fn is_locked(&self) -> bool {
        // relaxed: advisory snapshot for stats/debug output; never used to
        // guard data.
        self.locked.load(Ordering::Relaxed)
    }
}

impl RawLock for RawSpinLock {
    #[inline]
    fn raw_lock(&self) {
        let mut backoff = Backoff::new();
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            // Test-and-test-and-set: spin on the read-only test so the line
            // stays shared instead of ping-ponging in exclusive state.
            // relaxed: the acquiring swap above is the synchronizing op.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    #[inline]
    fn raw_try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }

    #[inline]
    fn raw_unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    fn name() -> &'static str {
        "spinlock"
    }
}

/// A value protected by a [`RawSpinLock`], with an RAII guard API mirroring
/// `std::sync::Mutex` (minus poisoning — a panicking critical section in
/// this workspace is a bug, not a recoverable condition).
pub struct SpinLock<T: ?Sized> {
    raw: RawSpinLock,
    data: UnsafeCell<T>,
}

// SAFETY: the lock provides the necessary exclusion; `T: Send` is required
// because the protected value moves between threads.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Create a new spinlock protecting `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            raw: RawSpinLock::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquire the lock, spinning until it is available.
    #[inline]
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        self.raw.raw_lock();
        SpinLockGuard { lock: self }
    }

    /// Try to acquire the lock without spinning.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self.raw.raw_try_lock() {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns `true` if the lock is currently held.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.raw.is_locked()
    }

    /// Get a mutable reference to the protected value without locking.
    /// Safe because `&mut self` proves exclusive access.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        SpinLock::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("SpinLock").field("data", &&*guard).finish(),
            None => f.write_str("SpinLock(<locked>)"),
        }
    }
}

/// RAII guard returned by [`SpinLock::lock`]. Releases the lock on drop.
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means holding the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: holding the guard means holding the lock exclusively.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.raw.raw_unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let lock = SpinLock::new(5u64);
        {
            let mut g = lock.lock();
            *g += 1;
        }
        assert_eq!(*lock.lock(), 6);
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = SpinLock::new(7);
        *lock.get_mut() = 9;
        assert_eq!(lock.into_inner(), 9);
    }

    #[test]
    fn debug_formats_both_states() {
        let lock = SpinLock::new(1u8);
        assert!(format!("{lock:?}").contains('1'));
        let g = lock.lock();
        assert!(format!("{lock:?}").contains("locked"));
        drop(g);
    }

    #[test]
    fn counter_is_consistent_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 10_000;
        let lock = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), (THREADS * ITERS) as u64);
    }

    #[test]
    fn mutual_exclusion_no_overlap() {
        // Each thread records entry/exit; with proper exclusion the critical
        // section flag can never be observed set by another thread.
        let lock = Arc::new(SpinLock::new(false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut g = lock.lock();
                        assert!(!*g, "another thread inside the critical section");
                        *g = true;
                        *g = false;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
