//! Anderson's array-based queueing lock.
//!
//! The paper cites Anderson's lock [1] as the canonical *scalable* lock and
//! explains why LOCKHASH does not use it: it "requires a constant two cache
//! misses to acquire the lock, and one more cache miss to release", whereas
//! an uncontended spinlock needs one and zero respectively (§6.2).  We
//! implement it so the lock-ablation benchmark can demonstrate exactly that
//! trade-off: the array lock wins under heavy contention on few partitions
//! and loses at LOCKHASH's operating point (4,096 partitions, low
//! contention).
//!
//! [1] T. E. Anderson. *The performance of spin lock alternatives for
//! shared-memory multiprocessors.* IEEE TPDS, 1990.

use crate::atomic::{AtomicBool, AtomicUsize, Ordering};

use cphash_cacheline::CacheAligned;

use crate::{Backoff, RawLock};

/// Maximum number of simultaneous waiters the array lock supports.
///
/// Anderson's lock needs one flag slot per potential waiter; the paper's
/// machine has 160 hardware threads, so 256 slots is comfortably enough and
/// keeps the structure a fixed-size allocation.
pub const MAX_WAITERS: usize = 256;

/// One spin flag per slot, padded to its own cache line so each waiter spins
/// locally — the property that makes the lock "scalable".
struct Slot {
    has_lock: CacheAligned<AtomicBool>,
}

/// Anderson's array-based queueing lock.
///
/// Each acquiring thread takes the next slot index with a fetch-and-add and
/// spins on its *own* flag (local spinning).  Release sets the next slot's
/// flag, so exactly one waiter wakes per release and the hand-off is FIFO.
pub struct ArrayLock {
    slots: Box<[Slot]>,
    /// Next slot to hand to an acquirer.
    ticket: CacheAligned<AtomicUsize>,
    /// Slot of the current holder (needed by release). Only the holder reads
    /// or writes it while holding the lock, so a relaxed atomic suffices.
    holder_slot: CacheAligned<AtomicUsize>,
}

impl ArrayLock {
    /// Create an array lock with capacity for [`MAX_WAITERS`] waiters.
    pub fn new() -> Self {
        Self::with_slots(MAX_WAITERS)
    }

    /// Create an array lock with a specific number of waiter slots.
    ///
    /// `slots` must be a power of two ≥ 2 and at least the number of threads
    /// that may contend simultaneously; otherwise waiters could alias a slot.
    pub fn with_slots(slots: usize) -> Self {
        assert!(
            slots.is_power_of_two() && slots >= 2,
            "slot count must be a power of two >= 2"
        );
        let mut v = Vec::with_capacity(slots);
        for i in 0..slots {
            v.push(Slot {
                has_lock: CacheAligned::new(AtomicBool::new(i == 0)),
            });
        }
        ArrayLock {
            slots: v.into_boxed_slice(),
            ticket: CacheAligned::new(AtomicUsize::new(0)),
            holder_slot: CacheAligned::new(AtomicUsize::new(0)),
        }
    }

    /// Number of waiter slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Tickets handed out so far (acquisitions begun, not completed).
    ///
    /// Diagnostic: the FIFO model suite polls it to know a waiter has
    /// enqueued before releasing the lock it is waiting on.
    pub fn tickets_taken(&self) -> usize {
        self.ticket.load(Ordering::Acquire)
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }
}

impl Default for ArrayLock {
    fn default() -> Self {
        ArrayLock::new()
    }
}

impl RawLock for ArrayLock {
    #[inline]
    fn raw_lock(&self) {
        // relaxed: slot assignment orders nothing; the flag spin below is
        // the acquire edge.
        let my_slot = self.ticket.fetch_add(1, Ordering::Relaxed) & self.mask();
        let flag = &self.slots[my_slot].has_lock;
        let mut backoff = Backoff::new();
        while !flag.load(Ordering::Acquire) {
            backoff.snooze();
        }
        // Consume the grant so the slot can be reused on wrap-around.
        // relaxed: only the holder touches the flag until its own release.
        flag.store(false, Ordering::Relaxed);
        // relaxed: holder_slot is holder-private while the lock is held.
        self.holder_slot.store(my_slot, Ordering::Relaxed);
    }

    #[inline]
    fn raw_try_lock(&self) -> bool {
        // Anderson's lock has no natural try-lock; emulate by only taking a
        // ticket when the current head slot is granted and unclaimed.
        // relaxed: a stale head only makes try_lock fail; the CAS below is
        // the acquire edge.
        let head = self.ticket.load(Ordering::Relaxed);
        let slot = head & self.mask();
        if !self.slots[slot].has_lock.load(Ordering::Acquire) {
            return false;
        }
        if self
            .ticket
            .compare_exchange(head, head + 1, Ordering::Acquire, Ordering::Relaxed) // relaxed: failure just retries; CAS success is the acquire edge
            .is_err()
        {
            return false;
        }
        // relaxed: only the holder touches the flag until its own release.
        self.slots[slot].has_lock.store(false, Ordering::Relaxed);
        // relaxed: holder_slot is holder-private while the lock is held.
        self.holder_slot.store(slot, Ordering::Relaxed);
        true
    }

    #[inline]
    fn raw_unlock(&self) {
        // relaxed: written by this same thread at acquire time.
        let slot = self.holder_slot.load(Ordering::Relaxed);
        let next = (slot + 1) & self.mask();
        self.slots[next].has_lock.store(true, Ordering::Release);
    }

    fn name() -> &'static str {
        "anderson-array"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn construction_checks_slot_count() {
        let l = ArrayLock::with_slots(8);
        assert_eq!(l.capacity(), 8);
        let l = ArrayLock::new();
        assert_eq!(l.capacity(), MAX_WAITERS);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_slots_panics() {
        let _ = ArrayLock::with_slots(6);
    }

    #[test]
    fn lock_unlock_sequence_wraps_slots() {
        let lock = ArrayLock::with_slots(4);
        for _ in 0..16 {
            lock.raw_lock();
            lock.raw_unlock();
        }
    }

    #[test]
    fn try_lock_only_succeeds_when_free() {
        let lock = ArrayLock::with_slots(4);
        assert!(lock.raw_try_lock());
        assert!(!lock.raw_try_lock());
        lock.raw_unlock();
        assert!(lock.raw_try_lock());
        lock.raw_unlock();
    }

    #[test]
    fn contended_increments_are_exact() {
        const THREADS: usize = 8;
        const ITERS: u64 = 5_000;
        let lock = Arc::new(ArrayLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        lock.raw_lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.raw_unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn slots_are_cache_line_separated() {
        let lock = ArrayLock::with_slots(4);
        let a = &lock.slots[0] as *const _ as usize;
        let b = &lock.slots[1] as *const _ as usize;
        assert!(b - a >= cphash_cacheline::CACHE_LINE_SIZE);
    }
}
