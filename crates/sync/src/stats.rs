//! Lock acquisition statistics.
//!
//! LOCKHASH's performance story is told in lock events: how often an
//! acquisition found the lock already held (a contended acquire costs extra
//! coherence traffic — the "Spinlock acquire: 0.1 L2 / 0.9 L3 misses" row of
//! Figure 7).  `LockStats` is a cheap, always-on counter block the baseline
//! table updates on every acquire so the benchmark harness can report
//! contention alongside throughput.

use crate::atomic::plain::{AtomicU64, Ordering};

/// Counters describing how a set of locks has been used.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics; they are read only when printing reports.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    spin_iterations: AtomicU64,
}

impl LockStats {
    /// Create a zeroed counter block.
    pub const fn new() -> Self {
        LockStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            spin_iterations: AtomicU64::new(0),
        }
    }

    /// Record one acquisition. `contended` says whether the fast path failed
    /// and `spins` how many retry iterations were needed.
    #[inline]
    pub fn record_acquire(&self, contended: bool, spins: u64) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            // relaxed: monotonic stat counter, read only by diagnostics
            self.contended.fetch_add(1, Ordering::Relaxed);
            // relaxed: monotonic stat counter, read only by diagnostics
            self.spin_iterations.fetch_add(spins, Ordering::Relaxed);
        }
    }

    /// Total number of acquisitions recorded.
    pub fn acquisitions(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Number of acquisitions whose fast path failed.
    pub fn contended(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.contended.load(Ordering::Relaxed)
    }

    /// Total spin-loop iterations across all contended acquisitions.
    pub fn spin_iterations(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.spin_iterations.load(Ordering::Relaxed)
    }

    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        let acq = self.acquisitions();
        if acq == 0 {
            0.0
        } else {
            self.contended() as f64 / acq as f64
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.acquisitions.store(0, Ordering::Relaxed);
        // relaxed: monotonic stat counter, read only by diagnostics
        self.contended.store(0, Ordering::Relaxed);
        // relaxed: monotonic stat counter, read only by diagnostics
        self.spin_iterations.store(0, Ordering::Relaxed);
    }

    /// Merge another counter block into this one.
    pub fn merge(&self, other: &LockStats) {
        self.acquisitions
            // relaxed: monotonic stat counter, read only by diagnostics
            .fetch_add(other.acquisitions(), Ordering::Relaxed);
        self.contended
            // relaxed: monotonic stat counter, read only by diagnostics
            .fetch_add(other.contended(), Ordering::Relaxed);
        self.spin_iterations
            // relaxed: monotonic stat counter, read only by diagnostics
            .fetch_add(other.spin_iterations(), Ordering::Relaxed);
    }
}

impl Clone for LockStats {
    fn clone(&self) -> Self {
        let s = LockStats::new();
        s.merge(self);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ratios() {
        let s = LockStats::new();
        assert_eq!(s.contention_ratio(), 0.0);
        s.record_acquire(false, 0);
        s.record_acquire(true, 10);
        s.record_acquire(true, 20);
        assert_eq!(s.acquisitions(), 3);
        assert_eq!(s.contended(), 2);
        assert_eq!(s.spin_iterations(), 30);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = LockStats::new();
        s.record_acquire(true, 5);
        s.reset();
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.contended(), 0);
        assert_eq!(s.spin_iterations(), 0);
    }

    #[test]
    fn merge_and_clone_accumulate() {
        let a = LockStats::new();
        let b = LockStats::new();
        a.record_acquire(false, 0);
        b.record_acquire(true, 7);
        a.merge(&b);
        assert_eq!(a.acquisitions(), 2);
        assert_eq!(a.contended(), 1);
        let c = a.clone();
        assert_eq!(c.acquisitions(), 2);
        assert_eq!(c.spin_iterations(), 7);
    }
}
