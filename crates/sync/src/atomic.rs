//! The workspace atomics facade.
//!
//! Every concurrency core in the tree (`cphash-channel` rings, the epoch
//! router, the slab remote free-list, the lock family) imports its atomics
//! from here instead of `std::sync::atomic`.  Normally the re-exports *are*
//! the std types — zero cost, identical codegen.  Under
//! `RUSTFLAGS="--cfg cphash_model"` they swap to the vendored loom model
//! checker's tracked types, and the same unmodified source becomes
//! model-checkable: every atomic op a scheduling point, every `Ordering` a
//! happens-before edge, every [`ModelUnsafeCell`] access race-checked.
//!
//! Two families:
//!
//! * the root re-exports (`AtomicU64`, `fence`, …) — **modeled**: use these
//!   for anything whose interleavings matter.
//! * [`plain`] — **always std**, even in model mode: use it for diagnostics
//!   (stat counters, watermark gauges, liveness flags read by monitoring)
//!   where tracking would explode the model state space and a data race
//!   cannot corrupt the protocol.
//!
//! The `tools/lint` pass enforces that nothing outside this file names
//! `std::sync::atomic` directly.

// The facade itself is the one sanctioned place for raw std atomic paths;
// the lint allowlists exactly this file.

#[cfg(not(cphash_model))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

#[cfg(cphash_model)]
pub use loom::sync::atomic::{
    fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

/// Diagnostics-only atomics: always `std`, never modeled.
///
/// Model executions stay small because stat counters and gauges routed
/// through here generate no scheduling points.  Never guard data with
/// these — the model checker cannot see them.
pub mod plain {
    pub use std::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// CPU spin hint: [`std::hint::spin_loop`] normally; in model mode a
/// scheduling point that deprioritizes the spinner until every runnable
/// thread has had a turn (which is what lets bounded exploration get
/// through unbounded spin loops).
#[inline]
pub fn spin_hint() {
    #[cfg(not(cphash_model))]
    std::hint::spin_loop();
    #[cfg(cphash_model)]
    loom::hint::spin_loop();
}

/// Interior-mutable storage for data published through atomics.
///
/// Normally a transparent zero-cost wrapper over [`std::cell::UnsafeCell`];
/// in model mode the tracked loom cell, which reports any access not
/// ordered by happens-before as a data race.  The closure API (`with`,
/// `with_mut`) is the loom one — it forces every access through a point
/// the checker can see.
#[derive(Debug)]
pub struct ModelUnsafeCell<T> {
    #[cfg(not(cphash_model))]
    inner: std::cell::UnsafeCell<T>,
    #[cfg(cphash_model)]
    inner: loom::cell::UnsafeCell<T>,
}

// SAFETY: same contract as `std::cell::UnsafeCell` wrapped in a `Sync`
// container: callers promise (and in model mode, the checker verifies)
// that writers are exclusive and readers are unsynchronized-race-free.
unsafe impl<T: Send> Send for ModelUnsafeCell<T> {}
// SAFETY: see above — all shared access goes through `with`/`with_mut`,
// whose contracts put the burden on the caller exactly as UnsafeCell does.
unsafe impl<T: Send> Sync for ModelUnsafeCell<T> {}

impl<T> ModelUnsafeCell<T> {
    /// Create a new cell.
    #[cfg(not(cphash_model))]
    pub const fn new(value: T) -> ModelUnsafeCell<T> {
        ModelUnsafeCell {
            inner: std::cell::UnsafeCell::new(value),
        }
    }

    /// Create a new cell (model mode).
    #[cfg(cphash_model)]
    pub const fn new(value: T) -> ModelUnsafeCell<T> {
        ModelUnsafeCell {
            inner: loom::cell::UnsafeCell::new(value),
        }
    }

    /// Shared access to the raw pointer.
    ///
    /// # Safety contract (checked in model mode)
    ///
    /// The caller must ensure no concurrent mutable access; dereferencing
    /// the pointer inside `f` is `unsafe` and carries that proof.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        #[cfg(not(cphash_model))]
        {
            f(self.inner.get() as *const T)
        }
        #[cfg(cphash_model)]
        {
            self.inner.with(f)
        }
    }

    /// Exclusive access to the raw pointer.
    ///
    /// # Safety contract (checked in model mode)
    ///
    /// The caller must ensure this access is exclusive; dereferencing the
    /// pointer inside `f` is `unsafe` and carries that proof.
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        #[cfg(not(cphash_model))]
        {
            f(self.inner.get())
        }
        #[cfg(cphash_model)]
        {
            self.inner.with_mut(f)
        }
    }

    /// Exclusive access through `&mut self` (statically race-free).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consume the cell and return the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}
