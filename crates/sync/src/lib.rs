//! Locks for the LOCKHASH baseline.
//!
//! The CPHash paper compares its message-passing table against a highly
//! optimized fine-grained-locking table.  §6.2 is explicit about the lock
//! choice:
//!
//! > "LOCKHASH uses a spinlock to protect each hash table partition from
//! > concurrent access. Although the spinlock is not scalable, it performs
//! > better than a scalable lock. For example, Anderson's scalable lock
//! > requires a constant two cache misses to acquire the lock, and one more
//! > cache miss to release. In contrast, an uncontended spinlock requires
//! > one cache miss to acquire and no cache misses to release."
//!
//! This crate provides the three lock families that discussion references —
//! a test-and-test-and-set [`SpinLock`], a FIFO [`TicketLock`], and
//! Anderson's array lock ([`ArrayLock`]) — behind a common [`RawLock`]
//! trait so the baseline table (and the lock-ablation benchmark) can be
//! instantiated with any of them.  [`LockTable`] packages a cache-line
//! padded array of locks, one per partition or per bucket, exactly as
//! LOCKHASH and LOCKSERVER need.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod anderson;
pub mod atomic;
pub mod lock_table;
pub mod spinlock;
pub mod stats;
pub mod ticket;

pub use anderson::ArrayLock;
pub use atomic::{spin_hint, ModelUnsafeCell};
pub use lock_table::{LockKind, LockTable};
pub use spinlock::{RawSpinLock, SpinLock, SpinLockGuard};
pub use stats::LockStats;
pub use ticket::TicketLock;

/// A raw mutual-exclusion primitive.
///
/// `lock`/`unlock` pairs must be balanced by the caller; the safe wrappers
/// ([`SpinLock`], [`LockTable`]) enforce this with RAII guards.  The trait
/// exists so LOCKHASH can be measured with different lock algorithms without
/// touching the hash-table code (the paper's §6.2 spinlock-vs-Anderson
/// discussion becomes an ablation benchmark).
pub trait RawLock: Send + Sync + Default {
    /// Acquire the lock, spinning until it is available.
    fn raw_lock(&self);

    /// Try to acquire the lock without spinning. Returns `true` on success.
    fn raw_try_lock(&self) -> bool;

    /// Release the lock. Must only be called by the current holder.
    fn raw_unlock(&self);

    /// Human-readable name used in benchmark output.
    fn name() -> &'static str;
}

/// Exponential-backoff helper shared by the spinning loops.
///
/// Spins with `core::hint::spin_loop` a growing number of times, then
/// yields to the scheduler once the backoff saturates so that oversubscribed
/// test environments (more spinners than CPUs) still make progress.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin limit (log2) before the backoff starts yielding the CPU.
    #[cfg_attr(cphash_model, allow(dead_code))]
    const YIELD_LIMIT: u32 = 10;

    /// Create a fresh backoff.
    #[inline]
    pub const fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Perform one backoff step.
    #[inline]
    pub fn snooze(&mut self) {
        #[cfg(cphash_model)]
        {
            // One scheduling point per snooze: the model's yield-aware
            // scheduler already deprioritizes the spinner, and 2^step
            // hints would only bloat the schedule.
            atomic::spin_hint();
        }
        #[cfg(not(cphash_model))]
        if self.step <= Self::YIELD_LIMIT {
            for _ in 0..(1u32 << self.step) {
                atomic::spin_hint();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Reset to the initial (shortest) backoff.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_snoozes_and_resets() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert!(b.step >= Backoff::YIELD_LIMIT);
        b.reset();
        assert_eq!(b.step, 0);
    }
}
