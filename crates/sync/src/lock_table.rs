//! Cache-line padded arrays of locks.
//!
//! LOCKHASH protects each of its 4,096 partitions with its own lock
//! (and, under the random-eviction policy, each *bucket* with its own lock,
//! §4.2).  Packing many `AtomicBool`s densely would put dozens of unrelated
//! locks on one cache line and re-introduce exactly the coherence traffic
//! the fine-grained design is trying to avoid, so each lock is padded to its
//! own line.  `LockTable` wraps that array together with acquisition
//! statistics and a runtime-selectable lock algorithm.

use cphash_cacheline::CacheAligned;

use crate::{ArrayLock, LockStats, RawLock, RawSpinLock, TicketLock};

/// Which lock algorithm a [`LockTable`] uses.
///
/// The paper's LOCKHASH uses [`LockKind::Spin`]; the others exist for the
/// lock ablation (§6.2's spinlock-vs-Anderson discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockKind {
    /// Test-and-test-and-set spinlock (the paper's choice).
    #[default]
    Spin,
    /// FIFO ticket lock.
    Ticket,
    /// Anderson's array-based queueing lock.
    Anderson,
}

impl LockKind {
    /// All lock kinds, for sweeps.
    pub const ALL: [LockKind; 3] = [LockKind::Spin, LockKind::Ticket, LockKind::Anderson];

    /// Short name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Spin => RawSpinLock::name(),
            LockKind::Ticket => TicketLock::name(),
            LockKind::Anderson => ArrayLock::name(),
        }
    }
}

enum Slot {
    Spin(CacheAligned<RawSpinLock>),
    Ticket(CacheAligned<TicketLock>),
    Anderson(Box<ArrayLock>),
}

impl Slot {
    #[inline]
    fn lock(&self) -> bool {
        match self {
            Slot::Spin(l) => {
                if l.raw_try_lock() {
                    true
                } else {
                    l.raw_lock();
                    false
                }
            }
            Slot::Ticket(l) => {
                if l.raw_try_lock() {
                    true
                } else {
                    l.raw_lock();
                    false
                }
            }
            Slot::Anderson(l) => {
                if l.raw_try_lock() {
                    true
                } else {
                    l.raw_lock();
                    false
                }
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        match self {
            Slot::Spin(l) => l.raw_unlock(),
            Slot::Ticket(l) => l.raw_unlock(),
            Slot::Anderson(l) => l.raw_unlock(),
        }
    }
}

/// An array of `n` independent locks, each padded to its own cache line,
/// with shared acquisition statistics.
///
/// LOCKHASH indexes it by partition id; the per-bucket-locking variant
/// indexes it by bucket id modulo the table length.
pub struct LockTable {
    slots: Box<[Slot]>,
    kind: LockKind,
    stats: LockStats,
}

impl LockTable {
    /// Create a table of `n` locks of the given kind.
    pub fn new(n: usize, kind: LockKind) -> Self {
        assert!(n > 0, "a lock table needs at least one lock");
        let slots: Vec<Slot> = (0..n)
            .map(|_| match kind {
                LockKind::Spin => Slot::Spin(CacheAligned::new(RawSpinLock::new())),
                LockKind::Ticket => Slot::Ticket(CacheAligned::new(TicketLock::new())),
                LockKind::Anderson => Slot::Anderson(Box::default()),
            })
            .collect();
        LockTable {
            slots: slots.into_boxed_slice(),
            kind,
            stats: LockStats::new(),
        }
    }

    /// Number of locks in the table.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the table has no locks (never constructible).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The lock algorithm in use.
    pub fn kind(&self) -> LockKind {
        self.kind
    }

    /// Acquisition statistics for the whole table.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Acquire lock `index` (modulo the table size) and return an RAII guard.
    #[inline]
    pub fn lock(&self, index: usize) -> TableGuard<'_> {
        let slot = &self.slots[index % self.slots.len()];
        let uncontended = slot.lock();
        self.stats.record_acquire(!uncontended, 1);
        TableGuard { slot }
    }

    /// Run `f` while holding lock `index`.
    #[inline]
    pub fn with_lock<R>(&self, index: usize, f: impl FnOnce() -> R) -> R {
        let _guard = self.lock(index);
        f()
    }
}

/// RAII guard for one lock in a [`LockTable`].
pub struct TableGuard<'a> {
    slot: &'a Slot,
}

impl Drop for TableGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.slot.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn builds_every_kind() {
        for kind in LockKind::ALL {
            let t = LockTable::new(8, kind);
            assert_eq!(t.len(), 8);
            assert!(!t.is_empty());
            assert_eq!(t.kind(), kind);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one lock")]
    fn zero_locks_panics() {
        let _ = LockTable::new(0, LockKind::Spin);
    }

    #[test]
    fn indices_wrap_modulo_len() {
        let t = LockTable::new(4, LockKind::Spin);
        let g = t.lock(1);
        // Index 5 maps to the same lock as index 1 and must block; use
        // try-lock semantics indirectly by locking a different slot.
        let g2 = t.lock(2);
        drop(g);
        drop(g2);
        assert_eq!(t.stats().acquisitions(), 2);
    }

    #[test]
    fn with_lock_returns_closure_value() {
        let t = LockTable::new(2, LockKind::Ticket);
        let v = t.with_lock(0, || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn parallel_counters_per_slot_are_exact() {
        for kind in LockKind::ALL {
            const THREADS: usize = 4;
            const ITERS: usize = 2_000;
            let table = Arc::new(LockTable::new(2, kind));
            let counters = Arc::new([
                std::sync::atomic::AtomicU64::new(0),
                std::sync::atomic::AtomicU64::new(0),
            ]);
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let table = Arc::clone(&table);
                    let counters = Arc::clone(&counters);
                    thread::spawn(move || {
                        for i in 0..ITERS {
                            let idx = (t + i) % 2;
                            table.with_lock(idx, || {
                                let v = counters[idx].load(std::sync::atomic::Ordering::Relaxed);
                                counters[idx].store(v + 1, std::sync::atomic::Ordering::Relaxed);
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total: u64 = counters
                .iter()
                .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                .sum();
            assert_eq!(total, (THREADS * ITERS) as u64, "kind={kind:?}");
            assert_eq!(table.stats().acquisitions(), (THREADS * ITERS) as u64);
        }
    }
}
