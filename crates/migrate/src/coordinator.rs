//! The coordinator driving grow/shrink transitions chunk by chunk.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cphash::control::ControlHandle;
use cphash::protocol::{MigrationBatch, MigrationStep, Request};
use cphash::router::TransitionError;
use cphash::{Recommendation, TableError};
use cphash_hashcore::partition_for_key;

use crate::pacer::MigrationPacer;

/// Why a resize could not run (the table itself is unharmed: either nothing
/// started, or — for [`MigrateError::ServerGone`] — the table is already
/// shutting down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The router refused the transition (already in progress / bad count).
    Transition(TransitionError),
    /// A server thread exited mid-transition (table shutdown).
    ServerGone,
}

impl From<TransitionError> for MigrateError {
    fn from(e: TransitionError) -> Self {
        MigrateError::Transition(e)
    }
}

impl From<TableError> for MigrateError {
    fn from(_: TableError) -> Self {
        MigrateError::ServerGone
    }
}

impl core::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrateError::Transition(e) => write!(f, "{e}"),
            MigrateError::ServerGone => f.write_str("a server thread exited mid-transition"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// What one completed transition did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Active partitions before the transition.
    pub from_partitions: usize,
    /// Active partitions after the transition.
    pub to_partitions: usize,
    /// Migration chunks processed.
    pub chunks: usize,
    /// Keys that physically moved between partitions.
    pub keys_moved: usize,
    /// Non-empty batches shipped between servers.
    pub batches: usize,
    /// Wall-clock duration of the whole transition.
    pub duration: Duration,
    /// Chunk hand-offs this transition delayed to honour the pacing budget.
    pub paced_waits: u64,
    /// Total time this transition spent waiting on the pacer.
    pub paced_wait: Duration,
}

impl core::fmt::Display for MigrationReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "repartitioned {} -> {} partitions: {} keys in {} batches over {} chunks in {:.1?}",
            self.from_partitions,
            self.to_partitions,
            self.keys_moved,
            self.batches,
            self.chunks,
            self.duration
        )?;
        if self.paced_waits > 0 {
            write!(
                f,
                " ({} paced waits totalling {:.1?})",
                self.paced_waits, self.paced_wait
            )?;
        }
        Ok(())
    }
}

/// Default ceiling on the payload bytes of one `MigrateIn` delivery.
///
/// A receiving server absorbs a delivery in one go between serving
/// requests, so the ceiling bounds the worst-case single-server stall a
/// migration step can cause — the per-chunk analogue of what the pacer does
/// across chunks.
pub const DEFAULT_MAX_BATCH_BYTES: usize = 256 * 1024;

/// Drives live grow/shrink transitions over a table's control plane.
///
/// Owns the table's unique [`ControlHandle`]; construct with
/// [`cphash::CpHash::take_control`].  One resize runs at a time (the router
/// enforces this even across handles).
pub struct RepartitionCoordinator {
    control: ControlHandle,
    /// Split `MigrateIn` deliveries above this many payload bytes.
    max_batch_bytes: usize,
}

impl RepartitionCoordinator {
    /// Wrap a table's control handle.
    pub fn new(control: ControlHandle) -> Self {
        RepartitionCoordinator {
            control,
            max_batch_bytes: DEFAULT_MAX_BATCH_BYTES,
        }
    }

    /// Override the per-delivery byte ceiling (a chunk whose extracted
    /// entries exceed it is handed to its receiver in several batches, each
    /// individually acknowledged).
    pub fn with_max_batch_bytes(mut self, max_batch_bytes: usize) -> Self {
        assert!(max_batch_bytes > 0, "batch ceiling must be positive");
        self.max_batch_bytes = max_batch_bytes;
        self
    }

    /// The current per-delivery byte ceiling.
    pub fn max_batch_bytes(&self) -> usize {
        self.max_batch_bytes
    }

    /// The current active partition count.
    pub fn active_partitions(&self) -> usize {
        self.control.router().active_partitions()
    }

    /// Largest partition count this table supports (`max_partitions`).
    pub fn max_partitions(&self) -> usize {
        self.control.router().max_partitions()
    }

    /// Apply a controller recommendation: resize on `Grow`/`Shrink`, do
    /// nothing on `Keep`.
    pub fn apply(
        &mut self,
        recommendation: Recommendation,
    ) -> Result<Option<MigrationReport>, MigrateError> {
        self.apply_paced(recommendation, &mut MigrationPacer::unpaced())
    }

    /// Like [`RepartitionCoordinator::apply`], but pacing the chunk
    /// hand-offs through `pacer`.
    pub fn apply_paced(
        &mut self,
        recommendation: Recommendation,
        pacer: &mut MigrationPacer,
    ) -> Result<Option<MigrationReport>, MigrateError> {
        match recommendation {
            Recommendation::Keep(_) => Ok(None),
            Recommendation::Grow(n) | Recommendation::Shrink(n) => {
                if n == self.active_partitions() {
                    return Ok(None);
                }
                self.resize_to_paced(n, pacer).map(Some)
            }
        }
    }

    /// Re-partition the live table to `new_partitions` server threads,
    /// migrating keys chunk by chunk while clients keep operating, with
    /// hand-offs fired back-to-back (no pacing).
    pub fn resize_to(&mut self, new_partitions: usize) -> Result<MigrationReport, MigrateError> {
        self.resize_to_paced(new_partitions, &mut MigrationPacer::unpaced())
    }

    /// Like [`RepartitionCoordinator::resize_to`], but before every chunk
    /// hand-off the coordinator waits for `pacer` — bounding how much
    /// migration work competes with foreground traffic per unit time.
    pub fn resize_to_paced(
        &mut self,
        new_partitions: usize,
        pacer: &mut MigrationPacer,
    ) -> Result<MigrationReport, MigrateError> {
        let router = std::sync::Arc::clone(self.control.router());
        let chunks = router.chunks();
        let start = Instant::now();
        let pacer_before = pacer.stats();
        if new_partitions == router.active_partitions() {
            return Ok(MigrationReport {
                from_partitions: new_partitions,
                to_partitions: new_partitions,
                chunks: 0,
                keys_moved: 0,
                batches: 0,
                duration: start.elapsed(),
                paced_waits: 0,
                paced_wait: Duration::ZERO,
            });
        }
        let before = router.begin_transition(new_partitions)?;
        let old = before.new_partitions;
        let mut keys_moved = 0usize;
        let mut batches = 0usize;

        for chunk in 0..chunks {
            pacer.before_chunk();
            let step = MigrationStep {
                chunk,
                old_partitions: old,
                new_partitions,
            };
            let outcome = self.migrate_chunk(step, &mut keys_moved, &mut batches);
            if let Err(e) = outcome {
                // A server died mid-chunk: the table is shutting down. The
                // chunk's keys were either not extracted yet or are being
                // absorbed by a dead server's ring (freed with it); routing
                // state no longer matters to anyone, so pin it to the old
                // count for any stragglers.
                router.force_complete(old);
                return Err(e);
            }
            router.advance_watermark(chunk + 1);
        }

        let pacer_after = pacer.stats();
        Ok(MigrationReport {
            from_partitions: old,
            to_partitions: new_partitions,
            chunks,
            keys_moved,
            batches,
            duration: start.elapsed(),
            paced_waits: pacer_after.paced_waits - pacer_before.paced_waits,
            paced_wait: pacer_after
                .total_wait
                .saturating_sub(pacer_before.total_wait),
        })
    }

    /// Run the prepare → extract → deliver protocol for one chunk.
    fn migrate_chunk(
        &mut self,
        step: MigrationStep,
        keys_moved: &mut usize,
        batches: &mut usize,
    ) -> Result<(), MigrateError> {
        let receivers = 0..step.new_partitions;
        let sources = 0..step.old_partitions;

        // 1. Every receiver learns the chunk is in flight (and acknowledges
        //    *before* any key leaves a source, so no request can observe the
        //    gap unannounced).
        self.control.broadcast(
            receivers.clone(),
            |step| Request::MigratePrepare { step },
            step,
        )?;

        // 2. Every source extracts its leaving keys and ships the batch
        //    back by address. Sources work concurrently; a source blocked on
        //    in-flight inserts simply answers late.
        let extracted =
            self.control
                .broadcast(sources, |step| Request::MigrateOut { step }, step)?;

        // 3. Regroup by new owner.
        let mut per_dest: HashMap<usize, Vec<(u64, Vec<u8>)>> = HashMap::new();
        for (_, response) in extracted {
            if response.has_value() {
                // SAFETY: the source leaked exactly this batch for us via
                // `Response::with_batch`; ownership transfers here.
                let batch = unsafe { MigrationBatch::from_addr(response.addr) };
                for (key, value) in batch.entries {
                    per_dest
                        .entry(partition_for_key(key, step.new_partitions))
                        .or_default()
                        .push((key, value));
                }
            }
        }

        // 4. Deliver to every prepared receiver — including empty batches
        //    (address sentinel 1), which clear the receiver's incoming state
        //    promptly instead of leaving it to expire at the watermark.
        //    Deliveries above the byte ceiling are split so one huge chunk
        //    cannot stall its receiving server; each split is acknowledged
        //    before the next is sent, and only the final one completes the
        //    chunk at the receiver.
        for dest in receivers {
            let entries = per_dest.remove(&dest).unwrap_or_default();
            *keys_moved += entries.len();
            if entries.is_empty() {
                self.control.round_trip(
                    dest,
                    &Request::MigrateIn {
                        step,
                        batch_addr: 1,
                    },
                )?;
                continue;
            }
            let mut splits = split_entries(entries, self.max_batch_bytes)
                .into_iter()
                .peekable();
            while let Some(split) = splits.next() {
                *batches += 1;
                let last = splits.peek().is_none();
                let batch = if last {
                    MigrationBatch::new(split)
                } else {
                    MigrationBatch::partial(split)
                };
                let batch_addr = batch.into_addr();
                self.control
                    .round_trip(dest, &Request::MigrateIn { step, batch_addr })?;
            }
        }
        Ok(())
    }
}

/// Cut `entries` into consecutive runs whose payload (key + value bytes)
/// stays at or below `max_bytes`; an entry larger than the ceiling travels
/// alone.  Never returns an empty split.
fn split_entries(entries: Vec<(u64, Vec<u8>)>, max_bytes: usize) -> Vec<Vec<(u64, Vec<u8>)>> {
    let mut splits = Vec::new();
    let mut current: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut current_bytes = 0usize;
    for entry in entries {
        let cost = 8 + entry.1.len();
        if !current.is_empty() && current_bytes + cost > max_bytes {
            splits.push(core::mem::take(&mut current));
            current_bytes = 0;
        }
        current_bytes += cost;
        current.push(entry);
    }
    if !current.is_empty() {
        splits.push(current);
    }
    splits
}

impl core::fmt::Debug for RepartitionCoordinator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RepartitionCoordinator")
            .field("active", &self.active_partitions())
            .field("max", &self.max_partitions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u64, len: usize) -> (u64, Vec<u8>) {
        (key, vec![0u8; len])
    }

    #[test]
    fn small_batches_are_not_split() {
        let splits = split_entries(vec![entry(1, 10), entry(2, 10)], 1024);
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0].len(), 2);
    }

    #[test]
    fn oversized_batches_split_on_the_byte_ceiling() {
        // 4 entries of 100 payload bytes (108 with key) against a 256-byte
        // ceiling: two per split.
        let splits = split_entries(
            vec![entry(1, 100), entry(2, 100), entry(3, 100), entry(4, 100)],
            256,
        );
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].len(), 2);
        assert_eq!(splits[1].len(), 2);
        // Order is preserved across splits.
        let keys: Vec<u64> = splits.into_iter().flatten().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
    }

    #[test]
    fn an_entry_larger_than_the_ceiling_travels_alone() {
        let splits = split_entries(vec![entry(1, 10), entry(2, 5000), entry(3, 10)], 256);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[1].len(), 1);
        assert_eq!(splits[1][0].0, 2);
    }

    #[test]
    fn no_split_is_empty() {
        for ceiling in [1, 8, 64, 1024] {
            let splits = split_entries(
                (0..32).map(|k| entry(k, (k as usize) * 7 % 200)).collect(),
                ceiling,
            );
            assert!(splits.iter().all(|s| !s.is_empty()), "ceiling {ceiling}");
            assert_eq!(splits.iter().map(Vec::len).sum::<usize>(), 32);
        }
    }
}
